"""In-band switchlet capsules.

The paper (Section 3) describes two ways to program a node: out-of-band
through an administrative interface, and **in-band** through packets that are
capsules carrying both code and the data it operates on, as proposed by
Wetherall et al.  The bridge experiments use the out-of-band TFTP path, but
the infrastructure is explicitly meant to support capsules ("our research ...
would be as useful for capsule support as it is for adding bridge
functionality").

This module provides that in-band path for the reproduction: a serialized
:class:`~repro.core.switchlet.SwitchletPackage` carried directly in an
Ethernet frame addressed to the capsule multicast group.  A
:class:`CapsuleReceiver` installed on an active node loads any capsule it
hears, which is also the simplest way to realize the paper's flood-based
concurrent protocol installation (Section 5.2): broadcast the capsule and
every listening bridge programs itself.
"""

from __future__ import annotations

from repro.core.node import ActiveNode
from repro.core.switchlet import SwitchletPackage
from repro.core.unixnet import Packet, packet_bytes_to_frame
from repro.ethernet.ethertype import EtherType
from repro.ethernet.frame import EthernetFrame, MAX_PAYLOAD
from repro.ethernet.mac import MacAddress
from repro.exceptions import LoadError, PacketError, ProtocolError, SwitchletError

#: Multicast group capsules are addressed to.  Locally administered, group
#: bit set; chosen not to collide with the All-Bridges or DEC groups.
CAPSULE_MULTICAST = MacAddress.from_string("03:00:00:00:00:01")


def encode_capsule(package: SwitchletPackage, source: MacAddress) -> EthernetFrame:
    """Wrap a switchlet package in a capsule frame.

    Raises:
        PacketError: if the serialized package does not fit in one frame
            (capsules are single-frame by construction; larger switchlets go
            over the TFTP path).
    """
    payload = package.to_bytes()
    if len(payload) > MAX_PAYLOAD:
        raise PacketError(
            f"switchlet {package.name!r} serializes to {len(payload)} bytes, "
            f"which exceeds the {MAX_PAYLOAD}-byte single-frame capsule limit"
        )
    return EthernetFrame(
        destination=CAPSULE_MULTICAST,
        source=source,
        ethertype=int(EtherType.SWITCHLET_CAPSULE),
        payload=payload,
    )


def decode_capsule(frame: EthernetFrame) -> SwitchletPackage:
    """Extract the switchlet package from a capsule frame.

    Raises:
        PacketError: if the frame is not a capsule.
        LoadError: if the payload is not a valid serialized package.
    """
    if int(frame.ethertype) != int(EtherType.SWITCHLET_CAPSULE):
        raise PacketError("frame is not a switchlet capsule")
    return SwitchletPackage.from_bytes(frame.payload)


class CapsuleReceiver:
    """Loads switchlets delivered in-band to an active node."""

    def __init__(self, node: ActiveNode) -> None:
        self.node = node
        self._iport = node.unixnet.bind_addr(str(CAPSULE_MULTICAST))
        node.unixnet.set_handler_in(self._iport, self._handle_packet)
        self.capsules_loaded = 0
        self.capsules_rejected = 0

    def _handle_packet(self, packet: Packet) -> None:
        try:
            frame = packet_bytes_to_frame(packet.pkt)
            package = decode_capsule(frame)
        except (ProtocolError, LoadError):
            self.capsules_rejected += 1
            return
        try:
            self.node.load_switchlet_bytes(package.to_bytes())
        except SwitchletError:
            self.capsules_rejected += 1
            self.node.sim.trace.emit(
                self.node.name, "capsule.load_failed", {"name": package.name}
            )
            return
        self.capsules_loaded += 1
        self.node.sim.trace.emit(self.node.name, "capsule.load_ok", {"name": package.name})
