"""The scenario registry and the topology-matrix expander.

Scenarios are registered by name as *factories*: callables taking keyword
parameters (ring length, segment speed, host count, VLAN layout, ...) and
returning a :class:`~repro.scenario.spec.ScenarioSpec`.  The matrix expander
turns one factory plus a table of axis values into a deterministic family of
specs — the topology-table idiom of the related switch repos, applied to the
paper's experiments.
"""

from __future__ import annotations

import inspect
import itertools
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.scenario.spec import ScenarioSpec

ScenarioFactory = Callable[..., ScenarioSpec]


@dataclass(frozen=True)
class ScenarioEntry:
    """One registry entry.

    Attributes:
        name: registry key.
        factory: ``factory(**params) -> ScenarioSpec``.
        description: one-line summary for the catalog listing.
        axes: names of the factory parameters meant to be swept (purely
            documentary; any factory parameter can be used as an axis).
        tie_prone: the topology class admits residual same-instant wire
            ties (queueing feedback re-aligning causal chains on a loop),
            which the canonical-merge contract deliberately refuses to
            order.  Such entries promise the *tie-excused* relaxed
            contract — divergence from strict is legitimate at or after
            the first tie instant — so catalog-wide plain bit-identity
            tests skip them and the scenario fuzzer covers them with its
            tie-horizon oracle instead.  Strict-mode identities (sharded
            vs unsharded) are unaffected and still hold.
    """

    name: str
    factory: ScenarioFactory
    description: str = ""
    axes: Tuple[str, ...] = ()
    tie_prone: bool = False


_REGISTRY: Dict[str, ScenarioEntry] = {}


def register_scenario(
    name: str,
    factory: Optional[ScenarioFactory] = None,
    *,
    description: str = "",
    axes: Sequence[str] = (),
    tie_prone: bool = False,
):
    """Register a scenario factory (usable directly or as a decorator).

    Raises:
        ValueError: if ``name`` is already registered.
    """

    def _register(fn: ScenarioFactory) -> ScenarioFactory:
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} is already registered")
        summary = description
        if not summary and fn.__doc__:
            summary = fn.__doc__.strip().splitlines()[0]
        _REGISTRY[name] = ScenarioEntry(
            name=name,
            factory=fn,
            description=summary,
            axes=tuple(axes),
            tie_prone=tie_prone,
        )
        return fn

    if factory is None:
        return _register
    return _register(factory)


def scenario_entry(name: str) -> ScenarioEntry:
    """Look up a registry entry by name."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"no scenario named {name!r}; registered: {sorted(_REGISTRY)}"
        ) from exc


def get_scenario(name: str, **params: object) -> ScenarioSpec:
    """Instantiate a registered scenario's spec with the given parameters.

    The spec's recorded ``params`` are updated with the values used, and its
    name is suffixed with them (``ring[n_bridges=5]``) when any are given, so
    matrix-expanded families stay distinguishable in output.
    """
    spec = scenario_entry(name).factory(**params)
    if params:
        suffix = ",".join(f"{key}={params[key]}" for key in params)
        spec = replace(spec, name=f"{spec.name}[{suffix}]").with_params(**params)
    return spec


def list_scenarios() -> List[ScenarioEntry]:
    """Every registered scenario, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


# ---------------------------------------------------------------------------
# Matrix expansion
# ---------------------------------------------------------------------------


def expand_matrix(
    name: str,
    axes: Mapping[str, Iterable[object]],
    base_params: Optional[Mapping[str, object]] = None,
) -> List[ScenarioSpec]:
    """Expand one registered scenario over a table of axis values.

    The cartesian product is taken in the order the axes are given (first
    axis varies slowest), and values are used in their given order, so the
    expansion is fully deterministic: the same table always yields the same
    family in the same order.

    Args:
        name: registered scenario name.
        axes: axis name -> sequence of values (e.g.
            ``{"n_bridges": [1, 2, 4, 8], "bandwidth_bps": [1e7, 1e8]}``).
        base_params: fixed parameters applied to every point.

    Returns:
        One spec per matrix point, with the point's parameters recorded in
        ``spec.params`` and appended to ``spec.name``.

    Raises:
        ValueError: if an axis or base parameter names no factory
            parameter.  A typo'd axis (``n_bridge`` for ``n_bridges``)
            would otherwise surface as a ``TypeError`` from deep inside
            the factory call on the first matrix point — here it is
            rejected up front, with the valid names listed.
    """
    fixed = dict(base_params or {})
    axis_names = list(axes)
    factory = scenario_entry(name).factory
    parameters = inspect.signature(factory).parameters
    if not any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    ):
        unknown = [
            key for key in (*axis_names, *fixed) if key not in parameters
        ]
        if unknown:
            raise ValueError(
                f"unknown axes {sorted(set(unknown))} for scenario {name!r}; "
                f"the factory accepts {sorted(parameters)}"
            )
    axis_values = [list(axes[axis]) for axis in axis_names]
    specs: List[ScenarioSpec] = []
    for point in itertools.product(*axis_values):
        params = dict(fixed)
        params.update(zip(axis_names, point))
        specs.append(get_scenario(name, **params))
    return specs
