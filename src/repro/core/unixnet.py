"""``Unixnet`` — the network access module of Figure 4.

This is the interface through which switchlets reach the machine's network
interfaces.  It follows the paper's signature closely:

* input and output are separated (``iport`` / ``oport``),
* ports are bound by interface name (``bind_in``/``bind_out``), by "next
  available" (``get_iport``/``get_oport``), or by *address*
  (``bind_addr``) — the mechanism the spanning-tree and control switchlets
  use to claim the All-Bridges / DEC multicast addresses,
* the **first switchlet to bind a given port succeeds and all others fail**
  (``Already_bound``), and binding an input port puts the underlying
  interface into promiscuous mode,
* packets are records of ``(len, addr, pkt)`` that the switchlet must
  unmarshal itself.

Two pragmatic adaptations for an event-driven simulator are documented here
rather than hidden:

* ``pkt`` contains the frame header plus payload but **not** the frame check
  sequence; the FCS is computed by the NIC on transmit (the paper likewise
  cannot set the CRC on a write) and verified by the NIC on receive.
* In addition to the pull-style ``get_next_pkt_in``, a bound input port may
  install a push handler with ``set_handler_in``; the paper gets the same
  effect with a per-port reader thread, which a discrete-event kernel
  expresses more naturally as a callback.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from repro.ethernet.ethertype import EtherType
from repro.ethernet.frame import EthernetFrame, VlanTag
from repro.ethernet.mac import MacAddress
from repro.exceptions import AlreadyBound, FrameError, NoInterface
from repro.core.safeunix import SockAddr


#: The 802.1Q tag protocol identifier, recognized in ``pkt`` byte strings.
_VLAN_TPID = int(EtherType.VLAN_8021Q)


def frame_to_packet_bytes(frame: EthernetFrame) -> bytes:
    """Flatten an Ethernet frame into the ``pkt`` byte string switchlets see.

    802.1Q tags are preserved in-line (TPID + TCI between the source address
    and the real EtherType), exactly as on the wire — a VLAN-aware switchlet
    must unmarshal the tag itself, like any other header field.
    """
    header = frame.destination.octets + frame.source.octets
    if frame.vlan is not None:
        header += _VLAN_TPID.to_bytes(2, "big") + frame.vlan.tci.to_bytes(2, "big")
    return header + int(frame.ethertype).to_bytes(2, "big") + frame.payload


#: Version byte of the frame-envelope format (see :func:`frame_to_envelope_bytes`).
_ENVELOPE_VERSION = 1

#: Envelope flag bits.
_ENV_HAS_VLAN = 0x01
_ENV_HAS_VERDICT = 0x02
_ENV_HAS_SEQ = 0x04

#: Fault-model verdict codes carried by the envelope.
ENVELOPE_VERDICTS = (None, "deliver", "loss", "corrupt")


def frame_to_envelope_bytes(
    frame: EthernetFrame,
    when_ns: int = 0,
    verdict: Optional[str] = None,
    seq: Optional[int] = None,
) -> bytes:
    """Flatten a frame into a *lossless* transport envelope.

    The wire format of :func:`frame_to_packet_bytes` is what switchlets see
    and is deliberately ambiguous for one corner: an untagged frame whose
    EtherType happens to be 0x8100 re-parses as a tagged frame.  The
    envelope is the fabric's own transport encoding (cross-process shard
    mailboxes), so it must round-trip *every* field exactly; it therefore
    carries an explicit VLAN-presence flag instead of the in-line TPID
    trick, plus the metadata a serialized mailbox entry needs: the
    simulated emission time, an optional fault-model verdict, and an
    optional emission sequence number.

    Layout (big-endian throughout)::

        version(1) flags(1) when_ns(8) dst(6) src(6) ethertype(2)
        [tci(2) if flags&HAS_VLAN] [verdict(1) if flags&HAS_VERDICT]
        [seq(8) if flags&HAS_SEQ] payload_len(4) payload
    """
    flags = 0
    extra = b""
    if frame.vlan is not None:
        flags |= _ENV_HAS_VLAN
        extra += frame.vlan.tci.to_bytes(2, "big")
    if verdict is not None:
        if verdict not in ENVELOPE_VERDICTS:
            raise FrameError(f"unknown envelope verdict {verdict!r}")
        flags |= _ENV_HAS_VERDICT
        extra += bytes([ENVELOPE_VERDICTS.index(verdict)])
    if seq is not None:
        flags |= _ENV_HAS_SEQ
        extra += seq.to_bytes(8, "big")
    return (
        bytes([_ENVELOPE_VERSION, flags])
        + when_ns.to_bytes(8, "big")
        + frame.destination.octets
        + frame.source.octets
        + int(frame.ethertype).to_bytes(2, "big")
        + extra
        + len(frame.payload).to_bytes(4, "big")
        + frame.payload
    )


def envelope_bytes_to_frame(data: bytes):
    """Rebuild ``(frame, meta)`` from :func:`frame_to_envelope_bytes` output.

    ``meta`` is a dict with keys ``when_ns``, ``verdict`` (``None`` or one
    of :data:`ENVELOPE_VERDICTS`), and ``seq`` (``None`` if absent).
    """
    if len(data) < 28:
        raise FrameError(f"envelope too short: {len(data)} bytes")
    if data[0] != _ENVELOPE_VERSION:
        raise FrameError(f"unknown envelope version {data[0]}")
    flags = data[1]
    when_ns = int.from_bytes(bytes(data[2:10]), "big")
    destination = MacAddress(bytes(data[10:16]))
    source = MacAddress(bytes(data[16:22]))
    ethertype = int.from_bytes(bytes(data[22:24]), "big")
    offset = 24
    vlan = None
    if flags & _ENV_HAS_VLAN:
        vlan = VlanTag.from_tci(int.from_bytes(bytes(data[offset : offset + 2]), "big"))
        offset += 2
    verdict = None
    if flags & _ENV_HAS_VERDICT:
        code = data[offset]
        offset += 1
        if code >= len(ENVELOPE_VERDICTS):
            raise FrameError(f"unknown envelope verdict code {code}")
        verdict = ENVELOPE_VERDICTS[code]
    seq = None
    if flags & _ENV_HAS_SEQ:
        seq = int.from_bytes(bytes(data[offset : offset + 8]), "big")
        offset += 8
    payload_len = int.from_bytes(bytes(data[offset : offset + 4]), "big")
    offset += 4
    payload = bytes(data[offset : offset + payload_len])
    if len(payload) != payload_len:
        raise FrameError(
            f"envelope payload truncated: expected {payload_len}, got {len(payload)}"
        )
    frame = EthernetFrame(
        destination=destination,
        source=source,
        ethertype=ethertype,
        payload=payload,
        vlan=vlan,
    )
    return frame, {"when_ns": when_ns, "verdict": verdict, "seq": seq}


def packet_bytes_to_frame(data: bytes) -> EthernetFrame:
    """Rebuild an Ethernet frame from switchlet-produced ``pkt`` bytes."""
    if len(data) < 14:
        raise FrameError(f"packet bytes too short for an Ethernet header: {len(data)}")
    outer_type = int.from_bytes(bytes(data[12:14]), "big")
    vlan = None
    body_start = 14
    if outer_type == _VLAN_TPID:
        if len(data) < 18:
            raise FrameError(f"packet bytes too short for an 802.1Q header: {len(data)}")
        vlan = VlanTag.from_tci(int.from_bytes(bytes(data[14:16]), "big"))
        ethertype = int.from_bytes(bytes(data[16:18]), "big")
        body_start = 18
    else:
        ethertype = outer_type
    return EthernetFrame(
        destination=MacAddress(bytes(data[0:6])),
        source=MacAddress(bytes(data[6:12])),
        ethertype=ethertype,
        payload=bytes(data[body_start:]),
        vlan=vlan,
    )


@dataclass(frozen=True)
class Packet:
    """The packet record of Figure 4: ``{len; addr; pkt}`` plus the input port name.

    Attributes:
        len: length of ``pkt`` in bytes.
        addr: a :class:`~repro.core.safeunix.SockAddr` describing where the
            packet came from (interface name and source MAC).
        pkt: the raw frame bytes (header + payload, no FCS).
        iport: the name of the input port the packet arrived on.
    """

    len: int
    addr: SockAddr
    pkt: bytes
    iport: str


PacketHandler = Callable[[Packet], None]
TransmitCallback = Callable[[str, EthernetFrame], None]


class _InputBinding:
    """State for one bound input port (physical interface or address)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.queue: Deque[Packet] = deque()
        self.handler: Optional[PacketHandler] = None
        self.packets_delivered = 0

    def deliver(self, packet: Packet) -> None:
        self.packets_delivered += 1
        if self.handler is not None:
            self.handler(packet)
        else:
            self.queue.append(packet)


class IPort:
    """Opaque input-port handle returned to switchlets."""

    def __init__(self, binding: _InputBinding, kind: str) -> None:
        self._binding = binding
        self._kind = kind

    @property
    def name(self) -> str:
        """The bound interface name (or address string for address bindings)."""
        return self._binding.name

    def __repr__(self) -> str:
        return f"<iport {self._binding.name} ({self._kind})>"


class OPort:
    """Opaque output-port handle returned to switchlets."""

    def __init__(self, name: str) -> None:
        self._name = name

    @property
    def name(self) -> str:
        """The bound interface name."""
        return self._name

    def __repr__(self) -> str:
        return f"<oport {self._name}>"


class Unixnet:
    """The ``Unixnet`` module implementation for one active node.

    The owning :class:`~repro.core.node.ActiveNode` constructs one instance,
    registers its interfaces with :meth:`add_interface`, feeds received
    frames in with :meth:`deliver_frame`, and supplies a ``transmit``
    callback that puts frames on the wire (after charging the transmit-side
    kernel-crossing cost).
    """

    def __init__(
        self, node_name: str, transmit: TransmitCallback, trace=None
    ) -> None:
        self._node_name = node_name
        self._transmit = transmit
        #: Optional :class:`~repro.sim.trace.TraceRecorder`; the owning node
        #: passes its simulator's hub so demux misses show up in timelines.
        self._trace = trace
        self._interface_order: List[str] = []
        self._promiscuous_hook: Dict[str, Callable[[bool], None]] = {}
        self._interface_macs: Dict[str, MacAddress] = {}
        self._in_bindings: Dict[str, _InputBinding] = {}
        self._out_bindings: Dict[str, OPort] = {}
        self._addr_bindings: Dict[str, _InputBinding] = {}
        # Statistics (read by the node, not exported to switchlets)
        self.packets_delivered = 0
        self.packets_unclaimed = 0
        self.packets_sent = 0

    # ------------------------------------------------------------------
    # Node-side wiring (not exported to switchlets)
    # ------------------------------------------------------------------

    def add_interface(
        self,
        name: str,
        mac: MacAddress,
        set_promiscuous: Callable[[bool], None],
    ) -> None:
        """Register a physical interface by name."""
        if name in self._interface_order:
            raise AlreadyBound(f"interface {name!r} already registered")
        self._interface_order.append(name)
        self._interface_macs[name] = mac
        self._promiscuous_hook[name] = set_promiscuous

    def interface_names(self) -> list:
        """The registered interface names, in registration order."""
        return list(self._interface_order)

    def interface_mac(self, name: str) -> MacAddress:
        """The MAC address of a registered interface."""
        try:
            return self._interface_macs[name]
        except KeyError as exc:
            raise NoInterface(f"no interface named {name!r}") from exc

    def deliver_frame(self, interface: str, frame: EthernetFrame) -> Optional[Packet]:
        """Deliver a received frame to the appropriate binding.

        Address bindings take precedence over interface bindings, mirroring
        the demultiplexer behaviour the spanning-tree switchlet relies on.
        Returns the packet if some binding claimed it, else ``None``.
        """
        pkt = frame_to_packet_bytes(frame)
        packet = Packet(
            len=len(pkt),
            addr=SockAddr(interface=interface, mac=str(frame.source)),
            pkt=pkt,
            iport=interface,
        )
        addr_binding = self._addr_bindings.get(str(frame.destination))
        if addr_binding is not None:
            self.packets_delivered += 1
            addr_binding.deliver(packet)
            return packet
        in_binding = self._in_bindings.get(interface)
        if in_binding is not None:
            self.packets_delivered += 1
            in_binding.deliver(packet)
            return packet
        self.packets_unclaimed += 1
        trace = self._trace
        if trace is not None and trace.wants("unixnet.unclaimed"):
            trace.emit(
                self._node_name,
                "unixnet.unclaimed",
                lambda: {"interface": interface, "destination": str(frame.destination)},
            )
        return None

    def reset(self) -> None:
        """Drop every binding (used when a node is reset between experiments)."""
        self._in_bindings.clear()
        self._out_bindings.clear()
        self._addr_bindings.clear()

    # ------------------------------------------------------------------
    # Input ports (exported)
    # ------------------------------------------------------------------

    def bind_in(self, interface: str) -> IPort:
        """Bind the named interface for input (first bind wins)."""
        if interface not in self._interface_order:
            raise NoInterface(f"no interface named {interface!r}")
        if interface in self._in_bindings:
            raise AlreadyBound(f"input port {interface!r} is already bound")
        binding = _InputBinding(interface)
        self._in_bindings[interface] = binding
        # The paper: "whenever an input port is bound, it is put into
        # promiscuous mode" — a transparent bridge must see everything.
        self._promiscuous_hook[interface](True)
        return IPort(binding, "interface")

    def bind_addr(self, address: str) -> IPort:
        """Bind a destination MAC address (e.g. the All-Bridges multicast group).

        Frames addressed to ``address`` on *any* interface are delivered to
        this binding instead of the per-interface binding.
        """
        key = str(MacAddress.from_string(address))
        if key in self._addr_bindings:
            raise AlreadyBound(f"address {key} is already bound")
        binding = _InputBinding(key)
        self._addr_bindings[key] = binding
        return IPort(binding, "address")

    def get_iport(self) -> IPort:
        """Bind the next interface that is not yet bound for input."""
        for interface in self._interface_order:
            if interface not in self._in_bindings:
                return self.bind_in(interface)
        raise NoInterface("no unbound input interface is available")

    def pkts_waiting_p_in(self, iport: IPort) -> bool:
        """Whether packets are queued on this input port (pull mode)."""
        return bool(iport._binding.queue)

    def get_next_pkt_in(self, iport: IPort) -> Packet:
        """Dequeue the next packet from this input port (pull mode).

        Raises:
            NoInterface: if no packet is waiting (the paper's reader thread
                would block; event-driven callers check
                :meth:`pkts_waiting_p_in` first or use a push handler).
        """
        if not iport._binding.queue:
            raise NoInterface(f"no packet waiting on {iport.name!r}")
        return iport._binding.queue.popleft()

    def set_handler_in(self, iport: IPort, handler: Optional[PacketHandler]) -> None:
        """Install (or clear) a push handler on a bound input port."""
        iport._binding.handler = handler

    def unbind_in(self, iport: IPort) -> None:
        """Release an input-port binding."""
        name = iport._binding.name
        if self._in_bindings.get(name) is iport._binding:
            del self._in_bindings[name]
            self._promiscuous_hook[name](False)

    def unbind_addr(self, iport: IPort) -> None:
        """Release an address binding."""
        name = iport._binding.name
        if self._addr_bindings.get(name) is iport._binding:
            del self._addr_bindings[name]

    # ------------------------------------------------------------------
    # Output ports (exported)
    # ------------------------------------------------------------------

    def bind_out(self, interface: str) -> OPort:
        """Bind the named interface for output (first bind wins)."""
        if interface not in self._interface_order:
            raise NoInterface(f"no interface named {interface!r}")
        if interface in self._out_bindings:
            raise AlreadyBound(f"output port {interface!r} is already bound")
        oport = OPort(interface)
        self._out_bindings[interface] = oport
        return oport

    def get_oport(self) -> OPort:
        """Bind the next interface that is not yet bound for output."""
        for interface in self._interface_order:
            if interface not in self._out_bindings:
                return self.bind_out(interface)
        raise NoInterface("no unbound output interface is available")

    def unbind_out(self, oport: OPort) -> None:
        """Release an output-port binding."""
        if self._out_bindings.get(oport.name) is oport:
            del self._out_bindings[oport.name]

    def ready_to_send_p_out(self, oport: OPort) -> bool:
        """Whether the output port can accept a frame (always true here)."""
        return oport.name in self._out_bindings

    def send_pkt_out(
        self,
        oport: OPort,
        data: bytes,
        offset: int,
        length: int,
        addr: Optional[SockAddr] = None,
    ) -> int:
        """Transmit ``data[offset:offset+length]`` on the bound output port.

        The byte string must be a complete Ethernet header plus payload (no
        FCS); returns the number of bytes accepted for transmission.  The
        ``addr`` argument is accepted for interface fidelity with Figure 4
        but is informational only — the frame's own header determines where
        it goes.
        """
        if self._out_bindings.get(oport.name) is not oport:
            raise NoInterface(f"output port {oport.name!r} is not bound")
        window = bytes(data[offset : offset + length])
        frame = packet_bytes_to_frame(window)
        self.packets_sent += 1
        self._transmit(oport.name, frame)
        return len(window)

    # ------------------------------------------------------------------
    # Generic and debugging functions (exported)
    # ------------------------------------------------------------------

    def iport_to_oport(self, iport: IPort) -> OPort:
        """Bind (or return) the output port for the same interface as ``iport``."""
        name = iport._binding.name
        existing = self._out_bindings.get(name)
        if existing is not None:
            return existing
        return self.bind_out(name)

    def debug_iport_to_string(self, iport: IPort) -> str:
        """Debugging aid: describe an input port."""
        return f"iport({iport.name}, queued={len(iport._binding.queue)})"

    def debug_oport_to_string(self, oport: OPort) -> str:
        """Debugging aid: describe an output port."""
        return f"oport({oport.name})"

    def debug_demux_num_devs(self) -> int:
        """Debugging aid: number of registered physical interfaces."""
        return len(self._interface_order)

    #: Names exported to switchlets when this object is thinned into ``Unixnet``.
    THINNED_EXPORTS = (
        "bind_in",
        "bind_addr",
        "get_iport",
        "pkts_waiting_p_in",
        "get_next_pkt_in",
        "set_handler_in",
        "unbind_in",
        "unbind_addr",
        "bind_out",
        "get_oport",
        "unbind_out",
        "ready_to_send_p_out",
        "send_pkt_out",
        "iport_to_oport",
        "interface_names",
        "interface_mac",
        "debug_iport_to_string",
        "debug_oport_to_string",
        "debug_demux_num_devs",
    )
