"""Section 7.3 — frame rates and the per-frame cost ceiling.

The paper reports forwarding rates through the active bridge from ~360
frames/second for ~50-byte frames to ~1790 frames/second for 1024-byte
frames, and derives a ~2100 frames/second (~32 Mb/s) ceiling from the 0.47 ms
measured per frame inside Caml.  This benchmark measures the realized
forwarding rate of the simulated bridge during ttcp trials at several frame
sizes and prints the cost-model ceilings next to them.
"""

from __future__ import annotations

from _harness import emit, run_once

from repro.analysis.tables import render_table
from repro.costs.model import CostModel
from repro.measurement.framerate import FrameRateProbe, bridge_ceiling, interpreter_ceiling
from repro.measurement.ttcp import TtcpSession
from repro.scenario import run_scenario

#: Application write sizes whose single-segment frames approximate the
#: paper's "frame size" axis.
WRITE_SIZES = [64, 512, 1024, 1400]


def measure():
    """Frame rate through the active bridge per write size."""
    setup = run_scenario("pair/active-bridge", seed=3).as_pair()
    sim = setup.network.sim
    bridge = setup.device
    start = setup.ready_time
    rows = []
    for index, size in enumerate(WRITE_SIZES):
        session = TtcpSession(
            sim,
            setup.left,
            setup.right,
            buffer_size=size,
            total_bytes=max(60_000, size * 150),
            receiver_port=6000 + 2 * index,
            sender_port=6001 + 2 * index,
        )
        probe = FrameRateProbe(sim, bridge)
        session.start(start)
        sim.run_until(start + 0.05)
        probe.start()
        deadline = start + 120.0
        while not session.result.completed and sim.now < deadline:
            sim.run_until(min(deadline, sim.now + 0.02))
        sample = probe.stop()
        rows.append((size, session.result, sample))
        start = sim.now + 0.5
    return rows


def test_frame_rates_and_ceilings(benchmark):
    rows = run_once(benchmark, measure)
    model = CostModel()

    table_rows = []
    for size, result, sample in rows:
        table_rows.append(
            [
                size,
                f"{sample.frames_per_second:.0f}",
                f"{result.throughput_mbps:.2f}",
                f"{bridge_ceiling(model, size + 60):.0f}",
                f"{interpreter_ceiling(model, size + 60):.0f}",
            ]
        )
    emit(
        "Section 7.3 -- frame rates through the active bridge",
        render_table(
            ["write size (B)", "measured f/s", "Mb/s", "bridge ceiling f/s", "interpreter ceiling f/s"],
            table_rows,
        ),
    )
    emit(
        "Paper anchors",
        "paper: ~360 f/s at ~50 B ... ~1790 f/s at 1024 B; 0.47 ms/frame in Caml "
        "=> ~2100 f/s (~32 Mb/s) ceiling.\n"
        f"model: interpreter cost at 1024 B = {model.switchlet_frame_cost(1024) * 1e3:.2f} ms "
        f"=> ceiling {interpreter_ceiling(model, 1024):.0f} f/s "
        f"({interpreter_ceiling(model, 1024) * 1024 * 8 / 1e6:.1f} Mb/s).\n"
        "Note: in the paper, small-write ttcp trials are *sender*-bound (TCP "
        "small-segment behaviour on a P166), hence ~360 f/s; the reproduction's "
        "sender is faster, so small-frame trials run up against the bridge's own "
        "per-frame ceiling instead.  The MTU-sized anchor and the ceiling are the "
        "comparable quantities.",
    )

    # Every trial completed and the realized rate stays below the per-frame
    # ceiling of the full bridge path (data + acknowledgement frames share it).
    rates = [sample.frames_per_second for _size, _result, sample in rows]
    for (size, result, sample) in rows:
        assert result.completed
        assert sample.frames_per_second < 1.1 / model.bridge_frame_cost(60)
    # The large-frame rate lands in the paper's neighbourhood (hundreds to a
    # couple of thousand frames per second, not tens or tens of thousands).
    assert 800 < rates[-1] < 2500
    # The 0.47 ms in-Caml cost reproduces the ~2100 f/s ceiling at 1024 B.
    assert 1900 < interpreter_ceiling(model, 1024) < 2300
