"""The C buffered repeater baseline (Section 7.3).

"We also built a very simple buffered repeater in C to try to determine the
smallest overheads that a user mode program could expect to see.  This
program simply opens two Ethernet devices in promiscuous mode and, for each
packet received on one of the interfaces, writes the packet on the other.
This gives some idea of the costs caused by bringing the data through the
Linux kernel into user space."

:class:`BufferedRepeater` is that program as a simulated station: no
switchlet machinery, no learning, no spanning tree — just a per-frame cost
(two kernel crossings plus a small copy) charged on a single-server CPU and a
blind copy to every other port.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.costs.cpu import CpuQueue
from repro.costs.model import CostModel
from repro.ethernet.frame import EthernetFrame
from repro.ethernet.mac import MacAddress
from repro.exceptions import TopologyError
from repro.lan.nic import NetworkInterface
from repro.lan.segment import Segment
from repro.sim.engine import Simulator

#: Namespace base for repeater interface MACs (allocated per engine, so runs
#: in one process stay bit-identical).
_AUTO_MAC_BASE = 0xC0_0000


class BufferedRepeater:
    """A user-space buffered repeater with no bridge intelligence.

    Args:
        sim: owning simulator.
        name: station name used in traces.
        cost_model: cost constants (the repeater uses the ``repeater_*`` and
            ``kernel_crossing`` entries).
    """

    def __init__(
        self, sim: Simulator, name: str, cost_model: Optional[CostModel] = None
    ) -> None:
        self.sim = sim
        self.name = name
        self.costs = cost_model if cost_model is not None else CostModel()
        self.cpu = CpuQueue(sim, f"{name}.cpu")
        self.interfaces: Dict[str, NetworkInterface] = {}
        self.frames_received = 0
        self.frames_repeated = 0

    def add_interface(
        self, name: str, segment: Segment, mac: Optional[MacAddress] = None
    ) -> NetworkInterface:
        """Attach a promiscuous interface to a segment."""
        if name in self.interfaces:
            raise TopologyError(f"repeater {self.name!r} already has interface {name!r}")
        if mac is None:
            mac = MacAddress.locally_administered(self.sim.auto_station_id(_AUTO_MAC_BASE))
        nic = NetworkInterface(self.sim, f"{self.name}.{name}", mac)
        nic.attach(segment)
        nic.set_promiscuous(True)
        # segment_local: the repeat path rides the CPU queue (see _receive).
        nic.set_handler(
            lambda _nic, frame, port=name: self._receive(port, frame),
            segment_local=True,
        )
        self.interfaces[name] = nic
        return nic

    def _receive(self, in_port: str, frame: EthernetFrame) -> None:
        self.frames_received += 1
        cost = self.costs.repeater_frame_cost_total(frame.frame_length)

        def repeat() -> None:
            trace = self.sim.trace
            forward_wanted = trace.wants("repeater.forward")
            for name, nic in self.interfaces.items():
                if name == in_port:
                    continue
                self.frames_repeated += 1
                if forward_wanted:
                    trace.emit(
                        self.name, "repeater.forward", lambda name=name: {"interface": name}
                    )
                nic.send(frame)

        self.cpu.submit(cost, repeat)

    def statistics(self) -> dict:
        """Forwarding counters."""
        return {
            "frames_received": self.frames_received,
            "frames_repeated": self.frames_repeated,
            "cpu_utilization": self.cpu.utilization(),
        }
