"""Ethernet substrate: MAC addresses, EtherTypes, frames, and CRC-32.

The active bridge is a *transparent* data-link-layer device: everything it
touches is an Ethernet frame.  This package provides the wire format used by
every other layer of the reproduction — the LAN substrate transports encoded
frames, the minimal IP/UDP/TFTP stack rides in frame payloads, and the
spanning-tree protocols define their own frame formats on top of it.
"""

from repro.ethernet.mac import (
    MacAddress,
    BROADCAST,
    ALL_BRIDGES_MULTICAST,
    DEC_MANAGEMENT_MULTICAST,
)
from repro.ethernet.ethertype import EtherType
from repro.ethernet.frame import EthernetFrame, MIN_PAYLOAD, MAX_PAYLOAD
from repro.ethernet.crc import crc32_ethernet

__all__ = [
    "MacAddress",
    "BROADCAST",
    "ALL_BRIDGES_MULTICAST",
    "DEC_MANAGEMENT_MULTICAST",
    "EtherType",
    "EthernetFrame",
    "MIN_PAYLOAD",
    "MAX_PAYLOAD",
    "crc32_ethernet",
]
