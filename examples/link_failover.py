"""Link failover: kill the root bridge's uplink mid-ping, watch STP heal it.

A closed ring of active bridges runs the IEEE 802.1D spanning tree — a
physical loop, so exactly one port is blocked.  At a scripted instant the
:mod:`repro.faults` timeline cuts the segment carrying the traffic (the
root's uplink toward the measurement hosts), a ping train keeps running
through the outage, and the :class:`~repro.measurement.ConvergenceProbe`
reports the episode the paper's Section 7.5 narrative is about:

* echoes flow, then black-hole the moment the link dies,
* ``max_age`` later the downstream bridges notice the root's hellos stopped,
* the blocked port walks listening -> learning -> forwarding
  (2 x forward delay), and the pings come back — the long way around.

Timers are compressed (hello 0.5 s, max-age 2.5 s, forward delay 1 s) so the
whole episode takes seconds; swap in the standard 2/20/15 s to reproduce the
paper's timescales (as ``benchmarks/bench_failover.py`` does).

Run with:  python examples/link_failover.py
"""

from __future__ import annotations

from repro.measurement import ConvergenceProbe
from repro.measurement.ping import PingRunner
from repro.scenario import run_scenario

FAIL_AT = 5.0
RECOVER_AT = 14.0
TIMERS = {"hello_time": 0.5, "max_age": 2.5, "forward_delay": 1.0}


def port_states(run) -> str:
    cells = []
    for device in run.devices:
        snapshot = device.func.lookup("stp.ieee").snapshot()
        for port, state in sorted(snapshot["port_states"].items()):
            if state != "forwarding":
                cells.append(f"{device.name}.{port}={state}")
    return ", ".join(cells) or "every port forwarding"


def main() -> None:
    print("compiling scenario 'ring/failover' (5 bridges in a physical loop)")
    run = run_scenario(
        "ring/failover",
        params={"n_bridges": 5, "fail_at": FAIL_AT, "recover_at": RECOVER_AT,
                **TIMERS},
    )
    run.warm_up()
    print(f"  converged at t={run.sim.now:.1f}s; non-forwarding: {port_states(run)}")
    print(f"  timeline: {[event.describe() for event in run.faults.events]}")

    probe = ConvergenceProbe(run.sim, network=run.network, fault_time=FAIL_AT)
    probe.start()

    left, right = run.host("left"), run.host("right")
    received_before = {"n": 0}
    runner = PingRunner(
        run.sim, left, right.ip, payload_size=64, count=40, interval=0.25,
        identifier=0xF0,
    )
    runner.start(run.sim.now + 0.01)

    print(f"\npinging {left.name} -> {right.name} every 250 ms through the outage...")
    checkpoints = (FAIL_AT - 0.1, FAIL_AT + 2.0, FAIL_AT + 5.0)
    for checkpoint in checkpoints:
        run.sim.run_until(checkpoint)
        delta = runner.result.received - received_before["n"]
        received_before["n"] = runner.result.received
        print(
            f"  t={run.sim.now:5.1f}s  replies so far {runner.result.received:2d}"
            f" (+{delta})  non-forwarding: {port_states(run)}"
        )
    # Read the failover episode *before* the scripted recovery: the link-up
    # at RECOVER_AT triggers its own (re-blocking) transitions, which belong
    # to a second episode, not to this reconvergence figure.
    run.sim.run_until(RECOVER_AT - 0.1)
    report = probe.report()
    run.sim.run_until(run.ready_time + 40 * 0.25 + 2.0)
    print(
        f"  t={run.sim.now:5.1f}s  replies so far {runner.result.received:2d}"
        f"  non-forwarding after recovery: {port_states(run)}"
    )
    print("\nConvergenceProbe report:")
    print(f"  fault at            : t={report.fault_time:.1f}s (link-down seg1)")
    print(f"  detection time      : {report.detection_s:.2f}s  (max-age expiry)")
    print(f"  reconvergence time  : {report.reconvergence_s:.2f}s  (+2 x forward delay)")
    print(f"  port transitions    : {report.transitions}")
    print(f"  frames lost         : {report.frames_lost} on the dead segment")
    print(f"  forwarding restored : t={report.forwarding_restored_at:.1f}s")
    loss = runner.result.loss_fraction
    print(
        f"\nping train: {runner.result.received}/{runner.result.sent} replies "
        f"({loss:.0%} lost to the outage); RTT mean {runner.result.mean_rtt_ms():.2f} ms"
    )
    print("the ring healed itself: traffic now takes the long way around.")


if __name__ == "__main__":
    main()
