"""Relaxed execution of the sharded fabric: canonical-merge mode.

The strict :class:`~repro.sim.fabric.ShardedSimulator` dispatches in the
exact global ``(time_ns, sequence)`` order, which makes sharded runs
bit-identical to the single engine — at the price of a coordinator pass and a
batch-limit comparison on every event.  *Relaxed* mode trades that total
order for throughput while keeping a provable correctness contract:

**Execution model (conservative windows).**  Let ``T`` be the globally
earliest pending event time and ``L`` the fabric lookahead (the minimum
propagation delay over cut segments, computed by the partitioner).  Every
event in the window ``[T, T + L)`` can be dispatched without inter-shard
coordination: a cross-shard effect of an event at time ``t`` materializes no
earlier than ``t + L`` — the classic Chandy–Misra–Bryant clock-plus-lookahead
bound.  The executor repeatedly computes the window, lets every shard drain
its own ring up to the window end (sequentially, or on one worker thread per
shard), and then flushes the cross-shard *mailboxes* at the barrier.  When
the shards share no cut segment (``lookahead_ns is None``) the window is the
whole run horizon and every shard free-runs.

**Mailboxes.**  During a window a shard never touches another shard's state.
Cross-shard interactions — a station transmitting on a cut segment homed
elsewhere, and a cut segment scheduling its per-shard delivery runs — are
appended to the *sending* shard's outbox (single-writer, so no locks).  At
the window barrier the coordinator merges all outboxes in the canonical
``(time_ns, sender_shard, position)`` order and applies them: transmits
replay through the segment at their recorded times, event pushes land on the
target rings.  Thread interleaving therefore cannot influence any simulation
state: relaxed runs are deterministic with and without worker threads.

**Correctness contract (canonical-merge equivalence).**  Relaxed mode does
not preserve the global emission order of trace records.  Instead, per-shard
trace streams are merged by the canonical key ``(time, shard_id, source,
shard_seq)`` — see :meth:`~repro.sim.fabric.FabricTrace.canonical_records`
for why same-instant ties of independent sources fall back to the source
name — and the contract is that the canonically merged records, all live
counters and every component statistic are identical to the strict
engine's.  The test suite proves this catalog-wide at ``shards=1,2,4``.

**Worker threads.**  ``workers > 0`` dispatches each window's shards on a
persistent thread pool.  On a free-threaded CPython build this parallelizes
the windows across cores; on a GIL build threads only add synchronization
overhead, so the benchmarked pick (see ``bench_sharded_fabric.py``) is the
sequential executor, whose win comes from the lean per-shard window loop and
the segment express lanes (:meth:`~repro.lan.segment.Segment._express_pump`).
Either way the mailbox discipline keeps results identical.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional

from repro.exceptions import SimulationError
from repro.sim.clock import NANOSECONDS_PER_SECOND

#: The fabric's synchronization modes — the single source of truth consumed
#: by :class:`~repro.sim.fabric.ShardedSimulator` and the scenario layer's
#: :class:`~repro.scenario.spec.PartitionSpec`.
SYNC_MODES = ("strict", "relaxed")

#: Thread-local "which shard is executing on this thread" marker.  Set by
#: :meth:`EngineShard._run_window` for the duration of a relaxed window; the
#: segment layer reads it to route cross-shard interactions into the correct
#: outbox (and to recognize the window context at all — outside a relaxed
#: window the classic direct paths are single-threaded and safe).
_ACTIVE = threading.local()


def active_shard():
    """The shard whose relaxed window is executing on this thread, if any."""
    return getattr(_ACTIVE, "shard", None)


def _set_active_shard(shard) -> None:
    _ACTIVE.shard = shard


class RelaxedExecutor:
    """Drives a :class:`ShardedSimulator`'s shards through relaxed windows.

    Args:
        fabric: the owning :class:`~repro.sim.fabric.ShardedSimulator`.
        workers: worker threads for window execution; ``0`` (the default)
            runs every window inline on the calling thread.
    """

    def __init__(self, fabric, workers: int = 0) -> None:
        if workers < 0:
            raise SimulationError("relaxed workers cannot be negative")
        self.fabric = fabric
        self.workers = workers
        self._pool: Optional[ThreadPoolExecutor] = None
        #: Windows executed by the last dispatch (diagnostics/benchmarks).
        self.windows = 0
        #: Mailbox entries flushed by the last dispatch.
        self.mail_flushed = 0

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def dispatch(self, until_ns: int, max_events: Optional[int] = None) -> int:
        """Run every pending event with ``time_ns <= until_ns`` (relaxed).

        With ``max_events`` the executor degrades to sequential windows so
        the budget is consumed in canonical shard order; budgeted stepping is
        a debugging affordance, not the hot path.
        """
        fabric = self.fabric
        shards = fabric._shards
        lookahead = fabric.lookahead_ns
        shared_clock = fabric.clock
        self._ensure_pool()
        for shard in shards:
            shard._enter_relaxed(shared_clock, until_ns)
        self.windows = 0
        self.mail_flushed = 0
        control = fabric._control
        dispatched = 0
        try:
            while True:
                t_min = None
                for shard in shards:
                    key = shard._queue.top_key()
                    if key is not None and (t_min is None or key[0] < t_min):
                        t_min = key[0]
                control_key = control.top_key()
                control_t = None if control_key is None else control_key[0]
                budget = None if max_events is None else max_events - dispatched
                if budget is not None and budget <= 0:
                    break
                if control_t is not None and control_t <= until_ns and (
                    t_min is None or control_t <= t_min
                ):
                    # No shard event strictly before the next control event:
                    # run the control barrier.  Every shard clock is set to
                    # the control time first, because driver callbacks may
                    # synchronously touch components on any shard.
                    dispatched += self._run_control(control_t, budget)
                    self._flush_mail(shards)
                    continue
                if t_min is None or t_min > until_ns:
                    break
                if lookahead is None:
                    window_end = until_ns
                else:
                    window_end = t_min + lookahead - 1
                    if window_end > until_ns:
                        window_end = until_ns
                if control_t is not None and window_end >= control_t:
                    # Stop the window just short of pending control work.
                    window_end = control_t - 1
                # Express pumps may legally run past the window end (their
                # chains are segment-local) but never past the run horizon
                # or a pending control event, whose callback may observe or
                # mutate anything.
                pump_bound = until_ns
                if control_t is not None and control_t - 1 < pump_bound:
                    pump_bound = control_t - 1
                for shard in shards:
                    shard._until_ns = pump_bound
                self.windows += 1
                if self._pool is not None and budget is None:
                    dispatched += self._run_window_threaded(shards, window_end)
                else:
                    for shard in shards:
                        remaining = (
                            None if budget is None else budget - dispatched
                        )
                        if remaining is not None and remaining <= 0:
                            break
                        dispatched += shard._run_window(window_end, remaining)
                self._flush_mail(shards)
                if max_events is not None and dispatched >= max_events:
                    break
        finally:
            top_ns = shared_clock._now_ns
            for shard in shards:
                if shard.cursor_ns > top_ns:
                    top_ns = shard.cursor_ns
                shard._exit_relaxed(shared_clock)
            if top_ns > shared_clock._now_ns:
                shared_clock._now_ns = top_ns
                shared_clock._now_s = top_ns / NANOSECONDS_PER_SECOND
        return dispatched

    def _run_control(self, time_ns: int, budget: Optional[int]) -> int:
        """Run every control-ring event at ``time_ns`` (a global barrier).

        All shard clocks (and the shared clock) are synchronized to the
        control time so a driver callback sees a globally consistent present
        no matter which shard's components it drives — exactly the view the
        strict engine would give it.
        """
        fabric = self.fabric
        control = fabric._control
        seconds = time_ns / NANOSECONDS_PER_SECOND
        for shard in fabric._shards:
            clock = shard.clock
            clock._now_ns = time_ns
            clock._now_s = seconds
            if time_ns > shard.cursor_ns:
                shard.cursor_ns = time_ns
        shared = fabric.clock
        shared._now_ns = time_ns
        shared._now_s = seconds
        n = 0
        while True:
            if budget is not None and n >= budget:
                break
            key = control.top_key()
            if key is None or key[0] != time_ns:
                break
            entry = control.pop()
            entry[1]()
            n += 1
        fabric._control_dispatched += n
        return n

    def _run_window_threaded(self, shards, window_end: int) -> int:
        pool = self._pool
        futures = [
            pool.submit(shard._run_window, window_end)
            for shard in shards
            if shard._queue.top_key() is not None
        ]
        return sum(future.result() for future in futures)

    # ------------------------------------------------------------------
    # Barrier: canonical mailbox flush
    # ------------------------------------------------------------------

    def _flush_mail(self, shards) -> int:
        """Apply every outbox entry in ``(time, sender shard, position)`` order.

        Entry shapes (appended by the segment layer during windows):

        * ``("push", when_ns, target_shard, callback)`` — schedule a
          fire-and-forget event on another shard's ring (cut-segment
          delivery runs);
        * ``("tx", when_ns, segment, sender_nic, frame)`` — a transmit on a
          cut segment, replayed through
          :meth:`Segment._apply_relaxed_transmit` at its recorded time;
        * ``("drop", when_ns, segment)`` — one sender-side frame loss on a
          failed cut segment (``frames_lost`` bookkeeping deferred to the
          barrier; the drop record was already emitted on the sender's
          stream at send time).

        The sort key makes the merge independent of thread scheduling, which
        is what keeps threaded relaxed runs deterministic.
        """
        entries = []
        for shard in shards:
            outbox = shard.outbox
            if outbox:
                index = shard.index
                entries.extend(
                    (entry[1], index, position, entry)
                    for position, entry in enumerate(outbox)
                )
                outbox.clear()
        if not entries:
            return 0
        entries.sort(key=lambda item: (item[0], item[1], item[2]))
        for when_ns, _, _, entry in entries:
            kind = entry[0]
            if kind == "push":
                # The target may be an EngineShard ring or the fabric facade
                # itself (a facade-homed monitoring NIC on a cut segment);
                # _relaxed_push_fire resolves to the right ring.
                entry[2]._relaxed_push_fire(when_ns, entry[3])
            elif kind == "drop":
                entry[2].frames_lost += 1
            else:
                entry[2]._apply_relaxed_transmit(when_ns, entry[3], entry[4])
        self.mail_flushed += len(entries)
        return len(entries)

    # ------------------------------------------------------------------
    # Worker pool lifecycle
    # ------------------------------------------------------------------

    def set_workers(self, workers: int) -> None:
        """Resize the worker pool (``0`` returns to sequential windows)."""
        if workers < 0:
            raise SimulationError("relaxed workers cannot be negative")
        if workers == self.workers and (workers == 0) == (self._pool is None):
            return
        self.close()
        self.workers = workers

    def _ensure_pool(self) -> None:
        if self.workers > 0 and self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="relaxed-shard"
            )

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass
