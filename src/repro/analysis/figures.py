"""Plain-text "figure" rendering: series tables and simple ASCII charts."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.analysis.tables import render_table


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    y_format: str = "{:.2f}",
) -> str:
    """Render several y-series against a shared x-axis as a table.

    This is the textual equivalent of the paper's line figures: one row per
    x value, one column per curve.
    """
    headers = [x_label] + list(series)
    rows = []
    for index, x_value in enumerate(x_values):
        row = [x_value]
        for name in series:
            values = series[name]
            if index < len(values):
                row.append(y_format.format(values[index]))
            else:
                row.append("-")
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_ascii_chart(
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    title: str = "",
) -> str:
    """Render each series as a horizontal bar per point (quick visual check)."""
    flat = [value for values in series.values() for value in values]
    peak = max(flat) if flat else 0.0
    lines = [title] if title else []
    for name, values in series.items():
        lines.append(f"{name}:")
        for index, value in enumerate(values):
            length = 0 if peak <= 0 else int(round(width * value / peak))
            bar = "#" * max(length, 0)
            lines.append(f"  [{index:2d}] {bar} {value:.2f}")
    return "\n".join(lines)


def series_from_results(results: Dict[object, object], attribute: str) -> list:
    """Extract ``attribute`` from a dict of result objects, ordered by key."""
    return [getattr(results[key], attribute) for key in sorted(results)]
