"""Tests for the ``Unixnet`` port API (Figure 4 of the paper)."""

from __future__ import annotations

import pytest

from repro.core.unixnet import (
    Packet,
    Unixnet,
    frame_to_packet_bytes,
    packet_bytes_to_frame,
)
from repro.ethernet.ethertype import EtherType
from repro.ethernet.frame import EthernetFrame
from repro.ethernet.mac import MacAddress
from repro.exceptions import AlreadyBound, FrameError, NoInterface

MAC0 = MacAddress.locally_administered(100)
MAC1 = MacAddress.locally_administered(101)
HOST_MAC = MacAddress.locally_administered(200)
MULTICAST = "01:80:c2:00:00:00"


def _make_unixnet():
    sent = []
    promiscuous = {"eth0": False, "eth1": False}
    unixnet = Unixnet("node", transmit=lambda name, frame: sent.append((name, frame)))
    unixnet.add_interface("eth0", MAC0, lambda value: promiscuous.__setitem__("eth0", value))
    unixnet.add_interface("eth1", MAC1, lambda value: promiscuous.__setitem__("eth1", value))
    return unixnet, sent, promiscuous


def _frame(dst, payload=b"payload", ethertype=EtherType.MEASUREMENT):
    return EthernetFrame(
        destination=dst if isinstance(dst, MacAddress) else MacAddress.from_string(dst),
        source=HOST_MAC,
        ethertype=int(ethertype),
        payload=payload,
    )


# ---------------------------------------------------------------------------
# Packet byte conversion
# ---------------------------------------------------------------------------


class TestPacketBytes:
    def test_roundtrip(self):
        frame = _frame(MAC0, payload=b"abcdef")
        rebuilt = packet_bytes_to_frame(frame_to_packet_bytes(frame))
        assert rebuilt.destination == frame.destination
        assert rebuilt.source == frame.source
        assert rebuilt.ethertype == frame.ethertype
        assert rebuilt.payload == frame.payload

    def test_too_short_rejected(self):
        with pytest.raises(FrameError):
            packet_bytes_to_frame(b"\x00" * 10)


# ---------------------------------------------------------------------------
# Input ports
# ---------------------------------------------------------------------------


class TestInputPorts:
    def test_bind_in_puts_interface_into_promiscuous_mode(self):
        unixnet, _, promiscuous = _make_unixnet()
        unixnet.bind_in("eth0")
        assert promiscuous["eth0"] is True
        assert promiscuous["eth1"] is False

    def test_first_bind_wins(self):
        unixnet, _, _ = _make_unixnet()
        unixnet.bind_in("eth0")
        with pytest.raises(AlreadyBound):
            unixnet.bind_in("eth0")

    def test_unknown_interface(self):
        unixnet, _, _ = _make_unixnet()
        with pytest.raises(NoInterface):
            unixnet.bind_in("eth9")

    def test_get_iport_iterates_unbound(self):
        unixnet, _, _ = _make_unixnet()
        first = unixnet.get_iport()
        second = unixnet.get_iport()
        assert {first.name, second.name} == {"eth0", "eth1"}
        with pytest.raises(NoInterface):
            unixnet.get_iport()

    def test_unbind_allows_rebinding_and_clears_promiscuous(self):
        unixnet, _, promiscuous = _make_unixnet()
        iport = unixnet.bind_in("eth0")
        unixnet.unbind_in(iport)
        assert promiscuous["eth0"] is False
        unixnet.bind_in("eth0")  # must not raise

    def test_pull_mode_queueing(self):
        unixnet, _, _ = _make_unixnet()
        iport = unixnet.bind_in("eth0")
        assert not unixnet.pkts_waiting_p_in(iport)
        unixnet.deliver_frame("eth0", _frame(MAC0))
        assert unixnet.pkts_waiting_p_in(iport)
        packet = unixnet.get_next_pkt_in(iport)
        assert isinstance(packet, Packet)
        assert packet.iport == "eth0"
        assert packet.len == len(packet.pkt)
        with pytest.raises(NoInterface):
            unixnet.get_next_pkt_in(iport)

    def test_push_handler(self):
        unixnet, _, _ = _make_unixnet()
        iport = unixnet.bind_in("eth0")
        got = []
        unixnet.set_handler_in(iport, got.append)
        unixnet.deliver_frame("eth0", _frame(MAC0, payload=b"pushed"))
        assert len(got) == 1
        assert got[0].addr.interface == "eth0"
        assert got[0].addr.mac == str(HOST_MAC)

    def test_unclaimed_frames_counted(self):
        unixnet, _, _ = _make_unixnet()
        assert unixnet.deliver_frame("eth0", _frame(MAC0)) is None
        assert unixnet.packets_unclaimed == 1


class TestAddressBindings:
    def test_address_binding_takes_precedence(self):
        unixnet, _, _ = _make_unixnet()
        iport = unixnet.bind_in("eth0")
        interface_packets = []
        unixnet.set_handler_in(iport, interface_packets.append)
        addr_port = unixnet.bind_addr(MULTICAST)
        addr_packets = []
        unixnet.set_handler_in(addr_port, addr_packets.append)
        unixnet.deliver_frame("eth0", _frame(MULTICAST))
        unixnet.deliver_frame("eth0", _frame(MAC0))
        assert len(addr_packets) == 1
        assert len(interface_packets) == 1

    def test_address_binding_receives_from_any_interface(self):
        unixnet, _, _ = _make_unixnet()
        addr_port = unixnet.bind_addr(MULTICAST)
        got = []
        unixnet.set_handler_in(addr_port, got.append)
        unixnet.deliver_frame("eth0", _frame(MULTICAST))
        unixnet.deliver_frame("eth1", _frame(MULTICAST))
        assert [packet.iport for packet in got] == ["eth0", "eth1"]

    def test_address_first_bind_wins_and_rebind_after_unbind(self):
        unixnet, _, _ = _make_unixnet()
        addr_port = unixnet.bind_addr(MULTICAST)
        with pytest.raises(AlreadyBound):
            unixnet.bind_addr(MULTICAST)
        unixnet.unbind_addr(addr_port)
        unixnet.bind_addr(MULTICAST)  # must not raise


# ---------------------------------------------------------------------------
# Output ports
# ---------------------------------------------------------------------------


class TestOutputPorts:
    def test_bind_out_and_send(self):
        unixnet, sent, _ = _make_unixnet()
        oport = unixnet.bind_out("eth1")
        frame = _frame(MAC0, payload=b"forward me")
        data = frame_to_packet_bytes(frame)
        written = unixnet.send_pkt_out(oport, data, 0, len(data), None)
        assert written == len(data)
        assert sent[0][0] == "eth1"
        assert sent[0][1].payload == b"forward me"

    def test_send_respects_offset_and_length(self):
        unixnet, sent, _ = _make_unixnet()
        oport = unixnet.bind_out("eth0")
        frame = _frame(MAC0, payload=b"0123456789")
        data = b"JUNK" + frame_to_packet_bytes(frame)
        unixnet.send_pkt_out(oport, data, 4, len(data) - 4, None)
        assert sent[0][1].payload == b"0123456789"

    def test_first_bind_wins_for_output(self):
        unixnet, _, _ = _make_unixnet()
        unixnet.bind_out("eth0")
        with pytest.raises(AlreadyBound):
            unixnet.bind_out("eth0")

    def test_get_oport_and_exhaustion(self):
        unixnet, _, _ = _make_unixnet()
        unixnet.get_oport()
        unixnet.get_oport()
        with pytest.raises(NoInterface):
            unixnet.get_oport()

    def test_send_on_unbound_port_rejected(self):
        unixnet, _, _ = _make_unixnet()
        oport = unixnet.bind_out("eth0")
        unixnet.unbind_out(oport)
        data = frame_to_packet_bytes(_frame(MAC0))
        with pytest.raises(NoInterface):
            unixnet.send_pkt_out(oport, data, 0, len(data), None)

    def test_iport_to_oport_reuses_existing_binding(self):
        unixnet, _, _ = _make_unixnet()
        iport = unixnet.bind_in("eth0")
        first = unixnet.iport_to_oport(iport)
        second = unixnet.iport_to_oport(iport)
        assert first is second
        assert unixnet.ready_to_send_p_out(first)

    def test_debug_helpers(self):
        unixnet, _, _ = _make_unixnet()
        iport = unixnet.bind_in("eth0")
        oport = unixnet.bind_out("eth1")
        assert "eth0" in unixnet.debug_iport_to_string(iport)
        assert "eth1" in unixnet.debug_oport_to_string(oport)
        assert unixnet.debug_demux_num_devs() == 2

    def test_interface_metadata(self):
        unixnet, _, _ = _make_unixnet()
        assert unixnet.interface_names() == ["eth0", "eth1"]
        assert unixnet.interface_mac("eth0") == MAC0
        with pytest.raises(NoInterface):
            unixnet.interface_mac("eth7")
