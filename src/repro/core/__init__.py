"""The active node: switchlet loader, thinned environment, and ``Unixnet``.

This package is the reproduction of the paper's primary contribution
(Section 5): a network element that can be reprogrammed on the fly with
loadable modules ("switchlets") while remaining safe, because loaded code can
only name what the loader's *thinned* environment exposes.

Key pieces:

* :class:`~repro.core.switchlet.SwitchletPackage` — a shippable unit of code
  (name, source, interface digests), the analogue of a Caml byte-code file.
* :class:`~repro.core.loader.SwitchletLoader` — compiles and executes
  packages against the thinned environment, after verifying interface
  digests (the analogue of ``Dynlink`` plus Caml's MD5 interface check).
* :mod:`~repro.core.environment` — the "initial set of eight modules"
  (``Safestd``, ``Safeunix``, ``Log``, ``Safethread``, ``Condition``,
  ``Mutex``, ``Func``, ``Unixnet``) provided to every switchlet.
* :class:`~repro.core.unixnet.Unixnet` — the Figure 4 port API.
* :class:`~repro.core.node.ActiveNode` — ties NICs, the demultiplexer, the
  loader, and the cost model together into the machine of Figures 5 and 6.
* :class:`~repro.core.netloader.NetworkLoader` — the Ethernet/IP/UDP/TFTP
  loading path of Section 5.2.
"""

from repro.core.switchlet import SwitchletPackage
from repro.core.loader import SwitchletLoader
from repro.core.node import ActiveNode
from repro.core.unixnet import Unixnet, Packet
from repro.core.registry import FuncRegistry
from repro.core.environment import build_environment, ENVIRONMENT_MODULE_NAMES
from repro.core.netloader import NetworkLoader
from repro.core.capsule import encode_capsule, decode_capsule

__all__ = [
    "SwitchletPackage",
    "SwitchletLoader",
    "ActiveNode",
    "Unixnet",
    "Packet",
    "FuncRegistry",
    "build_environment",
    "ENVIRONMENT_MODULE_NAMES",
    "NetworkLoader",
    "encode_capsule",
    "decode_capsule",
]
