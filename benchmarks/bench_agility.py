"""Section 7.5 — function agility.

Reproduces the ring experiment: three active bridges running the DEC protocol
with the control switchlet armed, a two-NIC measurement end-node that injects
an 802.1D BPDU and then measures (a) how long until an 802.1D BPDU appears on
its far card (all bridges reconfigured) and (b) how long until its prebuilt
pings start flowing again (forwarding-delay timers).

Paper: start-to-IEEE ≈ 0.056 s, start-to-ping ≈ 30.1 s.
"""

from __future__ import annotations

from _harness import emit, run_once

from repro.analysis.report import ExperimentReport
from repro.measurement.agility import AgilityProbe
from repro.scenario import run_scenario
from repro.switchlets.spanning_tree import SpanningTreeApp


def measure():
    ring = run_scenario("ring", seed=6, params={"n_bridges": 3}).as_ring()
    probe = AgilityProbe.for_ring(ring, ping_interval=1.0)
    result = probe.run(start_time=40.0, deadline=90.0)
    controls = [bridge.func.lookup("switchlet.control") for bridge in ring.bridges]
    return result, controls


def test_agility(benchmark):
    result, controls = run_once(benchmark, measure)

    report = ExperimentReport("Section 7.5 -- function agility (ring of 3 active bridges)")
    report.add(
        "Agility",
        "start to IEEE BPDU on far card",
        "0.056 s",
        f"{result.start_to_ieee:.3f} s" if result.start_to_ieee is not None else "never",
        "per-bridge reconfiguration is milliseconds; both are << 0.1 s",
    )
    report.add(
        "Agility",
        "start to first ping through",
        "30.1 s",
        f"{result.start_to_ping:.1f} s" if result.start_to_ping is not None else "never",
        "dominated by 2 x 15 s 802.1D forward delay",
    )
    emit("Paper vs. measured", report.render())

    # Every bridge transitioned and validated successfully.
    assert all(control.state == control.STATE_TERMINATED for control in controls)
    # Reconfiguration is far faster than the protocol timers (paper: < 0.1 s).
    assert result.start_to_ieee is not None and result.start_to_ieee < 0.1
    # End-to-end recovery is dominated by the two forward-delay periods.
    assert result.start_to_ping is not None
    expected = 2 * SpanningTreeApp.FORWARD_DELAY
    assert expected <= result.start_to_ping <= expected + 3.0
