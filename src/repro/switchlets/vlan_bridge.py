"""A VLAN-aware learning bridge switchlet (802.1Q-style tagged segments).

The ROADMAP's first new workload beyond the paper: the same self-learning
switching function as :mod:`repro.switchlets.learning_bridge`, but with
802.1Q semantics layered on top, following the classic access/trunk model of
fixed-function LAN switches:

* every port is either an **access** port (untagged frames, one VLAN) or a
  **trunk** port (802.1Q-tagged frames, a configurable set of VLANs),
* a trunk may carry one **native VLAN**: untagged frames arriving on the
  trunk are classified into it, and frames of the native VLAN egress the
  trunk untagged — the classic 802.1Q interoperability device for joining
  VLAN-unaware equipment across a trunk,
* each VLAN has its **own learning table** — host locations never leak
  between VLANs,
* frames are forwarded or flooded strictly within the VLAN they arrived on:
  out access ports of that VLAN untagged, out trunk ports carrying that VLAN
  tagged (untagged if it is the trunk's native VLAN),
* frames that violate the port discipline (tagged on access, untagged on a
  native-less trunk, VLAN not allowed on trunk, or a frame arriving *tagged
  with the native VLAN id* — the classic native-mismatch hazard real
  switches guard with ``vlan dot1q tag native``) are dropped and counted.

The **native-VLAN discipline invariant**: classification happens entirely at
ingress (untagged-on-access -> port VLAN, untagged-on-trunk -> native VLAN,
tagged-with-native-id -> drop), so by the time a frame reaches learning or
forwarding it has exactly one VLAN identity, and egress tagging is a pure
function of (frame VLAN, egress port config).  Learning tables are keyed by
that single identity, which is why per-VLAN isolation survives any mix of
access, tagged-trunk and native-trunk paths — and why results are identical
under the single engine and both sharded execution modes (the switchlet
never consults ordering beyond its own port's frame sequence).

Like the plain learning switchlet it replaces the dumb bridge's
``"bridge.switch"`` registration and uses its ``"bridge.send_out"`` /
``"bridge.ports"`` access points, so it slots into the same incremental
stack.  Port configuration arrives through the ``"bridge.vlan.configure"``
access point — the scenario compiler pushes the declarative
:class:`~repro.scenario.spec.PortSpec` table through it after loading.
"""

from __future__ import annotations

from repro.switchlets.framefmt import FrameFmt
from repro.switchlets.learning_bridge import LearningTable


class VlanLearningBridgeApp:
    """The VLAN-aware self-learning switching function.

    Args:
        unixnet: the thinned ``Unixnet`` module.
        func: the thinned ``Func`` registry.
        log: the thinned ``Log`` module.
        safeunix: the thinned ``Safeunix`` module (for ``gettimeofday``).
        safestd: the thinned ``Safestd`` module (for ``Hashtbl``).
        default_vlan: access VLAN assumed for ports with no explicit
            configuration (VLAN 1, as on real switches).
        aging_time: seconds after which a learned entry is no longer current.
    """

    #: Express-lane safety declaration consumed by the scenario compiler
    #: (see repro.scenario.compile): the VLAN bridge reaches the wire only
    #: through unixnet writes, which ride the node's CPU queue — its
    #: reactions never escape a segment synchronously, so the node's ports
    #: keep their ``segment_local`` declaration with this switchlet loaded.
    SEGMENT_LOCAL_SAFE = True

    SWITCH_KEY = "bridge.switch"
    SEND_OUT_KEY = "bridge.send_out"
    PORTS_KEY = "bridge.ports"
    CONFIGURE_KEY = "bridge.vlan.configure"
    SNAPSHOT_KEY = "bridge.vlan.snapshot"
    STATS_KEY = "bridge.vlan.stats"

    DEFAULT_VLAN = 1

    def __init__(self, unixnet, func, log, safeunix, safestd,
                 default_vlan=DEFAULT_VLAN,
                 aging_time=LearningTable.DEFAULT_AGING_TIME):
        self.unixnet = unixnet
        self.func = func
        self.log = log
        self.safeunix = safeunix
        self.safestd = safestd
        self.default_vlan = int(default_vlan)
        self.aging_time = float(aging_time)
        # Per-VLAN learning tables, created on first use.
        self.tables = {}
        # Port name -> {"mode": "access", "vlan": id} or
        #              {"mode": "trunk", "allowed": list-or-None}.
        self.port_config = {}
        self.port_filter = None
        self.running = False
        self.frames_handled = 0
        self.frames_forwarded = 0
        self.frames_flooded = 0
        self.frames_filtered = 0
        self.frames_suppressed = 0
        self.dropped_tagged_on_access = 0
        self.dropped_untagged_on_trunk = 0
        self.dropped_vlan_not_allowed = 0
        self.dropped_tagged_on_native = 0

    # ------------------------------------------------------------------
    # Lifecycle and configuration
    # ------------------------------------------------------------------

    def start(self):
        """Replace the dumb bridge's switching function with the VLAN one."""
        if self.running:
            return
        if not self.func.registered(self.SEND_OUT_KEY):
            raise RuntimeError(
                "VLAN bridge requires the dumb bridge switchlet to be loaded first"
            )
        self.func.register(self.SWITCH_KEY, self.switch)
        self.func.register(self.CONFIGURE_KEY, self.configure_ports)
        self.func.register(self.SNAPSHOT_KEY, self.snapshot)
        self.func.register(self.STATS_KEY, self.stats)
        # Keep the canonical filter access point pointing at this switchlet
        # so a spanning tree talks to whichever switching function is live.
        self.func.register("bridge.set_port_filter", self.set_port_filter)
        self.running = True
        self.log.log("VLAN learning bridge switching function installed")

    def configure_ports(self, config):
        """Install the port table: name -> access/trunk configuration.

        Access entries look like ``{"mode": "access", "vlan": 10}``; trunk
        entries like ``{"mode": "trunk", "allowed": [10, 20]}`` (``None``
        allows every VLAN) with an optional ``"native": 10`` VLAN that
        travels the trunk untagged (the native VLAN is implicitly carried
        even when absent from the allowed set).  Unlisted ports stay access
        ports on the default VLAN.
        """
        table = {}
        for port, entry in dict(config).items():
            mode = entry.get("mode", "access")
            if mode == "trunk":
                allowed = entry.get("allowed")
                native = entry.get("native")
                table[port] = {
                    "mode": "trunk",
                    "allowed": None
                    if allowed is None
                    else set(self._valid_vid(v) for v in allowed),
                    "native": None if native is None else self._valid_vid(native),
                }
            elif mode == "access":
                table[port] = {
                    "mode": "access",
                    "vlan": self._valid_vid(entry.get("vlan", self.default_vlan)),
                }
            else:
                raise ValueError("unknown port mode: %r" % (mode,))
        self.port_config = table
        self.log.log("VLAN port table installed: %d ports" % len(table))

    @staticmethod
    def _valid_vid(vid):
        """Reject the reserved 802.1Q ids (0 and 4095) at configuration time.

        The frame codec refuses to build tags with reserved ids; failing
        here keeps the error next to the bad configuration instead of deep
        inside the forwarding path.
        """
        value = int(vid)
        if not 1 <= value <= 0xFFE:
            raise ValueError("VLAN id out of range: %r" % (vid,))
        return value

    def set_port_filter(self, predicate):
        """Install (or clear) a spanning-tree style forwarding filter."""
        self.port_filter = predicate

    # ------------------------------------------------------------------
    # The switching function
    # ------------------------------------------------------------------

    def _port_entry(self, port):
        entry = self.port_config.get(port)
        if entry is None:
            return {"mode": "access", "vlan": self.default_vlan}
        return entry

    def _table(self, vlan):
        table = self.tables.get(vlan)
        if table is None:
            table = LearningTable(self.safestd.Hashtbl, self.aging_time)
            self.tables[vlan] = table
        return table

    def switch(self, in_port, pkt_bytes):
        """Classify the frame into a VLAN, learn, then forward or flood in it."""
        self.frames_handled += 1
        entry = self._port_entry(in_port)
        vid = FrameFmt.vlan_id(pkt_bytes)
        priority = 0
        if entry["mode"] == "access":
            if vid is not None:
                # Access ports carry exactly one untagged VLAN; a tagged
                # frame here is a misconfiguration, not traffic.
                self.dropped_tagged_on_access += 1
                return
            vlan = entry["vlan"]
            inner = bytes(pkt_bytes)
        else:
            native = entry.get("native")
            if vid is None:
                if native is None:
                    self.dropped_untagged_on_trunk += 1
                    return
                # Untagged on a native-VLAN trunk: classified into the native.
                vlan = native
                inner = bytes(pkt_bytes)
            elif vid == native:
                # Tagged with the native VLAN id: the native-mismatch hazard
                # (a peer tagging what this side expects untagged) — drop and
                # count rather than double-deliver the VLAN.
                self.dropped_tagged_on_native += 1
                return
            else:
                allowed = entry["allowed"]
                if allowed is not None and vid not in allowed:
                    self.dropped_vlan_not_allowed += 1
                    return
                vlan = vid
                # Preserve the QoS marking across trunk-to-trunk forwarding.
                priority = FrameFmt.vlan_priority(pkt_bytes)
                inner = FrameFmt.strip_vlan(pkt_bytes)

        if self._allowed(in_port, None) is False:
            self.frames_suppressed += 1
            return

        now = self.safeunix.gettimeofday()
        src = FrameFmt.src_bytes(inner)
        dst = FrameFmt.dst_bytes(inner)
        table = self._table(vlan)

        # Footnote 3 of the paper still applies, per VLAN: never learn from
        # group source addresses; group destinations always flood.
        if not FrameFmt.is_group(src):
            table.learn(FrameFmt.mac_to_str(src), now, in_port)
        if FrameFmt.is_group(dst):
            self._flood(vlan, in_port, inner, priority)
            return

        out_port = table.lookup(FrameFmt.mac_to_str(dst), now)
        if out_port is None:
            self._flood(vlan, in_port, inner, priority)
            return
        if out_port == in_port:
            self.frames_filtered += 1
            return
        if not self._allowed(in_port, out_port):
            self.frames_suppressed += 1
            return
        if self._send(vlan, out_port, inner, priority):
            self.frames_forwarded += 1

    def _flood(self, vlan, in_port, inner, priority=0):
        """Send within the VLAN out of every eligible port except ``in_port``."""
        sent = 0
        for out_port in self.func.call(self.PORTS_KEY):
            if out_port == in_port:
                continue
            if not self._allowed(in_port, out_port):
                self.frames_suppressed += 1
                continue
            if self._send(vlan, out_port, inner, priority):
                sent += 1
        if sent:
            self.frames_flooded += 1

    def _send(self, vlan, out_port, inner, priority=0):
        """Emit ``inner`` on ``out_port`` if that port carries ``vlan``.

        Access ports of the VLAN send untagged; trunk ports carrying the
        VLAN re-tag (keeping the incoming priority bits), except the trunk's
        native VLAN, which egresses untagged and is implicitly carried.
        Ports in other VLANs (or trunks not allowing this one) simply do not
        participate — that is the isolation property.
        """
        entry = self._port_entry(out_port)
        if entry["mode"] == "access":
            if entry["vlan"] != vlan:
                return False
            self.func.call(self.SEND_OUT_KEY, out_port, inner)
            return True
        if entry.get("native") == vlan:
            self.func.call(self.SEND_OUT_KEY, out_port, inner)
            return True
        allowed = entry["allowed"]
        if allowed is not None and vlan not in allowed:
            return False
        self.func.call(
            self.SEND_OUT_KEY, out_port, FrameFmt.add_vlan(inner, vlan, priority)
        )
        return True

    def _allowed(self, in_port, out_port):
        if self.port_filter is None:
            return True
        return bool(self.port_filter(in_port, out_port))

    # ------------------------------------------------------------------
    # Access points
    # ------------------------------------------------------------------

    def snapshot(self):
        """Per-VLAN host-location tables: vlan -> {mac: (age, port)}."""
        now = self.safeunix.gettimeofday()
        return {vlan: table.snapshot(now) for vlan, table in self.tables.items()}

    def stats(self):
        """Forwarding, learning and VLAN-discipline counters."""
        return {
            "frames_handled": self.frames_handled,
            "frames_forwarded": self.frames_forwarded,
            "frames_flooded": self.frames_flooded,
            "frames_filtered": self.frames_filtered,
            "frames_suppressed": self.frames_suppressed,
            "dropped_tagged_on_access": self.dropped_tagged_on_access,
            "dropped_untagged_on_trunk": self.dropped_untagged_on_trunk,
            "dropped_vlan_not_allowed": self.dropped_vlan_not_allowed,
            "dropped_tagged_on_native": self.dropped_tagged_on_native,
            "vlans": sorted(self.tables),
            "addresses_learned": sum(t.learned for t in self.tables.values()),
        }


#: Source epilogue executed when this switchlet is loaded into a node.
REGISTRATION_SOURCE = """
_app = VlanLearningBridgeApp(Unixnet, Func, Log, Safeunix, Safestd)
_app.start()
Func.register("switchlet.vlan-bridge", _app)
"""

#: The classes whose source is shipped inside the VLAN-bridge switchlet.
PACKAGED_COMPONENTS = (FrameFmt, LearningTable, VlanLearningBridgeApp)
