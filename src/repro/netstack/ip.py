"""Minimal IPv4, as described in Section 5.2 of the paper.

The paper's loader implements "a minimal IP sufficient for our purposes" —
enough to carry UDP to the TFTP server — and explicitly does **not**
implement fragmentation.  This module follows the same scope:

* full header encode/decode with checksum verification,
* protocol demultiplexing by the protocol field,
* no fragmentation: packets whose total length would exceed the MTU raise
  :class:`PacketError` instead of being fragmented,
* no options.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import IntEnum
from functools import total_ordering

from repro.exceptions import ChecksumError, PacketError
from repro.netstack.checksum import internet_checksum

IPV4_HEADER_LENGTH = 20
IPV4_VERSION = 4
DEFAULT_TTL = 64


class IpProtocol(IntEnum):
    """IP protocol numbers used by the reproduction."""

    ICMP = 1
    UDP = 17


@total_ordering
class IPv4Address:
    """A 32-bit IPv4 address."""

    __slots__ = ("_value", "_bytes")

    def __init__(self, value: int) -> None:
        if not 0 <= value < (1 << 32):
            raise PacketError(f"IPv4 address out of range: {value}")
        self._value = value
        # The 4-byte form is read on every header encode and checksum
        # pseudo-header; render it once.
        self._bytes = value.to_bytes(4, "big")

    @classmethod
    def from_string(cls, text: str) -> "IPv4Address":
        """Parse dotted-quad notation (``10.0.0.1``)."""
        parts = text.strip().split(".")
        if len(parts) != 4:
            raise PacketError(f"malformed IPv4 address: {text!r}")
        value = 0
        for part in parts:
            try:
                octet = int(part)
            except ValueError as exc:
                raise PacketError(f"malformed IPv4 address: {text!r}") from exc
            if not 0 <= octet <= 255:
                raise PacketError(f"malformed IPv4 address: {text!r}")
            value = (value << 8) | octet
        return cls(value)

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPv4Address":
        """Parse the 4-byte network representation."""
        if len(data) != 4:
            raise PacketError(f"IPv4 address must be 4 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    @property
    def value(self) -> int:
        """The 32-bit integer value."""
        return self._value

    def to_bytes(self) -> bytes:
        """The 4-byte network representation."""
        return self._bytes

    def __str__(self) -> str:
        octets = self.to_bytes()
        return ".".join(str(octet) for octet in octets)

    def __repr__(self) -> str:
        return f"IPv4Address('{self}')"

    def __hash__(self) -> int:
        return hash(self._value)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "IPv4Address") -> bool:
        if isinstance(other, IPv4Address):
            return self._value < other._value
        return NotImplemented


@dataclass(frozen=True)
class IPv4Packet:
    """An IPv4 packet (header without options, plus payload).

    Attributes:
        source: source address.
        destination: destination address.
        protocol: payload protocol number (see :class:`IpProtocol`).
        payload: the payload bytes.
        ttl: time-to-live; decremented by routers, *not* by bridges (a point
            the paper makes: bridges cannot modify the packet, which is why
            loops are catastrophic and the spanning tree is required).
        identification: identification field (no fragmentation, informational).
    """

    source: IPv4Address
    destination: IPv4Address
    protocol: int
    payload: bytes = field(default=b"")
    ttl: int = DEFAULT_TTL
    identification: int = 0

    @property
    def total_length(self) -> int:
        """Header plus payload length in bytes."""
        return IPV4_HEADER_LENGTH + len(self.payload)

    def encode(self) -> bytes:
        """Serialize to wire bytes with a valid header checksum."""
        if self.total_length > 0xFFFF:
            raise PacketError(f"IPv4 packet too large: {self.total_length} bytes")
        version_ihl = (IPV4_VERSION << 4) | (IPV4_HEADER_LENGTH // 4)
        header_without_checksum = struct.pack(
            "!BBHHHBBH4s4s",
            version_ihl,
            0,  # DSCP/ECN
            self.total_length,
            self.identification & 0xFFFF,
            0,  # flags + fragment offset: never fragmented
            self.ttl & 0xFF,
            self.protocol & 0xFF,
            0,  # checksum placeholder
            self.source.to_bytes(),
            self.destination.to_bytes(),
        )
        checksum = internet_checksum(header_without_checksum)
        header = header_without_checksum[:10] + struct.pack("!H", checksum) + header_without_checksum[12:]
        return header + self.payload

    @classmethod
    def decode(cls, data: bytes, verify: bool = True) -> "IPv4Packet":
        """Parse wire bytes.

        Args:
            data: encoded packet.
            verify: verify the header checksum (default true).

        Raises:
            PacketError: for malformed headers (wrong version, IHL, length).
            ChecksumError: if the header checksum does not verify.
        """
        if len(data) < IPV4_HEADER_LENGTH:
            raise PacketError(f"IPv4 packet too short: {len(data)} bytes")
        (
            version_ihl,
            _tos,
            total_length,
            identification,
            flags_fragment,
            ttl,
            protocol,
            _checksum,
            source_bytes,
            destination_bytes,
        ) = struct.unpack("!BBHHHBBH4s4s", data[:IPV4_HEADER_LENGTH])
        version = version_ihl >> 4
        ihl = version_ihl & 0x0F
        if version != IPV4_VERSION:
            raise PacketError(f"unsupported IP version: {version}")
        if ihl != IPV4_HEADER_LENGTH // 4:
            raise PacketError("IP options are not supported by the minimal IP layer")
        if flags_fragment & 0x3FFF:
            raise PacketError("fragmentation is not supported by the minimal IP layer")
        if total_length < IPV4_HEADER_LENGTH or total_length > len(data):
            raise PacketError(
                f"IPv4 total length {total_length} inconsistent with frame of {len(data)} bytes"
            )
        if verify and internet_checksum(data[:IPV4_HEADER_LENGTH]) != 0:
            raise ChecksumError("IPv4 header checksum mismatch")
        payload = data[IPV4_HEADER_LENGTH:total_length]
        return cls(
            source=IPv4Address.from_bytes(source_bytes),
            destination=IPv4Address.from_bytes(destination_bytes),
            protocol=protocol,
            payload=payload,
            ttl=ttl,
            identification=identification,
        )
