"""EtherType constants used throughout the reproduction.

The paper's lowest network-loader layer "demultiplexes these frames based on
the Ethernet protocol identifier"; this module defines the identifiers the
demultiplexer switches on.  Values below 0x0600 are IEEE 802.3 length fields;
the spanning-tree protocols use LLC-style frames which we tag with dedicated
pseudo EtherTypes for clarity of demultiplexing (documented per constant).
"""

from __future__ import annotations

from enum import IntEnum


class EtherType(IntEnum):
    """Protocol identifiers carried in the Ethernet type field."""

    #: IPv4, used by the minimal IP layer of the network loader stack.
    IPV4 = 0x0800

    #: IEEE 802.1Q VLAN tag protocol identifier (TPID).  A tagged frame
    #: carries this value in the outer type field, followed by the 2-byte
    #: tag control information and then the real EtherType.
    VLAN_8021Q = 0x8100

    #: ARP (provided for completeness of the host stack).
    ARP = 0x0806

    #: IEEE 802.1D spanning-tree BPDUs.  Real 802.1D uses 802.2 LLC with
    #: DSAP/SSAP 0x42; we demultiplex on a dedicated type value instead,
    #: which preserves the property the paper relies on (the control
    #: switchlet can tell the two protocols apart by how the frame is
    #: addressed and typed).
    STP_8021D = 0x8181

    #: DEC spanning-tree ("old protocol") frames, sent to the DEC management
    #: multicast address.  DEC's real protocol used EtherType 0x8038.
    STP_DEC = 0x8038

    #: Frames carrying a serialized switchlet capsule directly (in-band
    #: programming, Section 3 of the paper).
    SWITCHLET_CAPSULE = 0x88B5

    #: Raw measurement payloads used by ttcp-style bulk transfers.
    MEASUREMENT = 0x88B6

    @classmethod
    def describe(cls, value: int) -> str:
        """Human-readable name for a type value (unknown values hex-formatted)."""
        try:
            return cls(value).name
        except ValueError:
            return f"0x{value:04x}"
