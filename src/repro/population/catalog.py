"""Population scenarios: factory-stamped fleets as ordinary catalog entries.

Both entries ride the existing ``ScenarioSpec`` / registry / matrix
machinery unchanged: topology knobs (floors, racks, seats, seed) and
every traffic axis in :data:`~repro.population.traffic.TRAFFIC_DEFAULTS`
are declared as scenario axes, so ``expand_matrix`` sweeps fleet sizes
and offered loads exactly like bandwidths.  The traffic parameters are
recorded into ``spec.params`` where
:func:`~repro.population.traffic.install_traffic` picks them up.

``static_arp=False`` is deliberate: the compiler's all-pairs ARP
pre-population is O(n²) and a 50k-station fleet would spend minutes
building fifty-thousand-squared entries nobody uses.  The traffic
installer instead installs pair-scoped static ARP for exactly the
client/server pairs the matrix exercises.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.lan.segment import DEFAULT_BANDWIDTH_BPS
from repro.population.factory import HostFactory, PopulationPlan
from repro.population.traffic import TRAFFIC_DEFAULTS
from repro.scenario.registry import register_scenario
from repro.scenario.spec import BASIC_WARMUP, ScenarioSpec

#: The traffic axes every population entry exposes, in declaration order.
_TRAFFIC_AXES: Tuple[str, ...] = tuple(sorted(TRAFFIC_DEFAULTS))


def _traffic_params(traffic: Dict[str, object]) -> Dict[str, object]:
    for key in traffic:
        if key not in TRAFFIC_DEFAULTS:
            raise ValueError(f"unknown traffic axis {key!r}")
    merged = dict(TRAFFIC_DEFAULTS)
    merged.update(traffic)
    return merged


def _population_spec(
    name: str,
    description: str,
    plan: PopulationPlan,
    pop_seed: int,
    traffic: Dict[str, object],
    shape: Dict[str, object],
) -> ScenarioSpec:
    params = _traffic_params(traffic)
    params["pop_seed"] = pop_seed
    params.update(shape)
    return ScenarioSpec(
        name=name,
        label=plan.label,
        description=description,
        segments=plan.segments,
        hosts=plan.hosts,
        devices=plan.devices,
        # All-pairs ARP is O(n²); the traffic installer adds pair-scoped
        # entries for exactly the flows the matrix exercises.
        static_arp=False,
        ready_time=BASIC_WARMUP,
        params=params,
    )


@register_scenario(
    "population/office",
    description="office fleet: floor LANs behind learning bridges on one backbone",
    axes=("floors", "hosts_per_floor", "pop_seed", "bandwidth_bps") + _TRAFFIC_AXES,
)
def office_population(
    floors: int = 4,
    hosts_per_floor: int = 24,
    pop_seed: int = 0,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    **traffic: object,
) -> ScenarioSpec:
    plan = HostFactory(pop_seed).office(
        floors=floors,
        hosts_per_floor=hosts_per_floor,
        bandwidth_bps=bandwidth_bps,
    )
    return _population_spec(
        "population/office",
        "typed office fleet with synthetic request/response and burst traffic",
        plan,
        pop_seed,
        dict(traffic),
        {"floors": floors, "hosts_per_floor": hosts_per_floor},
    )


@register_scenario(
    "population/datacenter",
    description="datacenter row: server-heavy racks behind bridges on a spine",
    axes=("racks", "hosts_per_rack", "pop_seed", "bandwidth_bps") + _TRAFFIC_AXES,
)
def datacenter_population(
    racks: int = 4,
    hosts_per_rack: int = 24,
    pop_seed: int = 0,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    **traffic: object,
) -> ScenarioSpec:
    plan = HostFactory(pop_seed).datacenter(
        racks=racks,
        hosts_per_rack=hosts_per_rack,
        bandwidth_bps=bandwidth_bps,
    )
    return _population_spec(
        "population/datacenter",
        "typed datacenter row with rack-local databases and query fan-in",
        plan,
        pop_seed,
        dict(traffic),
        {"racks": racks, "hosts_per_rack": hosts_per_rack},
    )
