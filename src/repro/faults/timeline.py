"""The fault timeline: scheduled, seedable network-dynamics events.

A :class:`FaultTimeline` collects :class:`~repro.faults.spec.FaultSpec`
events (declaratively via the scenario layer, or imperatively through the
builder helpers below), resolves their target names against a live
:class:`~repro.lan.topology.Network`, and schedules every event through the
simulator's **control path**:

* on the single :class:`~repro.sim.engine.Simulator`, the plain event queue;
* on the strict sharded fabric, shard 0's ring (the facade's scheduling
  home) — fault events participate in the exact global ``(time, seq)``
  order, and because the timeline is installed before traffic starts they
  carry lower sequence numbers than any same-instant traffic event, so a
  fault always precedes same-time traffic;
* under relaxed sync, the fabric's control ring — fault events run at window
  barriers with every shard clock synchronized, *before* any shard event at
  the same or a later nanosecond, mirroring the strict tie-break exactly.

That shared control-path discipline is what makes one timeline bit-identical
(canonical-merge equivalent in relaxed mode) across every engine
configuration; the test suite proves it over the ``ring/failover`` and
``pair/lossy`` scenarios.

Install the timeline **before starting the traffic it is meant to disturb**
(the scenario compiler installs at compile time, before any event is
dispatched); installing mid-run next to already-scheduled same-nanosecond
traffic would make the strict tie-break depend on scheduling order.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.faults.models import FrameLossModel, derive_seed
from repro.faults.spec import (
    FAULT_KINDS,
    FaultError,
    FaultSpec,
    NODE_KINDS,
    PORT_KINDS,
    SEGMENT_KINDS,
)


def _station_or_host(network, name: str):
    """Resolve a station (device) or host by name, or raise FaultError."""
    station = network.stations.get(name)
    if station is not None:
        return station
    host = network.hosts.get(name)
    if host is not None:
        return host
    raise FaultError(
        f"fault target {name!r} is neither a device nor a host; "
        f"devices: {sorted(network.stations)}, hosts: {sorted(network.hosts)}"
    )


def _interfaces_of(station) -> list:
    """Every NIC of a station or host, in stable (port-name / single) order."""
    interfaces = getattr(station, "interfaces", None)
    if interfaces is not None:
        return [interfaces[name] for name in sorted(interfaces)]
    nic = getattr(station, "nic", None)
    if nic is not None:
        return [nic]
    raise FaultError(f"fault target {station!r} exposes no interfaces")


class FaultTimeline:
    """An ordered, seedable schedule of fault events for one experiment.

    Args:
        seed: base seed mixed into every loss model's private random stream
            (per segment, via :func:`~repro.faults.models.derive_seed`).

    Build the schedule with the fluent helpers (each returns ``self``)::

        timeline = (
            FaultTimeline(seed=7)
            .link_down(40.0, "seg1")
            .link_up(70.0, "seg1")
            .frame_loss(5.0, "lan1", rate=0.2)
        )
        timeline.install(network)

    or collect explicit :class:`FaultSpec` entries with :meth:`add`.  The
    scenario compiler drives exactly this installation for the
    ``faults=`` axis of :class:`~repro.scenario.spec.ScenarioSpec`.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._events: List[FaultSpec] = []
        self._installed = False
        #: ``(at, description)`` log of events applied so far, in fire order.
        self.applied: List[Tuple[float, str]] = []

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    @property
    def events(self) -> Tuple[FaultSpec, ...]:
        """The scheduled events, in ``(at, insertion order)``."""
        order = {id(event): index for index, event in enumerate(self._events)}
        return tuple(
            sorted(self._events, key=lambda event: (event.at, order[id(event)]))
        )

    def add(self, event: FaultSpec) -> "FaultTimeline":
        """Append one explicit fault event."""
        if not isinstance(event, FaultSpec):
            raise FaultError(f"expected a FaultSpec, got {event!r}")
        if self._installed:
            raise FaultError("cannot add events to an installed timeline")
        self._events.append(event)
        return self

    def extend(self, events) -> "FaultTimeline":
        """Append several fault events."""
        for event in events:
            self.add(event)
        return self

    def link_down(self, at: float, segment: str) -> "FaultTimeline":
        """Fail a whole segment at ``at`` (cable cut: every frame is lost)."""
        return self.add(FaultSpec("link-down", at, segment))

    def link_up(self, at: float, segment: str) -> "FaultTimeline":
        """Restore a failed segment at ``at``."""
        return self.add(FaultSpec("link-up", at, segment))

    def port_down(self, at: float, device: str, port: Optional[str] = None) -> "FaultTimeline":
        """Administratively fail one NIC (``port`` optional for hosts)."""
        return self.add(FaultSpec("port-down", at, device, port=port))

    def port_up(self, at: float, device: str, port: Optional[str] = None) -> "FaultTimeline":
        """Restore a failed NIC."""
        return self.add(FaultSpec("port-up", at, device, port=port))

    def frame_loss(
        self, at: float, segment: str, rate: float, corrupt_rate: float = 0.0,
        seed: int = 0,
    ) -> "FaultTimeline":
        """Attach a seeded loss/corruption model to a segment at ``at``."""
        return self.add(
            FaultSpec("frame-loss", at, segment, rate=rate,
                      corrupt_rate=corrupt_rate, seed=seed)
        )

    def frame_corrupt(
        self, at: float, segment: str, rate: float, seed: int = 0
    ) -> "FaultTimeline":
        """Attach a corruption-only model (bad-FCS frames, dropped by NICs)."""
        return self.add(
            FaultSpec("frame-corrupt", at, segment, corrupt_rate=rate, seed=seed)
        )

    def clear_loss(self, at: float, segment: str) -> "FaultTimeline":
        """Detach any loss/corruption model from a segment at ``at``."""
        return self.add(FaultSpec("frame-loss", at, segment, rate=0.0))

    def degrade(
        self, at: float, segment: str, bandwidth_scale: float = 1.0,
        extra_delay: float = 0.0,
    ) -> "FaultTimeline":
        """Degrade a segment's bandwidth/latency at ``at`` (neutral = restore)."""
        return self.add(
            FaultSpec("degrade", at, segment, bandwidth_scale=bandwidth_scale,
                      extra_delay=extra_delay)
        )

    def restore(self, at: float, segment: str) -> "FaultTimeline":
        """Restore a degraded segment to its nominal wire characteristics."""
        return self.add(FaultSpec("degrade", at, segment))

    def node_crash(self, at: float, node: str) -> "FaultTimeline":
        """Fail-silent crash: every interface of the station goes down."""
        return self.add(FaultSpec("node-crash", at, node))

    def node_restart(self, at: float, node: str) -> "FaultTimeline":
        """Bring a crashed station's interfaces back up."""
        return self.add(FaultSpec("node-restart", at, node))

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------

    def install(self, network, sim=None) -> "FaultTimeline":
        """Resolve every target and schedule the events on the control path.

        Args:
            network: the live :class:`~repro.lan.topology.Network` (or any
                object exposing ``segment()``, ``segments``, ``hosts``,
                ``stations`` and ``sim``).
            sim: scheduling facade override (defaults to ``network.sim`` —
                the fabric facade for sharded runs, which is what routes the
                events through shard 0 / the control ring).

        A timeline installs at most once; events are scheduled in
        ``(at, insertion order)`` so same-instant faults fire in declaration
        order under every engine mode.
        """
        if self._installed:
            raise FaultError("fault timeline is already installed")
        engine = sim if sim is not None else network.sim
        for event in self.events:
            apply_event = self._resolve(network, event)
            engine.schedule_at(event.at, apply_event, label=f"fault.{event.kind}")
        self._installed = True
        return self

    @property
    def installed(self) -> bool:
        """Whether :meth:`install` has run."""
        return self._installed

    def _note(self, event: FaultSpec) -> None:
        self.applied.append((event.at, event.describe()))

    def _resolve(self, network, event: FaultSpec) -> Callable[[], None]:
        """Bind one event to its live target and return its apply callback."""
        kind = event.kind
        if kind in SEGMENT_KINDS:
            if event.target not in network.segments:
                raise FaultError(
                    f"fault {event.describe()!r} targets unknown segment "
                    f"{event.target!r}; segments: {sorted(network.segments)}"
                )
            segment = network.segment(event.target)
            if kind == "link-down":
                def apply_event() -> None:
                    segment.set_link(False)
                    self._note(event)
            elif kind == "link-up":
                def apply_event() -> None:
                    segment.set_link(True)
                    self._note(event)
            elif kind == "degrade":
                def apply_event() -> None:
                    segment.set_degrade(
                        bandwidth_scale=event.bandwidth_scale,
                        extra_delay=event.extra_delay,
                    )
                    self._note(event)
            else:  # frame-loss / frame-corrupt
                def apply_event() -> None:
                    if event.rate or event.corrupt_rate:
                        model = FrameLossModel(
                            loss_rate=event.rate,
                            corrupt_rate=event.corrupt_rate,
                            seed=derive_seed(self.seed, segment.name, event.seed),
                        )
                    else:
                        model = None
                    segment.set_fault_model(model)
                    self._note(event)
            return apply_event
        if kind in PORT_KINDS:
            station = _station_or_host(network, event.target)
            interfaces = getattr(station, "interfaces", None)
            if interfaces is not None:
                if event.port is None:
                    raise FaultError(
                        f"fault {event.describe()!r} needs a port name; "
                        f"{event.target!r} has {sorted(interfaces)}"
                    )
                try:
                    nic = interfaces[event.port]
                except KeyError as exc:
                    raise FaultError(
                        f"fault {event.describe()!r} targets unknown port "
                        f"{event.port!r}; {event.target!r} has {sorted(interfaces)}"
                    ) from exc
            else:
                nic = station.nic
                # A host's single NIC is implied; a port name, if given at
                # all, must actually be that NIC (typos must not silently
                # "work" the way they would refuse to on a device).
                short = nic.name.split(".", 1)[-1]
                if event.port is not None and event.port not in (nic.name, short):
                    raise FaultError(
                        f"fault {event.describe()!r} targets port "
                        f"{event.port!r}, but host {event.target!r} has only "
                        f"{nic.name!r}"
                    )
            up = kind == "port-up"

            def apply_event() -> None:
                nic.set_up(up)
                self._note(event)

            return apply_event
        if kind in NODE_KINDS:
            station = _station_or_host(network, event.target)
            nics = _interfaces_of(station)
            up = kind == "node-restart"

            def apply_event() -> None:
                for nic in nics:
                    nic.set_up(up)
                self._note(event)

            return apply_event
        raise FaultError(f"unhandled fault kind {kind!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Scheduled/applied counts (diagnostics, examples, benchmarks)."""
        return {
            "scheduled": len(self._events),
            "applied": len(self.applied),
            "installed": self._installed,
        }

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultTimeline(seed={self.seed}, events={len(self._events)}, "
            f"applied={len(self.applied)})"
        )


__all__ = ["FaultTimeline", "FaultSpec", "FaultError", "FAULT_KINDS"]
