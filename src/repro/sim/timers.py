"""Timer helpers built on top of the simulator.

The 802.1D and DEC spanning-tree switchlets are timer-driven (hello timer,
message-age timer, forward-delay timer, topology-change timer), and the
protocol-transition control switchlet uses 30- and 60-second timers for its
suppression and validation windows (Table 1 of the paper).  These helpers
provide restartable one-shot timers and periodic timers with the exact
semantics those protocols need.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.events import Event


class Timer:
    """A restartable one-shot timer.

    The callback fires once, ``duration`` seconds after the most recent
    :meth:`start` (earlier starts are cancelled).  The timer can be stopped
    and restarted any number of times.
    """

    __slots__ = ("_sim", "duration", "_callback", "label", "_event", "_expiry_count")

    def __init__(
        self,
        sim: Simulator,
        duration: float,
        callback: Callable[[], None],
        label: str = "timer",
    ) -> None:
        self._sim = sim
        self.duration = duration
        self._callback = callback
        self.label = label
        self._event: Optional[Event] = None
        self._expiry_count = 0

    @property
    def running(self) -> bool:
        """Whether the timer is currently armed."""
        return self._event is not None and not self._event.cancelled

    @property
    def expiry_count(self) -> int:
        """How many times the timer has expired since construction."""
        return self._expiry_count

    def start(self, duration: Optional[float] = None) -> None:
        """(Re)arm the timer; an optional ``duration`` overrides the default."""
        self.stop()
        effective = self.duration if duration is None else duration
        self._event = self._sim.schedule(effective, self._fire, label=self.label)

    def stop(self) -> None:
        """Disarm the timer if it is running."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._expiry_count += 1
        self._callback()


class PeriodicTimer:
    """A timer that fires every ``interval`` seconds until stopped.

    Used for the spanning-tree hello timer and for measurement tools that
    sample at a fixed rate (e.g. the agility probe sends a ping every
    second, exactly as the paper's test program does).
    """

    __slots__ = ("_sim", "interval", "_callback", "label", "_event", "_running", "_fire_count")

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], None],
        label: str = "periodic-timer",
    ) -> None:
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self.label = label
        self._event: Optional[Event] = None
        self._running = False
        self._fire_count = 0

    @property
    def running(self) -> bool:
        """Whether the periodic timer is active."""
        return self._running

    @property
    def fire_count(self) -> int:
        """Number of times the callback has fired."""
        return self._fire_count

    def start(self, fire_immediately: bool = False) -> None:
        """Start the periodic schedule.

        Args:
            fire_immediately: if true, the first firing happens "now" (at the
                current simulated time) rather than one interval from now.
                The 802.1D hello timer fires immediately when a bridge
                believes it is the root.
        """
        self.stop()
        self._running = True
        if fire_immediately:
            self._event = self._sim.call_soon(self._fire, label=self.label)
        else:
            self._event = self._sim.schedule(self.interval, self._fire, label=self.label)

    def stop(self) -> None:
        """Stop the periodic schedule."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        if not self._running:
            return
        self._fire_count += 1
        self._callback()
        if self._running:
            self._event = self._sim.schedule(self.interval, self._fire, label=self.label)
