"""The active node (Figures 5 and 6 of the paper).

An :class:`ActiveNode` is the machine that runs the switchlet loader: a set
of Ethernet interfaces, a single CPU on which all user-space frame handling
is serialized, the eight-module thinned environment, and the loader itself.

The per-frame path mirrors the seven steps of Figure 5, collapsed into their
cost-bearing components:

1. the frame arrives on a NIC (simulated by the LAN substrate),
2. it crosses into user space (``kernel_crossing_cost``),
3. the interpreted switchlet code runs over it (``switchlet_frame_cost``),
4. any frames the switchlet emits cross back into the kernel
   (``kernel_crossing_cost`` each) and are transmitted by the NIC.

All three software costs are charged on the node's single
:class:`~repro.costs.cpu.CpuQueue`, which is what produces the ~1800
frames/second forwarding ceiling the paper measures.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.costs.cpu import CpuQueue
from repro.costs.model import CostModel
from repro.core.environment import NodeEnvironment, build_environment
from repro.core.loader import LoadedSwitchlet, SwitchletLoader
from repro.core.switchlet import SwitchletPackage
from repro.core.unixnet import Unixnet
from repro.ethernet.frame import EthernetFrame
from repro.ethernet.mac import MacAddress
from repro.exceptions import TopologyError
from repro.lan.nic import NetworkInterface
from repro.lan.segment import Segment
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer

#: Namespace base for automatically assigned node interface MAC addresses.
#: Node interfaces start at 0xB00000 so they never collide with the host
#: addresses handed out by :class:`repro.lan.topology.NetworkBuilder` (which
#: start at 1).  Allocation is per engine (:meth:`Simulator.auto_station_id`)
#: so back-to-back runs in one process stay bit-identical.
_AUTO_MAC_BASE = 0xB0_0000


class ActiveNode:
    """A programmable network element.

    Args:
        sim: owning simulator.
        name: node name used in traces (e.g. ``"bridge1"``).
        cost_model: software cost constants; ``None`` selects the calibrated
            defaults.
    """

    # Population fleets bridge hundreds of segments; slots keep the node
    # (and with it the whole station object chain) __dict__-free.
    __slots__ = (
        "sim",
        "name",
        "costs",
        "cpu",
        "interfaces",
        "unixnet",
        "environment",
        "loader",
        "_gc_timer",
        "frames_received",
        "frames_claimed",
        "frames_unclaimed",
        "frames_transmitted",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.costs = cost_model if cost_model is not None else CostModel()
        self.cpu = CpuQueue(sim, f"{name}.cpu")
        self.interfaces: Dict[str, NetworkInterface] = {}
        self.unixnet = Unixnet(name, self._transmit, trace=sim.trace)
        self.environment: NodeEnvironment = build_environment(sim, name, self.unixnet)
        self.loader = SwitchletLoader(trace=sim.trace, source_name=name)
        self.loader.add_available_units(self.environment.modules)
        self._gc_timer: Optional[PeriodicTimer] = None
        if self.costs.gc_pause_duration > 0:
            self._gc_timer = PeriodicTimer(
                sim,
                self.costs.gc_pause_interval,
                self._gc_pause,
                label=f"{name}.gc",
            )
            self._gc_timer.start()
        # Statistics
        self.frames_received = 0
        self.frames_claimed = 0
        self.frames_unclaimed = 0
        self.frames_transmitted = 0

    # ------------------------------------------------------------------
    # Interfaces
    # ------------------------------------------------------------------

    def add_interface(
        self,
        name: str,
        segment: Segment,
        mac: Optional[MacAddress] = None,
    ) -> NetworkInterface:
        """Create an Ethernet interface, attach it to ``segment`` and register it.

        Interface names follow the paper's convention (``eth0``, ``eth1``...).
        """
        if name in self.interfaces:
            raise TopologyError(f"node {self.name!r} already has an interface {name!r}")
        if mac is None:
            mac = MacAddress.locally_administered(self.sim.auto_station_id(_AUTO_MAC_BASE))
        nic = NetworkInterface(self.sim, f"{self.name}.{name}", mac)
        nic.attach(segment)
        # segment_local: every reaction of the node — switchlet dispatch and
        # any frame a switchlet sends — rides the CPU queue (see _receive /
        # _transmit), never the wire synchronously.  That holds for any
        # loaded switchlet by construction (switchlets reach the wire only
        # through unixnet writes, which charge the CPU queue); a switchlet
        # declaring SEGMENT_LOCAL_SAFE = False revokes it (see
        # scenario.compile._instantiate_device).
        nic.set_handler(
            lambda _nic, frame, port=name: self._receive(port, frame),
            segment_local=True,
        )
        self.interfaces[name] = nic
        self.unixnet.add_interface(name, mac, nic.set_promiscuous)
        return nic

    def interface(self, name: str) -> NetworkInterface:
        """Look up an interface by its short name (``eth0``)."""
        try:
            return self.interfaces[name]
        except KeyError as exc:
            raise TopologyError(f"node {self.name!r} has no interface {name!r}") from exc

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def _receive(self, interface: str, frame: EthernetFrame) -> None:
        """A NIC accepted a frame: charge the user-space path and dispatch it."""
        self.frames_received += 1
        cost = self.costs.kernel_crossing_cost + self.costs.switchlet_frame_cost(
            frame.frame_length
        )

        def dispatch() -> None:
            claimed = self.unixnet.deliver_frame(interface, frame)
            if claimed is None:
                self.frames_unclaimed += 1
            else:
                self.frames_claimed += 1

        self.cpu.submit(cost, dispatch)

    def _transmit(self, interface: str, frame: EthernetFrame) -> None:
        """A switchlet emitted a frame: charge the transmit crossing and send it."""
        nic = self.interface(interface)

        def send() -> None:
            self.frames_transmitted += 1
            trace = self.sim.trace
            if trace.wants("node.forward"):
                trace.emit(
                    self.name,
                    "node.forward",
                    lambda: {"interface": interface, "bytes": frame.frame_length},
                )
            nic.send(frame)

        self.cpu.submit(self.costs.kernel_crossing_cost, send)

    def _gc_pause(self) -> None:
        self.cpu.stall(self.costs.gc_pause_duration)
        self.sim.trace.emit(
            self.name, "node.gc_pause", {"duration": self.costs.gc_pause_duration}
        )

    # ------------------------------------------------------------------
    # Programming the node
    # ------------------------------------------------------------------

    def load_switchlet(self, package: SwitchletPackage, charge_cost: bool = True) -> LoadedSwitchlet:
        """Load a switchlet package into this node immediately.

        This is the "load from disk" path available to the initial loader;
        network loading goes through :class:`~repro.core.netloader.NetworkLoader`
        which ends up calling :meth:`load_switchlet_bytes`.

        Args:
            package: the switchlet to load.
            charge_cost: also charge the dynamic-link cost on the node CPU
                (defaults to true; tests that only care about semantics can
                disable it).
        """
        record = self.loader.load(package)
        if charge_cost:
            self.cpu.submit(self.costs.load_cost(), lambda: None)
        return record

    def load_switchlet_bytes(self, data: bytes) -> LoadedSwitchlet:
        """Load a switchlet from its transported byte form (TFTP / capsule path)."""
        record = self.loader.load_bytes(data)
        self.cpu.submit(self.costs.load_cost(), lambda: None)
        return record

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def statistics(self) -> dict:
        """Counters for the node and its interfaces."""
        return {
            "frames_received": self.frames_received,
            "frames_claimed": self.frames_claimed,
            "frames_unclaimed": self.frames_unclaimed,
            "frames_transmitted": self.frames_transmitted,
            "switchlets_loaded": len(self.loader.loaded),
            "cpu_utilization": self.cpu.utilization(),
            "interfaces": {
                name: nic.statistics() for name, nic in self.interfaces.items()
            },
        }

    @property
    def func(self):
        """The node's function registry (node-side introspection, not thinned)."""
        return self.environment.func

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ActiveNode({self.name!r}, interfaces={list(self.interfaces)}, "
            f"loaded={self.loader.loaded_names()})"
        )
