"""Lossless frame serialization: wire ``pkt`` bytes and the fabric envelope.

Two encodings, two contracts:

* :func:`frame_to_packet_bytes` / :func:`packet_bytes_to_frame` is the wire
  format switchlets see — 802.1Q tags ride in-line via the TPID, so it is
  deliberately ambiguous for the one corner of an *untagged* frame whose
  EtherType is 0x8100 (it re-parses as tagged, as on real hardware).
* :func:`frame_to_envelope_bytes` / :func:`envelope_bytes_to_frame` is the
  process backend's mailbox transport and must round-trip **every** frame
  field exactly — VLAN tag presence included — plus the mailbox metadata
  (emission time, fault-model verdict, emission seq).

Both are property-tested over randomized frames when Hypothesis is
available; hand-picked corner frames keep the file meaningful without it.
"""

from __future__ import annotations

import pytest

from repro.core.unixnet import (
    ENVELOPE_VERDICTS,
    envelope_bytes_to_frame,
    frame_to_envelope_bytes,
    frame_to_packet_bytes,
    packet_bytes_to_frame,
)
from repro.ethernet.frame import MAX_PAYLOAD, EthernetFrame, VlanTag
from repro.ethernet.mac import MacAddress
from repro.exceptions import FrameError

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - property tests become no-ops
    HAVE_HYPOTHESIS = False

needs_hypothesis = pytest.mark.skipif(
    not HAVE_HYPOTHESIS, reason="hypothesis not installed"
)


def _mac(octets: bytes) -> MacAddress:
    return MacAddress(octets)


if HAVE_HYPOTHESIS:
    macs = st.binary(min_size=6, max_size=6).map(_mac)
    vlans = st.builds(
        VlanTag,
        vid=st.integers(min_value=1, max_value=0xFFE),
        priority=st.integers(min_value=0, max_value=7),
    )
    frames = st.builds(
        EthernetFrame,
        destination=macs,
        source=macs,
        ethertype=st.integers(min_value=0, max_value=0xFFFF),
        payload=st.binary(min_size=0, max_size=MAX_PAYLOAD),
        vlan=st.one_of(st.none(), vlans),
    )
    # The wire format cannot represent an untagged frame whose EtherType is
    # the 802.1Q TPID (see module docstring); the envelope can.
    wire_safe_frames = frames.filter(
        lambda frame: frame.vlan is not None or int(frame.ethertype) != 0x8100
    )


def _assert_frames_equal(rebuilt: EthernetFrame, original: EthernetFrame) -> None:
    assert rebuilt == original
    assert rebuilt.vlan == original.vlan
    assert rebuilt.payload == original.payload
    assert rebuilt.frame_length == original.frame_length
    assert rebuilt.wire_length == original.wire_length


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------


@needs_hypothesis
class TestRandomizedRoundTrips:
    @settings(max_examples=200, deadline=None)
    @given(frame=frames)
    def test_envelope_round_trips_every_frame(self, frame):
        rebuilt, meta = envelope_bytes_to_frame(frame_to_envelope_bytes(frame))
        _assert_frames_equal(rebuilt, frame)
        assert meta == {"when_ns": 0, "verdict": None, "seq": None}

    @settings(max_examples=200, deadline=None)
    @given(
        frame=frames,
        when_ns=st.integers(min_value=0, max_value=2**63 - 1),
        verdict=st.sampled_from(ENVELOPE_VERDICTS),
        seq=st.one_of(st.none(), st.integers(min_value=0, max_value=2**63 - 1)),
    )
    def test_envelope_round_trips_metadata(self, frame, when_ns, verdict, seq):
        data = frame_to_envelope_bytes(frame, when_ns=when_ns, verdict=verdict, seq=seq)
        rebuilt, meta = envelope_bytes_to_frame(data)
        _assert_frames_equal(rebuilt, frame)
        assert meta["when_ns"] == when_ns
        assert meta["verdict"] == verdict
        assert meta["seq"] == seq

    @settings(max_examples=200, deadline=None)
    @given(frame=wire_safe_frames)
    def test_packet_bytes_round_trip(self, frame):
        rebuilt = packet_bytes_to_frame(frame_to_packet_bytes(frame))
        _assert_frames_equal(rebuilt, frame)

    @settings(max_examples=100, deadline=None)
    @given(frame=frames)
    def test_envelope_is_deterministic(self, frame):
        assert frame_to_envelope_bytes(frame) == frame_to_envelope_bytes(frame)


# ---------------------------------------------------------------------------
# Corner frames (runnable without hypothesis)
# ---------------------------------------------------------------------------


SRC = MacAddress.from_string("02:00:00:00:00:01")
DST = MacAddress.from_string("02:00:00:00:00:02")


def _corner_frames():
    return [
        EthernetFrame(destination=DST, source=SRC, ethertype=0x0800, payload=b""),
        EthernetFrame(destination=DST, source=SRC, ethertype=0x88B5, payload=b"x"),
        EthernetFrame(
            destination=DST, source=SRC, ethertype=0x0800,
            payload=b"\x00" * MAX_PAYLOAD,
        ),
        EthernetFrame(
            destination=DST, source=SRC, ethertype=0x0800, payload=b"tagged",
            vlan=VlanTag(vid=0xFFE, priority=7),
        ),
        EthernetFrame(
            destination=DST, source=SRC, ethertype=0x0800, payload=b"v1",
            vlan=VlanTag(vid=1, priority=0),
        ),
        # The wire-ambiguous corner: a *tagged* frame whose inner EtherType
        # is itself 0x8100 still round-trips through both encodings.
        EthernetFrame(
            destination=DST, source=SRC, ethertype=0x8100, payload=b"!",
            vlan=VlanTag(vid=5),
        ),
    ]


class TestCornerFrames:
    @pytest.mark.parametrize("frame", _corner_frames())
    def test_envelope_round_trip(self, frame):
        rebuilt, _meta = envelope_bytes_to_frame(frame_to_envelope_bytes(frame))
        _assert_frames_equal(rebuilt, frame)

    @pytest.mark.parametrize("frame", _corner_frames())
    def test_packet_bytes_round_trip(self, frame):
        rebuilt = packet_bytes_to_frame(frame_to_packet_bytes(frame))
        _assert_frames_equal(rebuilt, frame)

    def test_untagged_tpid_ethertype_is_the_documented_wire_ambiguity(self):
        """The envelope resolves the corner the wire format cannot."""
        frame = EthernetFrame(
            destination=DST, source=SRC, ethertype=0x8100, payload=b"\x00\x05ok"
        )
        # Wire bytes re-parse as tagged: vid comes from the payload head.
        wire_rebuilt = packet_bytes_to_frame(frame_to_packet_bytes(frame))
        assert wire_rebuilt.vlan is not None
        assert wire_rebuilt != frame
        # The envelope's explicit presence flag keeps the frame intact.
        env_rebuilt, _ = envelope_bytes_to_frame(frame_to_envelope_bytes(frame))
        _assert_frames_equal(env_rebuilt, frame)


# ---------------------------------------------------------------------------
# Malformed envelopes
# ---------------------------------------------------------------------------


class TestEnvelopeValidation:
    def test_rejects_short_buffer(self):
        with pytest.raises(FrameError):
            envelope_bytes_to_frame(b"\x01\x00" + b"\x00" * 10)

    def test_rejects_unknown_version(self):
        frame = _corner_frames()[0]
        data = frame_to_envelope_bytes(frame)
        with pytest.raises(FrameError):
            envelope_bytes_to_frame(b"\x7f" + data[1:])

    def test_rejects_truncated_payload(self):
        frame = EthernetFrame(
            destination=DST, source=SRC, ethertype=0x0800, payload=b"truncate-me"
        )
        data = frame_to_envelope_bytes(frame)
        with pytest.raises(FrameError):
            envelope_bytes_to_frame(data[:-3])

    def test_rejects_unknown_verdict_on_encode(self):
        frame = _corner_frames()[0]
        with pytest.raises(FrameError):
            frame_to_envelope_bytes(frame, verdict="vaporized")

    def test_rejects_unknown_verdict_code_on_decode(self):
        frame = _corner_frames()[0]
        data = bytearray(frame_to_envelope_bytes(frame, verdict="loss"))
        data[24] = 0xEE  # the verdict byte (no vlan in this frame)
        with pytest.raises(FrameError):
            envelope_bytes_to_frame(bytes(data))
