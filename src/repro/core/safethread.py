"""``Safethread``, ``Condition`` and ``Mutex`` — the thread-related modules.

The paper provides "a set of thread related modules ... built on top of the
basic Caml threads package that works entirely in user mode" — i.e. purely
cooperative threads with no true parallelism (Section 7.4 notes that this is
why the multiprocessor buys nothing).

In an event-driven simulation, cooperative user-mode threads are naturally
expressed as scheduled callbacks, so the thinned ``Safethread`` exposes:

* ``create(fn)`` — run ``fn`` "in a new thread", i.e. as a separately
  scheduled callback at the current simulated time;
* ``delay(seconds, fn)`` — run ``fn`` after a delay (the building block the
  spanning-tree timers use);
* ``every(seconds, fn)`` — run ``fn`` periodically until the returned handle
  is cancelled (the hello timer);
* ``self_id()`` — an identifier for the currently running switchlet thread.

``Mutex`` and ``Condition`` keep their Caml shapes but are trivial under
cooperative scheduling (a lock can never be contended across a yield point we
do not have); they exist so switchlet code written against the paper's
interface runs unchanged, and they still detect programming errors such as
unlocking a mutex that is not held.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer, Timer


class ThreadHandle:
    """Handle returned by ``Safethread`` scheduling calls; supports ``cancel``."""

    def __init__(self, cancel: Callable[[], None], kind: str, thread_id: int) -> None:
        self._cancel = cancel
        self.kind = kind
        self.thread_id = thread_id
        self.cancelled = False

    def cancel(self) -> None:
        """Stop the scheduled or periodic callback."""
        if not self.cancelled:
            self.cancelled = True
            self._cancel()


class SafethreadImplementation:
    """Implementation object behind the thinned ``Safethread`` module."""

    def __init__(self, sim: Simulator, source: str) -> None:
        self._sim = sim
        self._source = source
        self._next_id = 1
        self._handles: List[ThreadHandle] = []

    def _allocate_id(self) -> int:
        thread_id = self._next_id
        self._next_id += 1
        return thread_id

    # ------------------------------------------------------------------
    # Exported to switchlets
    # ------------------------------------------------------------------

    def create(self, fn: Callable[[], None]) -> ThreadHandle:
        """Run ``fn`` as a new cooperative thread (scheduled immediately)."""
        thread_id = self._allocate_id()
        event = self._sim.call_soon(fn, label=f"{self._source}:thread{thread_id}")
        handle = ThreadHandle(event.cancel, "create", thread_id)
        self._handles.append(handle)
        return handle

    def delay(self, seconds: float, fn: Callable[[], None]) -> ThreadHandle:
        """Run ``fn`` once, ``seconds`` from now."""
        thread_id = self._allocate_id()
        timer = Timer(self._sim, float(seconds), fn, label=f"{self._source}:delay{thread_id}")
        timer.start()
        handle = ThreadHandle(timer.stop, "delay", thread_id)
        self._handles.append(handle)
        return handle

    def every(self, seconds: float, fn: Callable[[], None]) -> ThreadHandle:
        """Run ``fn`` every ``seconds`` until the handle is cancelled."""
        thread_id = self._allocate_id()
        timer = PeriodicTimer(
            self._sim, float(seconds), fn, label=f"{self._source}:every{thread_id}"
        )
        timer.start()
        handle = ThreadHandle(timer.stop, "every", thread_id)
        self._handles.append(handle)
        return handle

    def self_id(self) -> int:
        """Identifier of the calling thread (monotonic per node; cosmetic)."""
        return self._next_id

    # ------------------------------------------------------------------
    # Loader-side controls (not exported)
    # ------------------------------------------------------------------

    def cancel_all(self) -> None:
        """Cancel every outstanding handle (used when a node is reset)."""
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()

    #: Names exported when thinned into ``Safethread``.
    THINNED_EXPORTS = ("create", "delay", "every", "self_id")


class Mutex:
    """A cooperative mutex with Caml's ``Mutex`` interface.

    Under run-to-completion cooperative scheduling the lock can never be
    observed held by another thread at a yield point, so ``lock`` simply
    records ownership; ``unlock`` checks for the classic misuse of unlocking
    a mutex that is not locked.
    """

    def __init__(self) -> None:
        self._locked = False

    @classmethod
    def create(cls) -> "Mutex":
        """Create a new mutex (Caml's ``Mutex.create``)."""
        return cls()

    def lock(self) -> None:
        """Acquire the mutex."""
        self._locked = True

    def try_lock(self) -> bool:
        """Acquire the mutex if free; returns whether it was acquired."""
        if self._locked:
            return False
        self._locked = True
        return True

    def unlock(self) -> None:
        """Release the mutex.

        Raises:
            RuntimeError: if the mutex is not currently locked.
        """
        if not self._locked:
            raise RuntimeError("Mutex.unlock called on an unlocked mutex")
        self._locked = False

    @property
    def locked(self) -> bool:
        """Whether the mutex is currently held."""
        return self._locked

    THINNED_EXPORTS = ("create",)


class Condition:
    """A condition variable with Caml's ``Condition`` interface.

    ``wait`` cannot block in a run-to-completion model; instead, callbacks
    registered with ``wait_callback`` are invoked by ``signal``/``broadcast``.
    The paper's bridge switchlets do not use conditions on their hot path, so
    this fidelity trade-off is documented rather than hidden.
    """

    def __init__(self) -> None:
        self._waiters: List[Callable[[], None]] = []

    @classmethod
    def create(cls) -> "Condition":
        """Create a new condition variable."""
        return cls()

    def wait_callback(self, fn: Callable[[], None]) -> None:
        """Register ``fn`` to be invoked on the next ``signal``/``broadcast``."""
        self._waiters.append(fn)

    def signal(self) -> None:
        """Wake one waiter (FIFO)."""
        if self._waiters:
            waiter = self._waiters.pop(0)
            waiter()

    def broadcast(self) -> None:
        """Wake every waiter."""
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter()

    @property
    def waiting(self) -> int:
        """Number of registered waiters."""
        return len(self._waiters)

    THINNED_EXPORTS = ("create",)
