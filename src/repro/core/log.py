"""``Log`` — the switchlet logging module.

The paper: "Since we provide no functions for generating output as part of
``Safeunix``, we provide a module called ``Log`` that allows logging messages
to be generated.  It also allows us to change the method of logging, to a
terminal, to disk, or not at all."

The reproduction's ``Log`` writes into the simulator trace (category
``"switchlet.log"``) and an in-memory ring so tests can assert on messages.
The *method* of logging is selectable exactly as in the paper: ``memory``
(default), ``stdout``, or ``off`` — but that selection is a loader-side
operation, not exported to switchlets.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.sim.engine import Simulator

#: Number of recent messages retained in memory.
DEFAULT_CAPACITY = 1024


class LogImplementation:
    """Implementation object behind the thinned ``Log`` module."""

    def __init__(self, sim: Simulator, source: str, capacity: int = DEFAULT_CAPACITY) -> None:
        self._sim = sim
        self._source = source
        self._messages: Deque[Tuple[float, str]] = deque(maxlen=capacity)
        self._method = "memory"

    # ------------------------------------------------------------------
    # Exported to switchlets
    # ------------------------------------------------------------------

    def log(self, message: str) -> None:
        """Record a log message (timestamped with simulated time)."""
        text = str(message)
        if self._method == "off":
            return
        self._messages.append((self._sim.now, text))
        self._sim.trace.emit(self._source, "switchlet.log", {"message": text})
        if self._method == "stdout":  # pragma: no cover - interactive aid
            print(f"[{self._sim.now:.6f}] {self._source}: {text}")

    # ------------------------------------------------------------------
    # Loader-side controls (not exported)
    # ------------------------------------------------------------------

    def set_method(self, method: str) -> None:
        """Select ``"memory"``, ``"stdout"`` or ``"off"``."""
        if method not in ("memory", "stdout", "off"):
            raise ValueError(f"unknown logging method: {method!r}")
        self._method = method

    def messages(self) -> list:
        """The retained ``(time, message)`` pairs (oldest first)."""
        return list(self._messages)

    def clear(self) -> None:
        """Drop retained messages."""
        self._messages.clear()

    #: Names exported when thinned into ``Log``.
    THINNED_EXPORTS = ("log",)
