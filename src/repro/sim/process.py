"""Cooperative processes on top of the event queue.

Some workloads are most naturally written as a sequential program that
alternates work and waiting — the paper's ``ttcp`` sender, for example, is a
loop of "write a buffer, wait for it to drain".  :class:`Process` lets such
code be written as a generator that ``yield``s the number of seconds to
sleep; the kernel resumes it after that delay.

This is intentionally minimal (no channels, no signals): anything more
complex in the reproduction is written in the event-callback style directly.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.sim.engine import Simulator

ProcessBody = Generator[float, None, None]


class Process:
    """A generator-based cooperative process.

    The body is a generator function; every value it yields is interpreted as
    a sleep duration in seconds.  When the generator returns (or raises
    ``StopIteration``), the process is finished and the optional
    ``on_complete`` callback runs.

    Example:
        >>> def body():
        ...     for _ in range(3):
        ...         yield 1.0   # sleep one simulated second
        >>> process = Process(sim, body())
        >>> process.start()
    """

    def __init__(
        self,
        sim: Simulator,
        body: ProcessBody,
        label: str = "process",
        on_complete: Optional[Callable[[], None]] = None,
    ) -> None:
        self._sim = sim
        self._body = body
        self.label = label
        self._on_complete = on_complete
        self._finished = False
        self._started = False

    @property
    def finished(self) -> bool:
        """Whether the process body has run to completion."""
        return self._finished

    @property
    def started(self) -> bool:
        """Whether :meth:`start` has been called."""
        return self._started

    def start(self, delay: float = 0.0) -> None:
        """Begin executing the process after ``delay`` seconds."""
        if self._started:
            return
        self._started = True
        self._sim.schedule(delay, self._resume, label=f"{self.label}:start")

    def _resume(self) -> None:
        if self._finished:
            return
        try:
            delay = next(self._body)
        except StopIteration:
            self._finished = True
            if self._on_complete is not None:
                self._on_complete()
            return
        if delay < 0:
            delay = 0.0
        self._sim.schedule(delay, self._resume, label=f"{self.label}:resume")
