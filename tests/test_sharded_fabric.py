"""The sharded event fabric: partitioning, conservative sync, determinism.

Four layers are covered:

* the **per-shard scheduling core** — the bucketed event ring's ordering,
  cancellation and fire-and-forget semantics;
* the **segment-graph partitioner** — balanced contiguous placement, cut
  segments, the positive-lookahead requirement, explicit overrides;
* the **coordinator facade** — Simulator API parity (run/run_until/step,
  validation errors, counters) and the merged trace plane;
* the headline guarantee: **every catalog scenario, run with shards=1,2,4,
  produces traces and counters bit-identical to the unsharded engine.**
"""

from __future__ import annotations

import pytest

from repro.exceptions import SchedulingError, SimulationError
from repro.measurement.ping import PingRunner
from repro.scenario import (
    PartitionSpec,
    ScenarioSpec,
    SegmentSpec,
    list_scenarios,
    get_scenario,
    plan_partition,
    run_scenario,
)
from repro.sim.engine import Simulator
from repro.sim.fabric import ShardedSimulator
from repro.sim.shard import ShardQueue
from repro.sim.trace import CounterWindow, RingBufferSink
import itertools


# ---------------------------------------------------------------------------
# The per-shard event ring
# ---------------------------------------------------------------------------


class TestShardQueue:
    def _queue(self):
        return ShardQueue(itertools.count())

    def test_pops_in_time_then_sequence_order(self):
        queue = self._queue()
        fired = []
        queue.push(20, lambda: fired.append("b"))
        queue.push(10, lambda: fired.append("a1"))
        queue.push(10, lambda: fired.append("a2"))
        while queue:
            queue.pop()[1]()
        assert fired == ["a1", "a2", "b"]

    def test_same_time_bucket_is_fifo(self):
        queue = self._queue()
        order = [queue.push(5, lambda: None).sequence for _ in range(10)]
        popped = [queue.pop()[0] for _ in range(10)]
        assert popped == order

    def test_cancelled_events_are_skipped_and_counted(self):
        queue = self._queue()
        keep = queue.push(5, lambda: None)
        drop = queue.push(5, lambda: None)
        drop.cancel()
        assert len(queue) == 1
        assert queue.top_key() == (5, keep.sequence)
        assert queue.pop()[2] is keep
        # The cancelled corpse now heads the bucket and is discarded lazily.
        assert queue.top_key() is None
        assert queue.cancelled_discarded == 1

    def test_cancelled_head_discarded_by_top_key(self):
        queue = self._queue()
        first = queue.push(1, lambda: None)
        second = queue.push(2, lambda: None)
        first.cancel()
        assert queue.top_key() == (2, second.sequence)
        assert queue.cancelled_discarded == 1

    def test_push_fire_keeps_order_without_handles(self):
        queue = self._queue()
        queue.push(7, lambda: None)
        sequence = queue.push_fire(7, lambda: None)
        entries = [queue.pop() for _ in range(2)]
        assert entries[1][0] == sequence
        assert entries[1][2] is None

    def test_reusing_a_drained_bucket_time(self):
        queue = self._queue()
        queue.push(3, lambda: None)
        queue.pop()
        queue.push(3, lambda: None)
        assert queue.peek_time_ns() == 3
        assert len(queue) == 1

    def test_clear_detaches_events(self):
        queue = self._queue()
        event = queue.push(3, lambda: None)
        queue.clear()
        assert not queue
        event.cancel()  # must not corrupt the emptied queue
        assert len(queue) == 0


# ---------------------------------------------------------------------------
# The partitioner
# ---------------------------------------------------------------------------


def _chain_spec(n_bridges=4):
    return get_scenario("chain", n_bridges=n_bridges)


class TestPartitionPlanner:
    def test_single_shard_plan_is_trivial(self):
        plan = plan_partition(_chain_spec(), 1)
        assert plan.n_shards == 1
        assert set(plan.assignments.values()) == {0}
        assert plan.cut_segments == ()

    def test_contiguous_balanced_chunks(self):
        plan = plan_partition(_chain_spec(4), 2)
        segments = [f"seg{i}" for i in range(5)]
        shards = [plan.assignments[name] for name in segments]
        assert shards == sorted(shards), "chunks must be contiguous"
        assert set(shards) == {0, 1}

    def test_hosts_follow_their_segment(self):
        plan = plan_partition(_chain_spec(4), 2)
        assert plan.assignments["left"] == plan.assignments["seg0"]
        assert plan.assignments["right"] == plan.assignments["seg4"]

    def test_devices_follow_first_port(self):
        plan = plan_partition(_chain_spec(4), 2)
        for index in range(1, 5):
            bridge = f"bridge{index}"
            assert plan.assignments[bridge] == plan.assignments[f"seg{index - 1}"]

    def test_cut_segments_and_lookahead(self):
        plan = plan_partition(_chain_spec(4), 2)
        assert plan.cut_segments, "a split chain must have at least one cut"
        # Minimum-frame wire time (84 bytes at 100 Mb/s = 6720 ns) plus the
        # default 2 us propagation delay, minus 1 ns of rounding headroom.
        assert plan.lookahead_ns == 8719

    def test_shards_clamped_to_segment_count(self):
        plan = plan_partition(_chain_spec(1), 16)
        assert plan.n_shards == 2  # two segments

    def test_zero_lookahead_cut_rejected(self):
        from dataclasses import replace

        spec = get_scenario("chain", n_bridges=1)
        zero = replace(
            spec,
            segments=tuple(
                replace(segment, propagation_delay=0.0) for segment in spec.segments
            ),
        )
        with pytest.raises(ValueError, match="zero"):
            plan_partition(zero, 2)

    def test_explicit_assignments_override(self):
        plan = plan_partition(
            _chain_spec(4), PartitionSpec(shards=2, assignments={"bridge2": 1})
        )
        assert plan.assignments["bridge2"] == 1

    def test_partition_spec_validation(self):
        with pytest.raises(ValueError, match="at least one shard"):
            PartitionSpec(shards=0)
        with pytest.raises(ValueError, match="outside"):
            PartitionSpec(shards=2, assignments={"x": 5})

    def test_explicit_assignment_beyond_clamped_shards_rejected(self):
        # Two segments clamp a 4-shard request to 2 shards; an explicit
        # placement on shard 3 must fail loudly, not IndexError at build.
        with pytest.raises(ValueError, match="only 2 shard"):
            plan_partition(
                _chain_spec(1), PartitionSpec(shards=4, assignments={"seg1": 3})
            )

    def test_explicit_assignment_of_unknown_component_rejected(self):
        with pytest.raises(ValueError, match="unknown component"):
            plan_partition(
                _chain_spec(4), PartitionSpec(shards=2, assignments={"bridg1": 1})
            )


# ---------------------------------------------------------------------------
# The coordinator facade
# ---------------------------------------------------------------------------


class TestShardedSimulatorFacade:
    def test_run_until_matches_single_engine(self):
        def drive(sim, engines):
            fired = []
            for tag, engine in engines:
                def cb(tag=tag, engine=engine):
                    fired.append((tag, sim.now_ns))
                    engine.schedule(1e-6, cb)
                engine.schedule(0.0, cb)
            sim.run_until(5e-6)
            return fired

        single = Simulator()
        fabric = ShardedSimulator(shards=2)
        expected = drive(single, [("a", single), ("b", single)])
        actual = drive(fabric, [("a", fabric.shards[0]), ("b", fabric.shards[1])])
        assert actual == expected
        assert fabric.now == single.now == 5e-6

    def test_step_and_run_and_reset(self):
        fabric = ShardedSimulator(shards=2)
        hits = []
        fabric.shards[1].schedule(2e-6, lambda: hits.append("late"))
        fabric.shards[0].schedule(1e-6, lambda: hits.append("early"))
        assert fabric.step() is True
        assert hits == ["early"]
        assert fabric.run() == 1
        assert hits == ["early", "late"]
        assert fabric.step() is False
        fabric.reset()
        assert fabric.now == 0.0
        assert fabric.pending_events == 0

    def test_max_events_budget(self):
        fabric = ShardedSimulator(shards=2)
        hits = []
        for i in range(6):
            fabric.shards[i % 2].schedule(i * 1e-6, lambda i=i: hits.append(i))
        assert fabric.run(max_events=4) == 4
        assert hits == [0, 1, 2, 3]
        assert fabric.run(max_events=0) == 0  # parity with Simulator
        assert hits == [0, 1, 2, 3]

    def test_past_scheduling_rejected_like_single_engine(self):
        single = Simulator()
        fabric = ShardedSimulator(shards=2)
        single.run_until(1.0)
        fabric.run_until(1.0)
        with pytest.raises(SchedulingError) as single_err:
            single.schedule_at(0.5, lambda: None)
        with pytest.raises(SchedulingError) as fabric_err:
            fabric.shards[1].schedule_at(0.5, lambda: None)
        assert str(single_err.value) == str(fabric_err.value)

    def test_run_until_backwards_rejected(self):
        fabric = ShardedSimulator(shards=2)
        fabric.run_until(1.0)
        with pytest.raises(SimulationError, match="earlier"):
            fabric.run_until(0.5)

    def test_auto_station_ids_are_fabric_wide(self):
        fabric = ShardedSimulator(shards=2)
        first = fabric.shards[0].auto_station_id(0xB0_0000)
        second = fabric.shards[1].auto_station_id(0xB0_0000)
        assert (first, second) == (0xB0_0000, 0xB0_0001)

    def test_reset_rewinds_station_ids(self):
        single = Simulator()
        single.auto_station_id(0xB0_0000)
        single.reset()
        assert single.auto_station_id(0xB0_0000) == 0xB0_0000
        fabric = ShardedSimulator(shards=2)
        fabric.shards[1].auto_station_id(0xB0_0000)
        fabric.reset()
        assert fabric.shards[0].auto_station_id(0xB0_0000) == 0xB0_0000

    def test_schedule_fire_orders_with_cancellable_events(self):
        fabric = ShardedSimulator(shards=1)
        shard = fabric.shards[0]
        fired = []
        shard.schedule_at(1e-6, lambda: fired.append("event"))
        shard.schedule_fire(1e-6, lambda: fired.append("fire"))
        fabric.run()
        assert fired == ["event", "fire"]


class TestFabricTrace:
    def _emitting_fabric(self):
        fabric = ShardedSimulator(shards=2)

        def make_tick(shard, index):
            def tick():
                shard.trace.emit(f"s{index}", "tick", {"shard": index})
                shard.schedule(1e-6, tick)

            return tick

        for index, shard in enumerate(fabric.shards):
            shard.schedule(0.0, make_tick(shard, index))
        return fabric

    def test_merged_stream_is_in_emission_order(self):
        fabric = self._emitting_fabric()
        fabric.run_until(3e-6)
        records = list(fabric.trace)
        assert [record.source for record in records] == ["s0", "s1"] * 4
        sequences = [record.seq for record in records]
        assert sequences == sorted(sequences)

    def test_counters_and_queries(self):
        fabric = self._emitting_fabric()
        fabric.run_until(2e-6)
        assert len(fabric.trace) == 6
        assert fabric.trace.count(source="s0") == 3
        assert fabric.trace.count(category="tick") == 6
        assert fabric.trace.last(source="s1").detail == {"shard": 1}
        assert len(fabric.trace.filter(category="tick", since=1e-6)) == 4

    def test_counter_window_sees_live_totals(self):
        fabric = self._emitting_fabric()
        fabric.run_until(1e-6)
        window = CounterWindow(fabric.trace)
        fabric.run_until(3e-6)
        assert window.count(category="tick") == 4

    def test_gating_fans_out_to_all_shards(self):
        fabric = self._emitting_fabric()
        fabric.trace.disable_category("tick")
        fabric.run_until(2e-6)
        assert len(fabric.trace) == 0
        assert not fabric.shards[0].trace.wants("tick")
        fabric.trace.enable_category("tick")
        fabric.run_until(4e-6)
        assert len(fabric.trace) > 0

    def test_shared_ring_sink_sees_merged_stream(self):
        ring = RingBufferSink(capacity=4)
        fabric = ShardedSimulator(shards=2, trace_sinks=[ring])
        for index, shard in enumerate(fabric.shards):
            shard.trace.emit(f"s{index}", "boot")
        assert [record.source for record in ring] == ["s0", "s1"]
        assert list(fabric.trace)[0].source == "s0"

    def test_clear_resets_everything(self):
        fabric = self._emitting_fabric()
        fabric.run_until(2e-6)
        fabric.trace.clear()
        assert len(fabric.trace) == 0
        assert list(fabric.trace) == []


# ---------------------------------------------------------------------------
# Cross-shard frame handoff
# ---------------------------------------------------------------------------


class TestInterShardChannel:
    def test_cut_segment_counts_cross_shard_frames(self):
        run = run_scenario("chain", params={"n_bridges": 4}, shards=2)
        left, right = run.host("left"), run.host("right")
        result = PingRunner(
            run.sim, left, right.ip, payload_size=64, count=2, interval=0.05
        ).run(start_time=run.ready_time)
        assert result.received == 2
        crossed = sum(
            run.segment(name).cross_shard_frames
            for name in run.partition.cut_segments
        )
        assert crossed > 0
        stats = run.network.sim.shard_stats()
        assert sum(entry["cross_pushes"] for entry in stats) > 0

    def test_facade_homed_nic_receives_on_a_sharded_segment(self):
        # A monitoring NIC built against the facade (run.sim) must work on a
        # sharded run exactly as it does on a single-engine run.
        from repro.ethernet.ethertype import EtherType
        from repro.ethernet.frame import EthernetFrame
        from repro.ethernet.mac import MacAddress
        from repro.lan.nic import NetworkInterface

        run = run_scenario("chain", params={"n_bridges": 2}, shards=2)
        run.warm_up()
        seen = []
        spy = NetworkInterface(
            run.sim, "spy", MacAddress.from_string("02:aa:00:00:00:08")
        )
        spy.attach(run.segment("seg1"))
        spy.set_promiscuous(True)
        spy.set_handler(lambda _nic, frame: seen.append(frame))
        result = PingRunner(
            run.sim, run.host("left"), run.host("right").ip,
            payload_size=64, count=1, interval=0.05,
        ).run(start_time=run.sim.now)
        assert result.received == 1
        assert seen, "the facade-homed spy saw no frames"

    def test_delivery_runs_refresh_on_attach_detach(self):
        fabric = ShardedSimulator(shards=2)
        from repro.ethernet.mac import MacAddress
        from repro.lan.nic import NetworkInterface
        from repro.lan.segment import Segment

        segment = Segment(fabric.shards[0], "lan")
        local = NetworkInterface(
            fabric.shards[0], "local", MacAddress.locally_administered(1)
        )
        remote = NetworkInterface(
            fabric.shards[1], "remote", MacAddress.locally_administered(2)
        )
        local.attach(segment)
        assert segment._delivery_runs is None
        remote.attach(segment)
        assert segment._delivery_runs is not None
        assert [engine for engine, _ in segment._delivery_runs] == [
            fabric.shards[0],
            fabric.shards[1],
        ]
        remote.detach()
        assert segment._delivery_runs is None


# ---------------------------------------------------------------------------
# The headline: catalog-wide bit-identical determinism
# ---------------------------------------------------------------------------


def _drive(name, shards):
    """Compile, warm up and (when possible) ping across a catalog scenario."""
    params = {"n_bridges": 2} if name in ("ring", "chain") else None
    run = run_scenario(name, params=params, shards=shards)
    run.warm_up()
    hosts = run.hosts
    if len(hosts) >= 2:
        PingRunner(
            run.sim, hosts[0], hosts[1].ip, payload_size=96, count=2, interval=0.05
        ).run(start_time=run.sim.now)
    return run


def _observables(run):
    counters = dict(run.sim.trace.counters.by_category_source)
    host_stats = {host.name: host.statistics() for host in run.hosts}
    segment_stats = {
        name: (segment.frames_carried, segment.bytes_carried)
        for name, segment in run.network.segments.items()
    }
    return counters, host_stats, segment_stats, run.sim.now


@pytest.mark.parametrize(
    "name", sorted(entry.name for entry in list_scenarios())
)
def test_catalog_scenarios_are_bit_identical_when_sharded(name):
    """Traces and counters of shards=1,2,4 equal the unsharded engine's."""
    reference = _drive(name, 1)
    assert reference.partition is None
    reference_records = list(reference.sim.trace)
    reference_observables = _observables(reference)
    for shards in (2, 4):
        sharded = _drive(name, shards)
        records = list(sharded.sim.trace)
        assert len(records) == len(reference_records), (name, shards)
        assert records == reference_records, (name, shards)
        assert _observables(sharded) == reference_observables, (name, shards)
        if sharded.n_shards > 1:
            # Merge keys are stamped and strictly increasing.
            sequences = [record.seq for record in records]
            assert sequences == sorted(sequences)


def test_sharded_run_reports_partition():
    run = run_scenario("chain", params={"n_bridges": 4}, shards=2)
    assert run.n_shards == 2
    assert run.partition is not None
    assert run.partition.lookahead_ns == 8719
    assert run.network.sim.lookahead_ns == 8719


def test_ring_with_hosts_is_deterministic_when_sharded():
    """The benchmark topology itself: hosts on every LAN, STP across shards."""
    single = run_scenario("ring", params={"n_bridges": 7, "hosts_per_segment": 1})
    single.warm_up()
    sharded = run_scenario(
        "ring", params={"n_bridges": 7, "hosts_per_segment": 1}, shards=4
    )
    sharded.warm_up()
    assert list(single.sim.trace) == list(sharded.sim.trace)
    assert dict(single.sim.trace.counters.by_category_source) == dict(
        sharded.sim.trace.counters.by_category_source
    )
