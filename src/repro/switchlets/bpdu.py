"""Bridge PDU wire formats.

Two formats are defined, exactly as the paper's transition experiment needs
(Section 5.4): the IEEE 802.1D configuration BPDU and a DEC-style BPDU that
carries the same logical information in an *incompatible* format and is sent
to a different multicast address.  ("We simply required an incompatible
packet format so that we could make a transition.")

Both classes are shipped inside the spanning-tree switchlets, so they use
only safe builtins (``int.to_bytes`` rather than ``struct``).
"""

from __future__ import annotations


class ConfigBpdu:
    """An IEEE 802.1D configuration BPDU.

    Times are stored in seconds (floats) and encoded in the standard 1/256 s
    units.  The layout follows 802.1D-1993: protocol id (2), version (1),
    type (1), flags (1), root id (8), root path cost (4), bridge id (8),
    port id (2), message age (2), max age (2), hello time (2),
    forward delay (2) — 35 bytes total.
    """

    PROTOCOL_ID = 0x0000
    VERSION = 0x00
    TYPE_CONFIG = 0x00
    ENCODED_LENGTH = 35

    def __init__(
        self,
        root_priority,
        root_mac,
        root_path_cost,
        bridge_priority,
        bridge_mac,
        port_id,
        message_age=0.0,
        max_age=20.0,
        hello_time=2.0,
        forward_delay=15.0,
        topology_change=False,
    ):
        self.root_priority = int(root_priority)
        self.root_mac = bytes(root_mac)
        self.root_path_cost = int(root_path_cost)
        self.bridge_priority = int(bridge_priority)
        self.bridge_mac = bytes(bridge_mac)
        self.port_id = int(port_id)
        self.message_age = float(message_age)
        self.max_age = float(max_age)
        self.hello_time = float(hello_time)
        self.forward_delay = float(forward_delay)
        self.topology_change = bool(topology_change)

    # -- identifiers ---------------------------------------------------------

    def root_id(self):
        """The root identifier as a comparable (priority, mac) tuple."""
        return (self.root_priority, self.root_mac)

    def bridge_id(self):
        """The transmitting bridge's identifier as a comparable tuple."""
        return (self.bridge_priority, self.bridge_mac)

    # -- encoding ------------------------------------------------------------

    @staticmethod
    def _encode_time(seconds):
        value = int(round(float(seconds) * 256.0))
        if value < 0:
            value = 0
        if value > 0xFFFF:
            value = 0xFFFF
        return value.to_bytes(2, "big")

    @staticmethod
    def _decode_time(data):
        return int.from_bytes(bytes(data), "big") / 256.0

    def encode(self):
        """Serialize to the 35-byte 802.1D configuration BPDU."""
        flags = 0x01 if self.topology_change else 0x00
        parts = [
            self.PROTOCOL_ID.to_bytes(2, "big"),
            self.VERSION.to_bytes(1, "big"),
            self.TYPE_CONFIG.to_bytes(1, "big"),
            flags.to_bytes(1, "big"),
            self.root_priority.to_bytes(2, "big"),
            self.root_mac,
            self.root_path_cost.to_bytes(4, "big"),
            self.bridge_priority.to_bytes(2, "big"),
            self.bridge_mac,
            self.port_id.to_bytes(2, "big"),
            self._encode_time(self.message_age),
            self._encode_time(self.max_age),
            self._encode_time(self.hello_time),
            self._encode_time(self.forward_delay),
        ]
        return b"".join(parts)

    @classmethod
    def decode(cls, data):
        """Parse a configuration BPDU; raises ``ValueError`` on malformed input."""
        data = bytes(data)
        if len(data) < cls.ENCODED_LENGTH:
            raise ValueError("BPDU too short: %d bytes" % len(data))
        protocol_id = int.from_bytes(data[0:2], "big")
        version = data[2]
        bpdu_type = data[3]
        if protocol_id != cls.PROTOCOL_ID:
            raise ValueError("not an 802.1D BPDU (protocol id %d)" % protocol_id)
        if version != cls.VERSION or bpdu_type != cls.TYPE_CONFIG:
            raise ValueError("unsupported BPDU version/type")
        flags = data[4]
        return cls(
            root_priority=int.from_bytes(data[5:7], "big"),
            root_mac=data[7:13],
            root_path_cost=int.from_bytes(data[13:17], "big"),
            bridge_priority=int.from_bytes(data[17:19], "big"),
            bridge_mac=data[19:25],
            port_id=int.from_bytes(data[25:27], "big"),
            message_age=cls._decode_time(data[27:29]),
            max_age=cls._decode_time(data[29:31]),
            hello_time=cls._decode_time(data[31:33]),
            forward_delay=cls._decode_time(data[33:35]),
            topology_change=bool(flags & 0x01),
        )


class DecBpdu:
    """A DEC-style spanning tree PDU.

    Deliberately incompatible with :class:`ConfigBpdu`: a one-byte code
    (0xE1), a one-byte version, little-endian-free but differently ordered
    fields, MAC addresses *before* priorities, and times encoded in whole
    seconds.  Carrying the same logical content with a different layout is
    precisely what the paper did to create an old/new protocol pair.
    """

    CODE = 0xE1
    VERSION = 0x01
    ENCODED_LENGTH = 32

    def __init__(
        self,
        root_priority,
        root_mac,
        root_path_cost,
        bridge_priority,
        bridge_mac,
        port_id,
        message_age=0.0,
        max_age=20.0,
        hello_time=2.0,
        forward_delay=15.0,
        topology_change=False,
    ):
        self.root_priority = int(root_priority)
        self.root_mac = bytes(root_mac)
        self.root_path_cost = int(root_path_cost)
        self.bridge_priority = int(bridge_priority)
        self.bridge_mac = bytes(bridge_mac)
        self.port_id = int(port_id)
        self.message_age = float(message_age)
        self.max_age = float(max_age)
        self.hello_time = float(hello_time)
        self.forward_delay = float(forward_delay)
        self.topology_change = bool(topology_change)

    def root_id(self):
        """The root identifier as a comparable (priority, mac) tuple."""
        return (self.root_priority, self.root_mac)

    def bridge_id(self):
        """The transmitting bridge's identifier as a comparable tuple."""
        return (self.bridge_priority, self.bridge_mac)

    def encode(self):
        """Serialize to the 32-byte DEC-style PDU."""
        flags = 0x80 if self.topology_change else 0x00
        parts = [
            self.CODE.to_bytes(1, "big"),
            self.VERSION.to_bytes(1, "big"),
            flags.to_bytes(1, "big"),
            self.root_mac,
            self.root_priority.to_bytes(2, "big"),
            self.bridge_mac,
            self.bridge_priority.to_bytes(2, "big"),
            self.root_path_cost.to_bytes(4, "big"),
            self.port_id.to_bytes(1, "big"),
            int(round(self.message_age)).to_bytes(1, "big"),
            int(round(self.max_age)).to_bytes(1, "big"),
            int(round(self.hello_time)).to_bytes(1, "big"),
            int(round(self.forward_delay)).to_bytes(1, "big"),
            b"\x00\x00\x00\x00",  # reserved padding
        ]
        return b"".join(parts)

    @classmethod
    def decode(cls, data):
        """Parse a DEC-style PDU; raises ``ValueError`` on malformed input."""
        data = bytes(data)
        if len(data) < cls.ENCODED_LENGTH:
            raise ValueError("DEC PDU too short: %d bytes" % len(data))
        if data[0] != cls.CODE or data[1] != cls.VERSION:
            raise ValueError("not a DEC spanning-tree PDU")
        flags = data[2]
        return cls(
            root_mac=data[3:9],
            root_priority=int.from_bytes(data[9:11], "big"),
            bridge_mac=data[11:17],
            bridge_priority=int.from_bytes(data[17:19], "big"),
            root_path_cost=int.from_bytes(data[19:23], "big"),
            port_id=data[23],
            message_age=float(data[24]),
            max_age=float(data[25]),
            hello_time=float(data[26]),
            forward_delay=float(data[27]),
            topology_change=bool(flags & 0x80),
        )
