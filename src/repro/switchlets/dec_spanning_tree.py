"""The DEC-style "old protocol" spanning tree.

Section 5.4: "In order to have a pair of protocols to transition between, we
modified the spanning tree switchlet to send DEC spanning tree packets to the
DEC management multicast address instead of 802.1D packets to the All Bridges
multicast address.  This DEC-like protocol was used as the old protocol."

:class:`DecSpanningTreeApp` is exactly that modification: it inherits the
whole 802.1D algorithm from :class:`~repro.switchlets.spanning_tree.SpanningTreeApp`
and overrides only the multicast address, the EtherType, and the PDU
encode/decode hooks (using the incompatible :class:`~repro.switchlets.bpdu.DecBpdu`
format).  As in the paper, no attempt is made to match DEC's real timer
values — only the packet format is incompatible, which is all the transition
experiment needs.
"""

from __future__ import annotations

from repro.switchlets.bpdu import ConfigBpdu, DecBpdu
from repro.switchlets.framefmt import FrameFmt
from repro.switchlets.spanning_tree import SpanningTreeApp


class DecSpanningTreeApp(SpanningTreeApp):
    """The DEC-format spanning tree ("old protocol")."""

    PROTOCOL_NAME = "dec"
    REGISTRY_KEY = "stp.dec"
    MULTICAST_ADDR = "09:00:2b:01:00:00"
    ETHERTYPE = 0x8038

    def _make_pdu(self, port_name):
        port = self.ports[port_name]
        return DecBpdu(
            root_priority=self.root_priority,
            root_mac=self.root_mac,
            root_path_cost=self.root_path_cost,
            bridge_priority=self.priority,
            bridge_mac=self.bridge_mac,
            port_id=port["port_id"],
            message_age=0.0 if self.is_root() else 1.0,
            max_age=self.max_age,
            hello_time=self.hello_time,
            forward_delay=self.forward_delay,
        )

    def _parse_pdu(self, payload):
        return DecBpdu.decode(payload)


#: Registration epilogue: the old protocol is loaded *and started* — it is
#: the protocol the network is running before the transition (Table 1's
#: initial "running" state).
REGISTRATION_SOURCE = """
_app = DecSpanningTreeApp(Unixnet, Func, Log, Safeunix, Safethread)
Func.register("stp.dec", _app)
_app.start(listen=True)
"""

#: The classes shipped inside the DEC spanning-tree switchlet.  The base
#: class and both PDU formats ride along so the subclass links against the
#: same definitions it was built with.
PACKAGED_COMPONENTS = (FrameFmt, ConfigBpdu, DecBpdu, SpanningTreeApp, DecSpanningTreeApp)
