"""Rendering helpers used by the benchmark harness.

The benchmarks print the same rows and series the paper reports; these
helpers format them as plain-text tables and simple ASCII series so the
output of ``pytest benchmarks/ --benchmark-only`` reads like the paper's
Tables and Figures.
"""

from repro.analysis.tables import render_counters, render_kv, render_table
from repro.analysis.figures import render_series, render_ascii_chart
from repro.analysis.report import ExperimentRecord, ExperimentReport, trace_summary

__all__ = [
    "render_table",
    "render_kv",
    "render_counters",
    "render_series",
    "render_ascii_chart",
    "ExperimentRecord",
    "ExperimentReport",
    "trace_summary",
]
