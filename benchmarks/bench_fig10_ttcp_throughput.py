"""Figure 10 — ttcp throughput.

Reproduces the paper's throughput figure: bulk-transfer throughput versus
application write size for the direct connection, the C buffered repeater,
and the active bridge.  The paper's headline numbers are 76 Mb/s unbridged
and 16 Mb/s through the active bridge (with the bridge reaching roughly 44 %
of the C repeater); the shape checks below assert the same ordering and
roughly the same ratios.
"""

from __future__ import annotations

from _harness import emit, run_once

from repro.analysis.figures import render_series
from repro.analysis.report import ExperimentReport
from repro.measurement.ttcp import TtcpSession
from repro.scenario import run_scenario

#: The write sizes on the paper's x-axis (Figure 10).
BUFFER_SIZES = [32, 512, 1024, 2048, 4096, 8192]

#: Bytes moved per trial (large sizes are throughput-bound; small sizes are
#: sender-bound, exactly as in the paper).
TOTAL_BYTES = {32: 40_000, 512: 200_000, 1024: 300_000, 2048: 400_000, 4096: 400_000, 8192: 400_000}


def measure_all():
    """Run the three-configuration ttcp sweep; returns {label: {size: result}}."""
    results = {}
    for label, scenario in (
        ("direct connection", "pair/direct"),
        ("C buffered repeater", "pair/repeater"),
        ("active bridge", "pair/active-bridge"),
    ):
        setup = run_scenario(scenario, seed=2).as_pair()
        per_size = {}
        start = setup.ready_time
        for index, size in enumerate(BUFFER_SIZES):
            session = TtcpSession(
                setup.network.sim,
                setup.left,
                setup.right,
                buffer_size=size,
                total_bytes=TOTAL_BYTES[size],
                receiver_port=7000 + 2 * index,
                sender_port=7001 + 2 * index,
            )
            per_size[size] = session.run(start_time=start, deadline=180.0)
            start = setup.network.sim.now + 0.5
        results[label] = per_size
    return results


def test_fig10_ttcp_throughput(benchmark):
    results = run_once(benchmark, measure_all)

    series = {
        label: [results[label][size].throughput_mbps for size in BUFFER_SIZES]
        for label in results
    }
    emit(
        "Figure 10 -- ttcp throughput (Mb/s)",
        render_series("write size (bytes)", BUFFER_SIZES, series, y_format="{:.2f}"),
    )

    direct = results["direct connection"][8192].throughput_mbps
    repeater = results["C buffered repeater"][8192].throughput_mbps
    bridged = results["active bridge"][8192].throughput_mbps
    report = ExperimentReport("Figure 10 anchors (8 KB writes)")
    report.add("Figure 10", "direct (unbridged) throughput", "76 Mb/s", f"{direct:.1f} Mb/s")
    report.add("Figure 10", "active bridge throughput", "16 Mb/s", f"{bridged:.1f} Mb/s")
    report.add(
        "Figure 10",
        "bridge / C-repeater ratio",
        "~44 %",
        f"{100 * bridged / repeater:.0f} %",
    )
    emit("Paper vs. measured", report.render())

    # Every trial must have completed.
    for label in results:
        for size in BUFFER_SIZES:
            assert results[label][size].completed, f"{label} @ {size} did not finish"
    # Ordering: direct > repeater > bridge at every size.
    for size in BUFFER_SIZES:
        assert (
            series["direct connection"][BUFFER_SIZES.index(size)]
            > series["C buffered repeater"][BUFFER_SIZES.index(size)]
            > series["active bridge"][BUFFER_SIZES.index(size)]
        )
    # Throughput grows with write size for every configuration.
    for label in results:
        assert series[label][-1] > series[label][0]
    # Anchor bands: the absolute numbers come from a calibrated model, so a
    # generous band is used -- the point is the factor between the curves.
    assert 55.0 < direct < 95.0
    assert 10.0 < bridged < 25.0
    assert 0.25 < bridged / repeater < 0.65
    assert 3.0 < direct / bridged < 7.0
