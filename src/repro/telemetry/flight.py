"""Bounded flight recorder: the last N window spans per shard.

A crash post-mortem aid, not a metrics store.  The recorder keeps a small
ring of recent per-shard spans (window bounds, message kind, wall seconds)
so that when a process-backend worker dies mid-window the resulting
``FabricBackendError`` can say what the fabric was doing in the seconds
before — which window each shard was in, which pipe rounds completed, and
how long they took — instead of just naming the crash window.

The process backend runs it *always on* (parent side only): the cost is a
deque append per pipe round-trip, which is noise next to the pipe syscalls
themselves.  The relaxed in-process executor records spans only when
telemetry is enabled, keeping the default-off hot path free of
``perf_counter`` calls.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

#: (kind, window, wall_seconds) — window is an (start_ns, bound_ns) tuple
#: or None for rounds that carry no window (control, sync, fin).
FlightEntry = Tuple[str, Optional[tuple], float]


class FlightRecorder:
    """Per-shard rings of recent span entries, bounded by ``limit``."""

    def __init__(self, shards: int, limit: int = 16) -> None:
        self.limit = limit
        self._rings: List[Deque[FlightEntry]] = [
            deque(maxlen=limit) for _ in range(shards)
        ]

    def record(
        self,
        shard: int,
        kind: str,
        window: Optional[tuple],
        wall_seconds: float,
    ) -> None:
        self._rings[shard].append((kind, window, wall_seconds))

    def tail(self, shard: Optional[int] = None) -> list:
        """Recent entries as plain data; one shard's ring, or all of them.

        With ``shard=None`` returns ``[(shard_index, entries), ...]`` for
        every shard that recorded anything.
        """
        if shard is not None:
            return [self._entry(item) for item in self._rings[shard]]
        return [
            (index, [self._entry(item) for item in ring])
            for index, ring in enumerate(self._rings)
            if ring
        ]

    @staticmethod
    def _entry(item: FlightEntry) -> dict:
        kind, window, wall_seconds = item
        return {"kind": kind, "window": window, "wall_s": wall_seconds}

    @staticmethod
    def format_tail(entries: list) -> str:
        """Render one shard's tail for embedding in an error message."""
        if not entries:
            return "  (no recorded spans)"
        lines = []
        for entry in entries:
            window = entry.get("window")
            span = (
                f"[{window[0]}, {window[1]}]" if window else "-"
            )
            lines.append(
                f"  {entry['kind']:<5} window={span:<26} "
                f"wall={entry['wall_s'] * 1e3:.3f}ms"
            )
        return "\n".join(lines)
