"""Scenario-driven scaling studies over the topology matrix.

Uses :func:`repro.scenario.run_matrix` for three sweeps the ROADMAP calls for:

* **ring length vs. spanning-tree convergence** — how long the DEC protocol
  takes to put every port in its steady state as the bridge ring grows, and
  how much control traffic it costs (the forwarding-delay timer dominates
  convergence; the control-plane load is what scales);
* **chain depth vs. ping latency** — end-to-end RTT through a lengthening
  chain of learning bridges, the many-LAN scaling of Figure 9's latency
  experiment;
* **large-ring shard-count sweep** — the 256-LAN host-populated ring warmed
  up (compile + spanning-tree convergence) on the single engine, the strict
  fabric and the relaxed fabric at increasing shard counts: the
  engine-scaling view at a size where partitioning actually matters;
* **VLAN fan-out vs. trunk utilization** — the ``vlan/trunk`` scenario with
  a growing number of VLANs, one concurrent cross-switch ping flow per VLAN:
  every flow shares the single 802.1Q trunk, so trunk frame counts and
  utilization grow linearly with the fan-out while per-VLAN isolation holds.

The study emits one markdown report (default ``benchmarks/scaling_study.md``)
that CI uploads as a build artifact, and prints it to stdout.  Pass
``--shards`` to run every matrix point on the sharded fabric — results are
bit-identical, larger points just run faster.

Run directly::

    PYTHONPATH=src python benchmarks/bench_scaling_study.py [--shards 4]
"""

from __future__ import annotations

import argparse
import platform
import time
from pathlib import Path

from repro.measurement.ping import PingRunner
from repro.scenario import run_matrix, run_scenario

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "scaling_study.md"

#: Ping payloads for the chain sweep (bytes): the small and large ends of
#: Figure 9's range.
CHAIN_PAYLOADS = (64, 1024)

#: Engine configurations for the large-ring sweep: (label, shards, sync).
LARGE_RING_CONFIGS = (
    ("single", 1, "strict"),
    ("strict, 2 shards", 2, "strict"),
    ("strict, 4 shards", 4, "strict"),
    ("relaxed, 4 shards", 4, "relaxed"),
)


def ring_convergence_sweep(lengths, shards: int) -> list:
    """One row per ring length: convergence time and control-plane load."""
    rows = []
    for run in run_matrix("ring", {"n_bridges": list(lengths)}, shards=shards):
        start = time.perf_counter()
        run.warm_up()
        wall = time.perf_counter() - start
        transitions = [
            record.time
            for record in run.sim.trace.filter(category="switchlet.log")
            if "->" in record.detail.get("message", "")
        ]
        control_frames = sum(
            segment.frames_carried for segment in run.network.segments.values()
        )
        rows.append(
            {
                "n_bridges": run.spec.params["n_bridges"],
                "segments": len(run.spec.segments),
                "convergence_s": max(transitions) if transitions else float("nan"),
                "port_transitions": len(transitions),
                "control_frames": control_frames,
                "events": run.sim.events_dispatched,
                "wall_s": wall,
            }
        )
    return rows


def chain_latency_sweep(depths, shards: int) -> list:
    """One row per chain depth: mean RTT per payload size."""
    rows = []
    for run in run_matrix("chain", {"n_bridges": list(depths)}, shards=shards):
        left, right = run.host("left"), run.host("right")
        row = {
            "n_bridges": run.spec.params["n_bridges"],
            "segments": len(run.spec.segments),
        }
        start_time = run.ready_time
        for index, payload in enumerate(CHAIN_PAYLOADS):
            runner = PingRunner(
                run.sim,
                left,
                right.ip,
                payload_size=payload,
                count=5,
                interval=0.05,
                identifier=0x5000 + index,
            )
            result = runner.run(start_time=start_time)
            assert result.received == result.sent, "ping lost frames mid-sweep"
            row[f"rtt_ms_{payload}B"] = result.mean_rtt_ms()
            start_time = run.sim.now + 0.1
        rows.append(row)
    return rows


def vlan_fanout_sweep(fanouts, shards: int) -> list:
    """One row per VLAN count: trunk load under concurrent per-VLAN flows."""
    rows = []
    for run in run_matrix(
        "vlan/trunk", {"n_vlans": list(fanouts)},
        base_params={"hosts_per_vlan": 1}, shards=shards,
    ):
        run.warm_up()
        n_vlans = run.spec.params["n_vlans"]
        # One cross-switch flow per VLAN, derived from the spec itself (each
        # HostSpec carries its VLAN; declaration order is switch-major, so
        # the first and last member of a VLAN sit on different switches).
        members: dict = {}
        for host in run.spec.hosts:
            members.setdefault(host.vlan, []).append(host.name)
        trunk = run.network.segment("trunk")
        frames_before = trunk.frames_carried
        bytes_before = trunk.bytes_carried
        start = run.sim.now + 0.01
        count, interval = 10, 0.05
        runners = []
        for index, vlan in enumerate(sorted(members)):
            near, far = members[vlan][0], members[vlan][-1]
            runner = PingRunner(
                run.sim,
                run.host(near),
                run.host(far).ip,
                payload_size=256,
                count=count,
                interval=interval,
                identifier=0x6000 + index,
            )
            runner.start(start)
            runners.append(runner)
        window = count * interval + 0.5
        run.sim.run_until(start + window)
        frames = trunk.frames_carried - frames_before
        trunk_bits = (trunk.bytes_carried - bytes_before) * 8.0
        received = sum(runner.result.received for runner in runners)
        sent = sum(runner.result.sent for runner in runners)
        assert received == sent, "VLAN flows lost frames mid-sweep"
        rows.append(
            {
                "n_vlans": n_vlans,
                "flows": len(runners),
                "trunk_frames": frames,
                "trunk_mbps": trunk_bits / window / 1e6,
                "trunk_utilization": trunk_bits / (trunk.bandwidth_bps * window),
                "echoes": received,
            }
        )
    return rows


def large_ring_sweep(segments: int) -> list:
    """Warm the 256-LAN host-populated ring up under each engine config."""
    rows = []
    reference_counters = None
    for label, shards, sync in LARGE_RING_CONFIGS:
        start = time.perf_counter()
        run = run_scenario(
            "ring",
            params={"n_bridges": segments - 1, "hosts_per_segment": 2},
            shards=shards,
            sync=sync if shards > 1 else None,
        )
        compiled = time.perf_counter()
        run.warm_up()
        warmed = time.perf_counter()
        counters = dict(run.sim.trace.counters.by_category_source)
        if reference_counters is None:
            reference_counters = counters
        else:
            assert counters == reference_counters, (
                f"{label} warm-up diverged from the single engine"
            )
        rows.append(
            {
                "engine": label,
                "segments": segments,
                "cut": len(run.partition.cut_segments) if run.partition else 0,
                "events": run.sim.events_dispatched,
                "compile_s": compiled - start,
                "warmup_s": warmed - compiled,
            }
        )
        del run
    return rows


def render_markdown(ring_rows, chain_rows, vlan_rows, large_rows, shards: int) -> str:
    lines = [
        "# Scaling study",
        "",
        f"Python {platform.python_version()}, engine: "
        + (f"sharded fabric ({shards} shards)" if shards > 1 else "single"),
        "",
        "## Ring length vs. spanning-tree convergence",
        "",
        "Convergence is pinned by the DEC forwarding-delay timer; what scales",
        "with ring length is the control-plane load required to get there.",
        "",
        "| bridges | LANs | converged (s) | port transitions | control frames | events | wall (s) |",
        "|---:|---:|---:|---:|---:|---:|---:|",
    ]
    for row in ring_rows:
        lines.append(
            f"| {row['n_bridges']} | {row['segments']} | {row['convergence_s']:.1f} "
            f"| {row['port_transitions']} | {row['control_frames']} "
            f"| {row['events']} | {row['wall_s']:.2f} |"
        )
    lines += [
        "",
        "## Chain depth vs. ping latency",
        "",
        "Every extra store-and-forward bridge adds its software cost to the",
        "round trip (the paper's ~1 ms/hop active-bridge figure).",
        "",
        "| bridges | LANs | "
        + " | ".join(f"mean RTT {p} B (ms)" for p in CHAIN_PAYLOADS)
        + " |",
        "|---:|---:|" + "---:|" * len(CHAIN_PAYLOADS),
    ]
    for row in chain_rows:
        cells = " | ".join(
            f"{row[f'rtt_ms_{payload}B']:.3f}" for payload in CHAIN_PAYLOADS
        )
        lines.append(f"| {row['n_bridges']} | {row['segments']} | {cells} |")
    if vlan_rows:
        lines += [
            "",
            "## VLAN fan-out vs. trunk utilization",
            "",
            "One concurrent cross-switch ping flow per VLAN; every flow",
            "shares the single 802.1Q trunk, so trunk load grows linearly",
            "with the fan-out while per-VLAN isolation holds (no flow loses",
            "a frame).",
            "",
            "| VLANs | flows | trunk frames | trunk Mb/s | trunk util | echoes |",
            "|---:|---:|---:|---:|---:|---:|",
        ]
        for row in vlan_rows:
            lines.append(
                f"| {row['n_vlans']} | {row['flows']} | {row['trunk_frames']} "
                f"| {row['trunk_mbps']:.3f} | {row['trunk_utilization']:.5f} "
                f"| {row['echoes']} |"
            )
    if large_rows:
        lines += [
            "",
            f"## {large_rows[0]['segments']}-LAN ring: engine configurations",
            "",
            "Compile plus spanning-tree warm-up of the host-populated ring",
            "(two hosts per LAN) per engine configuration.  Counters are",
            "verified identical across every row; event counts differ only",
            "by the fabric's per-handoff bookkeeping (cut-segment delivery",
            "runs, relaxed barrier events) — warm-up is control-plane-bound,",
            "so the relaxed win shows in the blast benchmarks, not here.",
            "",
            "| engine | cut segments | events | compile (s) | warm-up (s) |",
            "|---|---:|---:|---:|---:|",
        ]
        for row in large_rows:
            lines.append(
                f"| {row['engine']} | {row['cut']} | {row['events']} "
                f"| {row['compile_s']:.2f} | {row['warmup_s']:.2f} |"
            )
    lines.append("")
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--ring-lengths", type=int, nargs="+", default=[2, 4, 8, 16],
        help="bridge counts for the convergence sweep",
    )
    parser.add_argument(
        "--chain-depths", type=int, nargs="+", default=[1, 2, 4, 8, 16],
        help="bridge counts for the latency sweep",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="run every matrix point on the sharded fabric",
    )
    parser.add_argument(
        "--vlan-fanouts", type=int, nargs="+", default=[1, 2, 4, 8],
        help="VLAN counts for the trunk-utilization sweep",
    )
    parser.add_argument(
        "--large-ring", type=int, default=256,
        help="LAN count for the engine-configuration sweep (0 disables it)",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help="markdown report path (uploaded by CI as an artifact)",
    )
    args = parser.parse_args()

    ring_rows = ring_convergence_sweep(args.ring_lengths, args.shards)
    chain_rows = chain_latency_sweep(args.chain_depths, args.shards)
    vlan_rows = vlan_fanout_sweep(args.vlan_fanouts, args.shards)
    large_rows = (
        large_ring_sweep(args.large_ring) if args.large_ring else []
    )
    report = render_markdown(
        ring_rows, chain_rows, vlan_rows, large_rows, args.shards
    )
    args.output.write_text(report)
    print(report)
    print(f"report written to {args.output}")


if __name__ == "__main__":
    main()
