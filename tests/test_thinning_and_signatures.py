"""Tests for module thinning, safe builtins, and interface signatures."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.signature import (
    digest_interface,
    digest_module,
    digest_source,
    environment_digests,
    interface_of,
)
from repro.core.thinning import (
    FORBIDDEN_BUILTIN_NAMES,
    SAFE_BUILTINS,
    ThinnedModule,
    safe_builtins,
    thin,
)
from repro.exceptions import ThinningViolation


class _Implementation:
    """A toy implementation with public, private and dangerous members."""

    def pub_func(self):
        return "public"

    def another_pub(self, x):
        return x + 5

    def _private_helper(self):
        return "secret"

    def dangerous(self):
        return "should never be reachable"


# ---------------------------------------------------------------------------
# Thinning
# ---------------------------------------------------------------------------


class TestThinning:
    def test_allowed_names_are_reachable(self):
        module = thin("Example", _Implementation(), ["pub_func", "another_pub"])
        assert module.pub_func() == "public"
        assert module.another_pub(1) == 6

    def test_excluded_names_are_unreachable(self):
        module = thin("Example", _Implementation(), ["pub_func"])
        with pytest.raises(ThinningViolation):
            module.dangerous
        with pytest.raises(ThinningViolation):
            module._private_helper

    def test_thinned_module_is_immutable(self):
        module = thin("Example", _Implementation(), ["pub_func"])
        with pytest.raises(ThinningViolation):
            module.pub_func = lambda: "hijacked"
        with pytest.raises(ThinningViolation):
            module.new_attr = 1

    def test_unknown_allowed_name_is_an_error(self):
        with pytest.raises(ThinningViolation):
            thin("Example", _Implementation(), ["does_not_exist"])

    def test_exports_listing(self):
        module = thin("Example", _Implementation(), ["pub_func", "another_pub"])
        assert module.__exports__ == ("another_pub", "pub_func")
        assert sorted(dir(module)) == ["another_pub", "pub_func"]

    def test_module_name(self):
        module = thin("Example", _Implementation(), ["pub_func"])
        assert module.__module_name__ == "Example"
        assert "Example" in repr(module)

    def test_direct_construction(self):
        module = ThinnedModule("M", {"f": lambda: 3})
        assert module.f() == 3


# ---------------------------------------------------------------------------
# Safe builtins
# ---------------------------------------------------------------------------


class TestSafeBuiltins:
    def test_forbidden_names_absent(self):
        table = safe_builtins()
        for name in FORBIDDEN_BUILTIN_NAMES:
            assert name not in table, f"{name} must not be available to switchlets"

    def test_essential_names_present(self):
        table = safe_builtins()
        for name in ("len", "range", "isinstance", "dict", "bytes", "ValueError",
                     "staticmethod", "classmethod", "property", "sorted", "min", "max"):
            assert name in table

    def test_class_definition_possible(self):
        namespace = {"__builtins__": safe_builtins()}
        exec("class Thing:\n    def value(self):\n        return 7\nresult = Thing().value()", namespace)
        assert namespace["result"] == 7

    def test_module_constant_is_consistent(self):
        assert set(SAFE_BUILTINS) == set(safe_builtins())

    def test_fresh_copies_are_independent(self):
        first = safe_builtins()
        second = safe_builtins()
        first["len"] = None
        assert second["len"] is len


# ---------------------------------------------------------------------------
# Signatures
# ---------------------------------------------------------------------------


class TestSignatures:
    def test_interface_of_thinned_module(self):
        module = thin("Example", _Implementation(), ["pub_func", "another_pub"])
        assert interface_of(module) == ("another_pub", "pub_func")

    def test_digest_is_order_insensitive(self):
        assert digest_interface(["a", "b", "c"]) == digest_interface(["c", "b", "a"])

    def test_digest_changes_with_interface(self):
        assert digest_interface(["a", "b"]) != digest_interface(["a", "b", "c"])

    def test_digest_module_matches_interface_digest(self):
        module = thin("Example", _Implementation(), ["pub_func"])
        assert digest_module(module) == digest_interface(["pub_func"])

    def test_thinned_and_unthinned_differ(self):
        wide = thin("Example", _Implementation(), ["pub_func", "dangerous"])
        narrow = thin("Example", _Implementation(), ["pub_func"])
        assert digest_module(wide) != digest_module(narrow)

    def test_source_digest_changes_with_source(self):
        assert digest_source("x = 1") != digest_source("x = 2")

    def test_environment_digests_keys(self):
        env = {
            "A": thin("A", _Implementation(), ["pub_func"]),
            "B": thin("B", _Implementation(), ["another_pub"]),
        }
        digests = environment_digests(env)
        assert set(digests) == {"A", "B"}
        assert digests["A"] != digests["B"]

    @given(st.lists(st.text(alphabet="abcdefgh", min_size=1, max_size=8), max_size=10))
    def test_digest_deterministic(self, names):
        assert digest_interface(names) == digest_interface(list(names))
