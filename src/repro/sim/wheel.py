"""A quantizing timer wheel for population-scale timer churn.

Fifty thousand on/off traffic sources each keep one pending timer alive.
Pushed naively, every timer lands on its own nanosecond and therefore its
own heap entry — on the sharded engines that is one `heapq` push *and*
one bucket allocation per timer (`ShardQueue` hashes events into
per-timestamp FIFO buckets and heap-orders only the distinct
timestamps).  The wheel's job is to make those timestamps collide on
purpose: it quantizes each fire time **up** to the next tick boundary
and schedules through the engine's ordinary API, so every timer that
lands in the same tick shares one bucket and one heap entry.

Crucially the wheel adds **no dispatch machinery of its own** — no
aggregated callbacks, no private ordering.  One timer is still one
engine event, executed by the engine's normal same-timestamp FIFO
discipline.  That is what keeps the determinism contract intact: the
quantized fire times are computed from integers only, so `single`,
strict, relaxed and process runs schedule bit-identical timelines, and
same-tick ordering is the engine's own seq order everywhere.

Cancellation is the engine's own: :meth:`TimerWheel.schedule` returns
the underlying :class:`~repro.sim.events.Event`, whose ``cancel()`` is
O(1) on every engine.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.clock import seconds_to_ns

#: Default tick: 100 µs.  Traffic timers run at millisecond scales, so a
#: 100 µs grid perturbs an individual source's schedule by less than one
#: part in ten while collapsing thousands of timers onto shared buckets.
DEFAULT_TICK_NS = 100_000


class TimerWheel:
    """Quantizes timer fire times onto a shared tick grid.

    One wheel serves one engine (a :class:`~repro.sim.engine.Simulator`,
    one :class:`~repro.sim.shard.EngineShard`, or a fabric facade — any
    object with ``clock`` and ``schedule_at_ns``).  Sharded populations
    build one wheel per home engine so scheduling stays shard-local.
    """

    __slots__ = ("sim", "tick_ns", "scheduled", "quantized")

    def __init__(self, sim, tick_ns: int = DEFAULT_TICK_NS) -> None:
        if tick_ns <= 0:
            raise ValueError("timer wheel tick must be positive")
        self.sim = sim
        self.tick_ns = int(tick_ns)
        #: Timers scheduled through the wheel (diagnostics).
        self.scheduled = 0
        #: Timers whose fire time actually moved to reach the grid.
        self.quantized = 0

    def quantize_ns(self, when_ns: int) -> int:
        """``when_ns`` rounded *up* to the next tick boundary.

        Rounding up (never down) preserves the "no earlier than asked"
        timer contract, so a wheel-scheduled timeout can never fire
        before the duration it was given.
        """
        tick = self.tick_ns
        remainder = when_ns % tick
        if remainder:
            return when_ns + (tick - remainder)
        return when_ns

    def schedule_at_ns(self, when_ns: int, callback: Callable[[], None], label: str = ""):
        """Schedule ``callback`` at ``when_ns`` quantized up to the grid."""
        fire_ns = self.quantize_ns(when_ns)
        self.scheduled += 1
        if fire_ns != when_ns:
            self.quantized += 1
        return self.sim.schedule_at_ns(fire_ns, callback, label)

    def schedule(self, delay_seconds: float, callback: Callable[[], None], label: str = ""):
        """Schedule ``callback`` ``delay_seconds`` from now, on the grid.

        The delay is converted to integer nanoseconds with the engine's
        own rounding before quantization, so the resulting timestamp is
        identical on every engine mode.
        """
        if delay_seconds < 0:
            raise ValueError("timer delay cannot be negative")
        when_ns = self.sim.clock.now_ns + seconds_to_ns(delay_seconds)
        return self.schedule_at_ns(when_ns, callback, label)
