"""The protocol-transition control switchlet (Section 5.4, Table 1).

The control switchlet coordinates an automatic, in-service transition from an
"old" protocol (the DEC-style spanning tree) to a "new" one (IEEE 802.1D),
and falls back automatically if the new protocol misbehaves:

* it can only be loaded when the old protocol is running and the new one is
  loaded but idle;
* it arranges to receive packets addressed to the new protocol's multicast
  address (the All Bridges group);
* when the first new-protocol packet arrives it **captures the old
  protocol's state**, suspends the old protocol, starts the new one (letting
  it take over its own multicast address), and begins suppressing any
  late old-protocol packets, which it now receives on the old address;
* 30 seconds in, the new protocol is expected to be forwarding; 60 seconds in
  the control switchlet **validates** the new protocol's spanning tree
  against the state captured from the old one ("Based on local knowledge, we
  have determined that the portion of the spanning tree computed at each node
  should be identical for the old and the new protocols");
* if validation fails — or an old-protocol packet shows up after the initial
  transition period — the new protocol is stopped, the old protocol is
  restarted, and the network is considered stable: no further transition
  happens without human intervention.

Every state change is appended to :attr:`ControlApp.transition_log`, which is
what the Table 1 benchmark renders.
"""

from __future__ import annotations

from repro.switchlets.framefmt import FrameFmt


class ControlApp:
    """The transition control switchlet.

    Args:
        unixnet: the thinned ``Unixnet`` module.
        func: the thinned ``Func`` registry.
        log: the thinned ``Log`` module.
        safeunix: the thinned ``Safeunix`` module (time).
        safethread: the thinned ``Safethread`` module (timers).
        old_key / new_key: registry keys of the old and new protocol
            applications (``"stp.dec"`` and ``"stp.ieee"`` by default).
        suppression_period: Table 1's initial transition window (30 s).
        validation_delay: when the correctness tests run (60 s).
    """

    #: Express-lane safety declaration consumed by the scenario compiler
    #: (see repro.scenario.compile): the protocol-control app reaches the wire only
    #: through unixnet writes, which ride the node's CPU queue — its
    #: reactions never escape a segment synchronously, so the node's ports
    #: keep their ``segment_local`` declaration with this switchlet loaded.
    SEGMENT_LOCAL_SAFE = True

    OLD_KEY = "stp.dec"
    NEW_KEY = "stp.ieee"

    SUPPRESSION_PERIOD = 30.0
    VALIDATION_DELAY = 60.0

    # Control-switchlet states (the "control" column of Table 1).
    STATE_MONITORING = "monitoring"          # waiting for the first new-protocol packet
    STATE_TRANSITIONING = "transitioning"    # new protocol started, old packets suppressed
    STATE_VALIDATING = "validating"          # suppression window over, tests pending
    STATE_TERMINATED = "terminated"          # tests passed; control's job is done
    STATE_FALLEN_BACK = "fallen-back"        # tests failed or late old packet: old restored

    def __init__(self, unixnet, func, log, safeunix, safethread,
                 old_key=OLD_KEY, new_key=NEW_KEY,
                 suppression_period=SUPPRESSION_PERIOD,
                 validation_delay=VALIDATION_DELAY):
        self.unixnet = unixnet
        self.func = func
        self.log = log
        self.safeunix = safeunix
        self.safethread = safethread
        self.old_key = old_key
        self.new_key = new_key
        self.suppression_period = float(suppression_period)
        self.validation_delay = float(validation_delay)
        self.state = self.STATE_MONITORING
        self.transition_log = []
        self.captured_old_state = None
        self.transition_started_at = None
        self.old_packets_suppressed = 0
        self.new_packets_suppressed = 0
        self.validation_result = None
        self._new_addr_iport = None
        self._old_addr_iport = None
        self._timers = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        """Verify preconditions and begin monitoring for the new protocol.

        Raises:
            RuntimeError: if the old protocol is not running or the new
                protocol is not loaded-and-idle (the paper's control
                switchlet performs exactly these checks).
        """
        old_app = self._old()
        new_app = self._new()
        if old_app is None or not old_app.running:
            raise RuntimeError("control switchlet requires the old protocol to be running")
        if new_app is None:
            raise RuntimeError("control switchlet requires the new protocol to be loaded")
        if new_app.running:
            raise RuntimeError("control switchlet requires the new protocol to be idle")
        # Listen on the new protocol's multicast address; the new protocol is
        # idle, so the address is free to bind.
        self._new_addr_iport = self.unixnet.bind_addr(new_app.MULTICAST_ADDR)
        self.unixnet.set_handler_in(self._new_addr_iport, self._on_new_protocol_packet)
        self._record("load/start control", "running", "loaded", "running")
        self.log.log("control switchlet monitoring for %s packets" % new_app.PROTOCOL_NAME)

    # ------------------------------------------------------------------
    # Phase 1: waiting for the new protocol to appear
    # ------------------------------------------------------------------

    def _on_new_protocol_packet(self, packet):
        if self.state == self.STATE_MONITORING:
            self._begin_transition(packet)
        elif self.state == self.STATE_FALLEN_BACK:
            # After a fallback the network is stable: new-protocol packets
            # are suppressed and no further transition occurs.
            self.new_packets_suppressed += 1
        else:
            self.new_packets_suppressed += 1

    def _begin_transition(self, trigger_packet):
        old_app = self._old()
        new_app = self._new()
        now = self.safeunix.gettimeofday()
        self.transition_started_at = now
        # Capture the old protocol's view of the tree before halting it; this
        # is the information "unavailable to the implementors of either
        # protocol" that the control switchlet exploits.
        self.captured_old_state = old_app.snapshot()
        old_app.suspend()
        self._record("recv IEEE packet", "suspended", "loaded",
                     "suspend DEC; capture DEC state")
        # Hand the All-Bridges address over to the new protocol and start it.
        self.unixnet.unbind_addr(self._new_addr_iport)
        self._new_addr_iport = None
        new_app.start(listen=True)
        # Feed the triggering packet to the new protocol so its information
        # is not lost.
        new_app.deliver_packet(trigger_packet)
        # Start listening on the old protocol's address so late old-protocol
        # packets can be suppressed (and detected after the window).
        self._old_addr_iport = self.unixnet.bind_addr(old_app.MULTICAST_ADDR)
        self.unixnet.set_handler_in(self._old_addr_iport, self._on_old_protocol_packet)
        self.state = self.STATE_TRANSITIONING
        self._record("start IEEE", "loaded", "running", "start IEEE")
        self._timers.append(
            self.safethread.delay(self.suppression_period, self._end_suppression_window)
        )
        self._timers.append(
            self.safethread.delay(self.validation_delay, self._perform_tests)
        )
        self.log.log("transition started: old suspended, new running")

    # ------------------------------------------------------------------
    # Phase 2: suppression window and validation
    # ------------------------------------------------------------------

    def _on_old_protocol_packet(self, _packet):
        if self.state == self.STATE_TRANSITIONING:
            # "Any DEC protocol packets received during an initial transition
            # period are suppressed."
            self.old_packets_suppressed += 1
            return
        if self.state in (self.STATE_VALIDATING, self.STATE_TERMINATED):
            # "If the control switchlet finds any old protocol packets after
            # the initial transition period, it falls back to the old
            # protocol assuming that a failure has occurred elsewhere."
            self._fall_back("old-protocol packet seen after the transition period")
            return
        self.old_packets_suppressed += 1

    def _end_suppression_window(self):
        if self.state != self.STATE_TRANSITIONING:
            return
        self.state = self.STATE_VALIDATING
        self._record("30 seconds", "loaded", "running/forwarding", "suppress DEC packets")

    def _perform_tests(self):
        if self.state not in (self.STATE_VALIDATING, self.STATE_TRANSITIONING):
            return
        self._record("60 seconds", "loaded", "running", "perform tests")
        new_app = self._new()
        passed, reason = self.validate(self.captured_old_state, new_app.snapshot())
        self.validation_result = (passed, reason)
        if passed:
            self.state = self.STATE_TERMINATED
            self._record("pass tests", "loaded", "running", "terminate")
            self.log.log("transition validated: %s" % reason)
        else:
            self._fall_back("validation failed: %s" % reason)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    @staticmethod
    def validate(old_state, new_state):
        """Compare the old and new protocols' computed trees.

        Based on the paper's local knowledge: the locally computed portion of
        the spanning tree (root bridge, root port, per-port roles) must be
        identical under both protocols.  Returns ``(passed, reason)``.
        """
        if old_state is None or new_state is None:
            return False, "missing state to compare"
        if old_state["root_mac"] != new_state["root_mac"]:
            return False, (
                "root bridge differs: old %s, new %s"
                % (old_state["root_mac"], new_state["root_mac"])
            )
        if old_state["root_port"] != new_state["root_port"]:
            return False, (
                "root port differs: old %r, new %r"
                % (old_state["root_port"], new_state["root_port"])
            )
        if old_state["port_roles"] != new_state["port_roles"]:
            return False, "per-port roles differ"
        return True, "root, root port and port roles all match"

    # ------------------------------------------------------------------
    # Fallback
    # ------------------------------------------------------------------

    def _fall_back(self, reason):
        if self.state == self.STATE_FALLEN_BACK:
            return
        new_app = self._new()
        old_app = self._old()
        new_app.suspend()
        # Give the old protocol its address back, then resume it.
        if self._old_addr_iport is not None:
            self.unixnet.unbind_addr(self._old_addr_iport)
            self._old_addr_iport = None
        old_app.resume(listen=True)
        # Take over the new protocol's address so its packets are suppressed
        # from now on; the network is considered stable after this.
        self._new_addr_iport = self.unixnet.bind_addr(new_app.MULTICAST_ADDR)
        self.unixnet.set_handler_in(self._new_addr_iport, self._on_new_protocol_packet)
        for handle in self._timers:
            handle.cancel()
        self._timers = []
        self.state = self.STATE_FALLEN_BACK
        self._record("fail tests or fallback", "running", "loaded",
                     "stop IEEE; start DEC; fallback: %s" % reason)
        self.log.log("fell back to the old protocol: %s" % reason)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _old(self):
        return self.func.lookup_opt(self.old_key)

    def _new(self):
        return self.func.lookup_opt(self.new_key)

    def _record(self, action, dec_state, ieee_state, control_action):
        entry = {
            "time": self.safeunix.gettimeofday(),
            "action": action,
            "dec": dec_state,
            "ieee": ieee_state,
            "control": control_action,
        }
        self.transition_log.append(entry)

    def stats(self):
        """Counters and the current control state."""
        return {
            "state": self.state,
            "old_packets_suppressed": self.old_packets_suppressed,
            "new_packets_suppressed": self.new_packets_suppressed,
            "validation_result": self.validation_result,
            "transitions_logged": len(self.transition_log),
        }


#: Registration epilogue executed when the control switchlet is loaded.
REGISTRATION_SOURCE = """
_app = ControlApp(Unixnet, Func, Log, Safeunix, Safethread)
Func.register("switchlet.control", _app)
_app.start()
"""

#: The classes shipped inside the control switchlet.
PACKAGED_COMPONENTS = (FrameFmt, ControlApp)
