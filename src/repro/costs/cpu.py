"""A single-server processing queue.

The paper's bridge is effectively a single thread of Caml code: frames are
handled one at a time, and a frame arriving while another is being processed
waits.  (Section 7.4 notes that the Caml threads run entirely in user mode,
"thus, no speedup occurs due to our multiprocessor".)  :class:`CpuQueue`
models exactly that: work items are served in FIFO order, one at a time, each
occupying the server for its submitted cost.

The same class models an end host's protocol processing and the C repeater's
loop, just with different costs.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.sim.engine import Simulator


class CpuQueue:
    """A FIFO, single-server queue of timed work items.

    Args:
        sim: owning simulator.
        name: used in traces (e.g. ``"bridge1.cpu"``).
    """

    # Every station carries one CpuQueue; slots keep the fleet's hottest
    # bookkeeping object free of per-instance __dict__ overhead.
    __slots__ = (
        "sim",
        "name",
        "_service_label",
        "_pending",
        "_busy",
        "_stall_until",
        "_in_service_callbacks",
        "items_processed",
        "busy_time",
        "max_queue_depth",
        "batches_merged",
    )

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self._service_label = f"{name}:service"
        self._pending: Deque[Tuple[float, Callable[[], None]]] = deque()
        self._busy = False
        self._stall_until = 0.0
        # The callbacks of the batch currently in service (usually one;
        # back-to-back zero-cost items ride along).  Holding them here lets
        # service completion reuse one bound method instead of allocating a
        # closure per item.
        self._in_service_callbacks: Optional[Tuple[Callable[[], None], ...]] = None
        # Statistics
        self.items_processed = 0
        self.busy_time = 0.0
        self.max_queue_depth = 0
        self.batches_merged = 0

    @property
    def queue_depth(self) -> int:
        """Number of items waiting (not including the one in service)."""
        return len(self._pending)

    @property
    def busy(self) -> bool:
        """Whether an item is currently in service."""
        return self._busy

    def submit(self, cost_seconds: float, callback: Callable[[], None]) -> None:
        """Submit a work item that occupies the CPU for ``cost_seconds``.

        ``callback`` runs when the item *finishes* service.
        """
        if cost_seconds < 0:
            cost_seconds = 0.0
        self._pending.append((cost_seconds, callback))
        self.max_queue_depth = max(self.max_queue_depth, len(self._pending))
        if not self._busy:
            self._serve_next()

    def stall(self, duration_seconds: float) -> None:
        """Block the server for ``duration_seconds`` (models a GC pause).

        Items already queued wait; items submitted during the stall queue
        behind them.
        """
        if duration_seconds <= 0:
            return
        release = self.sim.now + duration_seconds
        self._stall_until = max(self._stall_until, release)
        trace = self.sim.trace
        if trace.wants("cpu.stall"):
            # Eager detail: the queue depth must be captured at stall time,
            # and stalls are rare (GC cadence), so laziness buys nothing.
            trace.emit(
                self.name,
                "cpu.stall",
                {"duration": duration_seconds, "queued": len(self._pending)},
            )

    def _serve_next(self) -> None:
        if not self._pending:
            self._busy = False
            return
        self._busy = True
        cost, callback = self._pending.popleft()
        self.busy_time += cost
        self.items_processed += 1
        # Back-to-back zero-cost items complete at the same timestamp as the
        # head item, so serving the whole run as ONE event preserves every
        # completion time while cutting the event count (see ROADMAP:
        # "batched CPU service").
        if self._pending and self._pending[0][0] == 0.0:
            batch = [callback]
            while self._pending and self._pending[0][0] == 0.0:
                _, extra = self._pending.popleft()
                batch.append(extra)
                self.items_processed += 1
            self.batches_merged += 1
            callbacks: Tuple[Callable[[], None], ...] = tuple(batch)
        else:
            callbacks = (callback,)
        stall = self._stall_until
        total = cost if stall <= 0.0 else cost + max(0.0, stall - self.sim.now)
        self._in_service_callbacks = callbacks
        self.sim.schedule(total, self._finish, label=self._service_label)

    def _finish(self) -> None:
        callbacks = self._in_service_callbacks
        self._in_service_callbacks = None
        remaining = list(callbacks)
        while remaining:
            callback = remaining.pop(0)
            callback()
            if remaining and self._stall_until > self.sim.now:
                # A stall landed after the batch was committed (a GC pause
                # mid-service, or this very callback stalling the server).
                # Unbatched, the still-queued items would wait it out —
                # preserve that: put them back at the head of the queue and
                # let the normal stall accounting delay them.
                self.items_processed -= len(remaining)
                self._pending.extendleft(
                    (0.0, rider) for rider in reversed(remaining)
                )
                break
        self._serve_next()

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of elapsed simulated time the server spent in service."""
        total = self.sim.now if elapsed is None else elapsed
        if total <= 0:
            return 0.0
        return min(1.0, self.busy_time / total)
