"""Figure 5 — the packet path through the active node.

The paper decomposes a forwarded frame's path into seven steps (NIC, ISR,
kernel-to-user delivery, Caml processing, user-to-kernel emit, driver queue,
transmit).  This benchmark traces a single frame through the simulated bridge
and accounts the simulated time to the cost-model components that stand in
for those steps, then checks that the per-frame total matches the forwarding
rates of Section 7.3.
"""

from __future__ import annotations

from _harness import emit, run_once

from repro.analysis.tables import render_table
from repro.costs.model import CostModel
from repro.measurement.ping import PingRunner
from repro.measurement.setups import build_bridged_pair

FRAME_BYTES = 1024 + 60  # ~1 KB of echo data plus headers


def measure():
    """One echo through the bridge, plus the cost-model decomposition."""
    setup = build_bridged_pair(seed=8)
    runner = PingRunner(
        setup.network.sim, setup.left, setup.right.ip, payload_size=1024, count=3, interval=0.1
    )
    result = runner.run(start_time=setup.ready_time)
    return result, setup.device.costs


def test_fig05_packet_path(benchmark):
    result, costs = run_once(benchmark, measure)
    model: CostModel = costs

    steps = [
        ("1-2. frame arrives / ISR collects it", "wire + NIC (simulated medium)", "-"),
        ("3. kernel wakes bridge, recvfrom()", "kernel crossing (rx)",
         f"{model.kernel_crossing_cost * 1e3:.3f} ms"),
        ("4. the Caml program operates on the frame", "interpreted switchlet path",
         f"{model.switchlet_frame_cost(FRAME_BYTES) * 1e3:.3f} ms"),
        ("5. sendto() back into the kernel", "kernel crossing (tx)",
         f"{model.kernel_crossing_cost * 1e3:.3f} ms"),
        ("6-7. driver queues and transmits", "wire + NIC (simulated medium)", "-"),
    ]
    emit(
        "Figure 5 -- packet path through the active node (per-frame software cost)",
        render_table(["step (paper)", "cost component (model)", "cost"], steps),
    )
    total = model.bridge_frame_cost(FRAME_BYTES)
    emit(
        "Totals",
        f"per-frame software total: {total * 1e3:.3f} ms  "
        f"=> forwarding ceiling {1.0 / total:.0f} frames/s at {FRAME_BYTES} B\n"
        f"measured one-way added latency (RTT/2 difference vs. direct) is "
        f"reported by bench_fig09; mean bridged RTT here: {result.mean_rtt_ms():.3f} ms",
    )

    assert result.received == result.sent
    # The software path total must equal its components.
    assert total == (
        2 * model.kernel_crossing_cost + model.switchlet_frame_cost(FRAME_BYTES)
    )
    # And it must sit in the neighbourhood of the paper's 0.56 ms/frame.
    assert 0.4e-3 < total < 0.8e-3
