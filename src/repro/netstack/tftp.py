"""TFTP, the top layer of the paper's network loading stack.

Section 5.2: "the highest layer in this stack implements a TFTP server.
This server only services write requests in binary format.  Any such file is
taken to be a Caml byte code file and, upon successful receipt, an attempt is
made to dynamically load and evaluate the file."

This module provides:

* the four packet types needed for writes (WRQ, DATA, ACK, ERROR) with
  encode/decode,
* :class:`TftpServer` — accepts binary (octet-mode) write requests only, and
  hands the completely received file to a caller-supplied callback (the
  active node passes the switchlet loader's ``load_bytes``),
* :class:`TftpClient` — writes a file to a server; used by the examples and
  benchmarks to ship switchlets over the simulated network.

Both endpoints are transport-agnostic: they receive datagrams through
``handle_datagram(payload, remote)`` and send through a callable supplied at
construction, so they plug directly into :class:`repro.netstack.stack.HostStack`
or the active node's UDP switchlet.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Callable, Dict, Optional, Tuple, Union

from repro.exceptions import PacketError

#: Standard TFTP well-known port.
TFTP_PORT = 69

#: Standard TFTP data block size.
BLOCK_SIZE = 512


class TftpOpcode(IntEnum):
    """TFTP opcodes (read requests are intentionally unsupported)."""

    RRQ = 1
    WRQ = 2
    DATA = 3
    ACK = 4
    ERROR = 5


class TftpErrorCode(IntEnum):
    """TFTP error codes used by the server."""

    NOT_DEFINED = 0
    ILLEGAL_OPERATION = 4


@dataclass(frozen=True)
class TftpWriteRequest:
    """A WRQ packet: filename plus transfer mode."""

    filename: str
    mode: str = "octet"

    def encode(self) -> bytes:
        return (
            struct.pack("!H", int(TftpOpcode.WRQ))
            + self.filename.encode("ascii")
            + b"\x00"
            + self.mode.encode("ascii")
            + b"\x00"
        )


@dataclass(frozen=True)
class TftpData:
    """A DATA packet: block number plus up to 512 bytes of data."""

    block: int
    data: bytes

    def encode(self) -> bytes:
        if len(self.data) > BLOCK_SIZE:
            raise PacketError(f"TFTP data block too large: {len(self.data)} bytes")
        return struct.pack("!HH", int(TftpOpcode.DATA), self.block & 0xFFFF) + self.data


@dataclass(frozen=True)
class TftpAck:
    """An ACK packet acknowledging a block number."""

    block: int

    def encode(self) -> bytes:
        return struct.pack("!HH", int(TftpOpcode.ACK), self.block & 0xFFFF)


@dataclass(frozen=True)
class TftpError:
    """An ERROR packet."""

    code: int
    message: str

    def encode(self) -> bytes:
        return (
            struct.pack("!HH", int(TftpOpcode.ERROR), self.code & 0xFFFF)
            + self.message.encode("ascii")
            + b"\x00"
        )


TftpPacket = Union[TftpWriteRequest, TftpData, TftpAck, TftpError]


def decode_tftp(data: bytes) -> TftpPacket:
    """Decode a TFTP packet; raises :class:`PacketError` on malformed input."""
    if len(data) < 2:
        raise PacketError("TFTP packet too short")
    (opcode,) = struct.unpack("!H", data[:2])
    if opcode in (int(TftpOpcode.WRQ), int(TftpOpcode.RRQ)):
        body = data[2:]
        parts = body.split(b"\x00")
        if len(parts) < 2:
            raise PacketError("malformed TFTP request")
        filename = parts[0].decode("ascii", errors="replace")
        mode = parts[1].decode("ascii", errors="replace")
        if opcode == int(TftpOpcode.RRQ):
            # Represent RRQs so the server can reject them explicitly.
            return TftpError(
                code=int(TftpErrorCode.ILLEGAL_OPERATION),
                message=f"read requests are not supported (file {filename!r})",
            )
        return TftpWriteRequest(filename=filename, mode=mode)
    if opcode == int(TftpOpcode.DATA):
        if len(data) < 4:
            raise PacketError("malformed TFTP DATA packet")
        (block,) = struct.unpack("!H", data[2:4])
        return TftpData(block=block, data=data[4:])
    if opcode == int(TftpOpcode.ACK):
        if len(data) < 4:
            raise PacketError("malformed TFTP ACK packet")
        (block,) = struct.unpack("!H", data[2:4])
        return TftpAck(block=block)
    if opcode == int(TftpOpcode.ERROR):
        if len(data) < 5:
            raise PacketError("malformed TFTP ERROR packet")
        (code,) = struct.unpack("!H", data[2:4])
        message = data[4:].split(b"\x00")[0].decode("ascii", errors="replace")
        return TftpError(code=code, message=message)
    raise PacketError(f"unsupported TFTP opcode: {opcode}")


SendCallable = Callable[[bytes, Tuple], None]
FileCallback = Callable[[str, bytes], None]


class _WriteSession:
    """State for one in-progress write transfer on the server side."""

    def __init__(self, filename: str) -> None:
        self.filename = filename
        self.expected_block = 1
        self.received = bytearray()
        self.complete = False


class TftpServer:
    """A write-only, octet-mode-only TFTP server.

    Args:
        send: callable used to transmit a raw TFTP payload back to a remote
            endpoint; the remote identifier is whatever the transport passed
            to :meth:`handle_datagram`.
        on_file: called with ``(filename, data)`` once a transfer completes.
    """

    def __init__(self, send: SendCallable, on_file: FileCallback) -> None:
        self._send = send
        self._on_file = on_file
        self._sessions: Dict[Tuple, _WriteSession] = {}
        # Statistics useful to tests and benchmarks.
        self.transfers_completed = 0
        self.requests_rejected = 0

    def handle_datagram(self, payload: bytes, remote: Tuple) -> None:
        """Process one UDP payload from ``remote``."""
        try:
            packet = decode_tftp(payload)
        except PacketError:
            self.requests_rejected += 1
            self._send(
                TftpError(int(TftpErrorCode.NOT_DEFINED), "malformed packet").encode(),
                remote,
            )
            return
        if isinstance(packet, TftpWriteRequest):
            self._handle_wrq(packet, remote)
        elif isinstance(packet, TftpData):
            self._handle_data(packet, remote)
        elif isinstance(packet, TftpError):
            # Either a client-side error, or a decoded RRQ that we refuse.
            self.requests_rejected += 1
            self._send(packet.encode(), remote)
        # ACKs are ignored by a write-only server.

    def _handle_wrq(self, request: TftpWriteRequest, remote: Tuple) -> None:
        if request.mode.lower() != "octet":
            self.requests_rejected += 1
            self._send(
                TftpError(
                    int(TftpErrorCode.ILLEGAL_OPERATION),
                    "only binary (octet) transfers are supported",
                ).encode(),
                remote,
            )
            return
        self._sessions[remote] = _WriteSession(request.filename)
        self._send(TftpAck(0).encode(), remote)

    def _handle_data(self, packet: TftpData, remote: Tuple) -> None:
        session = self._sessions.get(remote)
        if session is None or session.complete:
            self._send(
                TftpError(
                    int(TftpErrorCode.ILLEGAL_OPERATION), "no transfer in progress"
                ).encode(),
                remote,
            )
            return
        if packet.block == session.expected_block:
            session.received.extend(packet.data)
            session.expected_block += 1
        # Acknowledge the latest in-order block (duplicates re-ACKed).
        self._send(TftpAck(packet.block).encode(), remote)
        if packet.block == session.expected_block - 1 and len(packet.data) < BLOCK_SIZE:
            session.complete = True
            self.transfers_completed += 1
            data = bytes(session.received)
            del self._sessions[remote]
            self._on_file(session.filename, data)


class TftpClient:
    """A TFTP client that writes one file to a server.

    The client is event-driven: construct it, call :meth:`start`, then feed
    it every UDP payload arriving from the server via :meth:`handle_datagram`.
    ``on_complete`` fires with ``True`` on success, ``False`` on error.
    """

    def __init__(
        self,
        send: SendCallable,
        filename: str,
        data: bytes,
        remote: Tuple,
        on_complete: Optional[Callable[[bool], None]] = None,
    ) -> None:
        self._send = send
        self.filename = filename
        self.data = data
        self.remote = remote
        self._on_complete = on_complete
        self._next_block = 1
        self._finished = False
        self._started = False

    @property
    def finished(self) -> bool:
        """Whether the transfer has completed (successfully or not)."""
        return self._finished

    def start(self) -> None:
        """Send the write request."""
        if self._started:
            return
        self._started = True
        self._send(TftpWriteRequest(self.filename).encode(), self.remote)

    def handle_datagram(self, payload: bytes, remote: Tuple) -> None:
        """Process a server response (ACK or ERROR)."""
        if self._finished:
            return
        try:
            packet = decode_tftp(payload)
        except PacketError:
            return
        if isinstance(packet, TftpError):
            self._finish(False)
            return
        if not isinstance(packet, TftpAck):
            return
        if packet.block != self._next_block - 1:
            return  # Stale or out-of-order ACK; ignore.
        offset = (self._next_block - 1) * BLOCK_SIZE
        if offset > len(self.data) or (
            offset == len(self.data) and self._sent_final_full_block(offset)
        ):
            self._finish(True)
            return
        block_data = self.data[offset : offset + BLOCK_SIZE]
        self._send(TftpData(self._next_block, block_data).encode(), self.remote)
        self._next_block += 1
        if len(block_data) < BLOCK_SIZE:
            # The final (short) block was just sent; we complete on its ACK.
            pass

    def _sent_final_full_block(self, offset: int) -> bool:
        # If the file length is an exact multiple of the block size, a final
        # zero-length DATA block must still be sent to terminate the transfer.
        return len(self.data) % BLOCK_SIZE != 0 or offset != len(self.data)

    def _finish(self, success: bool) -> None:
        self._finished = True
        if self._on_complete is not None:
            self._on_complete(success)
