"""The ping measurement tool (Section 7.2, Figure 9).

"We measured latency with the ping facility for generating ICMP ECHOs, using
various packet sizes to generate frames on the LANs."

:class:`PingRunner` sends a train of ICMP echo requests from one host to
another and records the round-trip time of each reply.  The payload size
parameter plays the role of ping's packet-size option.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.lan.host import Host
from repro.measurement.stats import summarize
from repro.netstack.icmp import IcmpMessage
from repro.netstack.ip import IPv4Address
from repro.netstack.stack import MAX_ICMP_PAYLOAD
from repro.sim.engine import Simulator
from repro.sim.trace import CounterWindow


@dataclass
class PingResult:
    """The outcome of one ping trial.

    Attributes:
        payload_size: ICMP data bytes per echo.
        sent: number of requests sent.
        received: number of replies received.
        rtts: round-trip times, in seconds, in arrival order.
        bridge_forwards: frames forwarded by active nodes during the trial,
            read from the trace hub's live counters (0 on unbridged paths,
            and also 0 if tracing is disabled or the ``node.forward``
            category is gated off — the counters only see captured records).
    """

    payload_size: int
    sent: int = 0
    received: int = 0
    rtts: List[float] = field(default_factory=list)
    bridge_forwards: int = 0

    @property
    def loss_fraction(self) -> float:
        """Fraction of requests that were never answered."""
        if self.sent == 0:
            return 0.0
        return 1.0 - self.received / self.sent

    def summary(self) -> Dict[str, float]:
        """Summary statistics of the RTT sample (seconds).

        Total for zero-delivery trials: a train that lost every echo (the
        link was down) summarizes to all-zero statistics rather than
        raising on the empty sample.
        """
        return summarize(self.rtts)

    def mean_rtt_ms(self) -> float:
        """Mean round-trip time in milliseconds (``0.0`` when nothing came back)."""
        return self.summary()["mean"] * 1000.0


class PingRunner:
    """Send ICMP echoes from ``source`` to ``destination_ip`` and collect RTTs.

    Args:
        sim: the simulator everything runs on.
        source: the pinging host.
        destination_ip: the target address (its host's stack answers echoes).
        payload_size: ICMP data bytes (clamped to the single-frame maximum,
            since the minimal IP layer does not fragment).
        count: number of echo requests.
        interval: seconds between requests (classic ping uses 1 s; the
            latency benchmark uses a shorter interval to keep runs quick).
        identifier: ICMP echo identifier distinguishing concurrent runners.
    """

    def __init__(
        self,
        sim: Simulator,
        source: Host,
        destination_ip: IPv4Address,
        payload_size: int,
        count: int = 10,
        interval: float = 0.2,
        identifier: int = 0x1234,
    ) -> None:
        self.sim = sim
        self.source = source
        self.destination_ip = destination_ip
        self.payload_size = max(0, min(int(payload_size), MAX_ICMP_PAYLOAD))
        self.count = count
        self.interval = interval
        self.identifier = identifier
        self.result = PingResult(payload_size=self.payload_size)
        self._send_times: Dict[int, float] = {}
        self._installed = False

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def start(self, at_time: float = 0.0) -> None:
        """Schedule the echo train to start at ``at_time`` (simulated seconds)."""
        if not self._installed:
            self.source.stack.add_icmp_handler(self._on_icmp)
            self._installed = True
        # The send timers ride the *source host's* own engine, not the run
        # facade: everything a send touches (the host stack, its CPU queue,
        # the runner's tallies — which the reply handler already mutates from
        # the host's context) lives on the host's home shard, so on a
        # sharded fabric the facade's control ring — a global barrier per
        # event under relaxed sync — would synchronize every shard 4x per
        # second for a callback only one shard can observe.  On a single
        # engine ``source.sim`` is the same simulator, and under strict sync
        # the shared ``(time, seq)`` order makes the ring choice invisible.
        home = self.source.sim
        for index in range(self.count):
            when = at_time + index * self.interval
            home.schedule_at(
                when, lambda seq=index: self._send(seq), label="ping.send"
            )

    def run(self, start_time: float, settle_time: float = 2.0) -> PingResult:
        """Start at ``start_time``, run the simulator until the train completes."""
        self.start(start_time)
        # Live-counter window: O(1) reads at the end of the trial instead of
        # a post-hoc scan over the whole trace.
        window = CounterWindow(self.sim.trace)
        end_time = start_time + self.count * self.interval + settle_time
        self.sim.run_until(end_time)
        self.result.bridge_forwards = window.count(category="node.forward")
        return self.result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _send(self, sequence: int) -> None:
        payload = bytes((sequence + index) & 0xFF for index in range(self.payload_size))
        self._send_times[sequence] = self.sim.now
        self.result.sent += 1
        self.source.ping(self.destination_ip, self.identifier, sequence, payload)

    def _on_icmp(self, message: IcmpMessage, source_ip: IPv4Address) -> None:
        if not message.is_reply or message.identifier != self.identifier:
            return
        if source_ip != self.destination_ip:
            return
        sent_at = self._send_times.pop(message.sequence, None)
        if sent_at is None:
            return
        self.result.received += 1
        self.result.rtts.append(self.sim.now - sent_at)


def ping_sweep(
    sim: Simulator,
    source: Host,
    destination_ip: IPv4Address,
    payload_sizes: List[int],
    start_time: float,
    count: int = 10,
    interval: float = 0.2,
) -> Dict[int, PingResult]:
    """Run one ping trial per payload size, back to back, and return results by size."""
    results: Dict[int, PingResult] = {}
    when = start_time
    for index, size in enumerate(payload_sizes):
        runner = PingRunner(
            sim,
            source,
            destination_ip,
            payload_size=size,
            count=count,
            interval=interval,
            identifier=0x1000 + index,
        )
        results[size] = runner.run(start_time=when)
        when = sim.now + 0.5
    return results
