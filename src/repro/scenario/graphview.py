"""A queryable graph view of a scenario's topology, plus placement analysis.

The partitioner (:func:`repro.scenario.compile.plan_partition`) consumes a
spec and produces shard assignments, a cut set and a lookahead bound — but
its inputs and the structural properties that drive them (attachment
weights, connectivity, single points of failure) were never visible outside
the compile path.  This module surfaces them:

* :class:`TopologyGraph` — the spec's station/segment attachment graph as
  an explicit adjacency structure with connectivity queries (components,
  articulation points, cycle rank, per-segment partitioner weights).
* :func:`analyze_placement` — a :class:`PlacementReport` for a spec under a
  given partition: cut-segment count, per-shard weight balance, the
  lookahead bound, and which cut segments are articulation points (a cut on
  a single point of failure couples the shards *and* the spanning tree).

Both are pure functions of the spec — no network is compiled — so the
scenario fuzzer and the docs tooling can reason about generated topologies
cheaply, and a human can ask "where would this spec cut at 4 shards?"
without running anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple, Union

from repro.scenario.compile import PartitionPlan, plan_partition
from repro.scenario.spec import PartitionSpec, ScenarioSpec


@dataclass(frozen=True)
class TopologyGraph:
    """The attachment graph of a scenario: segments and stations as nodes.

    An edge joins a station (host or device) to every segment one of its
    NICs attaches to.  The graph is bipartite by construction — stations
    only touch segments — which is exactly the shape the partitioner and
    the spanning tree operate on.

    Attributes:
        spec: the spec the view was built from.
        segments: segment names, in declaration order.
        stations: host and device names, in declaration order.
        adjacency: node name -> sorted tuple of neighbour names.
    """

    spec: ScenarioSpec
    segments: Tuple[str, ...]
    stations: Tuple[str, ...]
    adjacency: Dict[str, Tuple[str, ...]] = field(hash=False)

    @classmethod
    def from_spec(cls, spec: ScenarioSpec) -> "TopologyGraph":
        """Build the attachment graph for ``spec``."""
        neighbours: Dict[str, List[str]] = {
            segment.name: [] for segment in spec.segments
        }
        stations: List[str] = []
        for host in spec.hosts:
            stations.append(host.name)
            neighbours[host.name] = [host.segment]
            neighbours[host.segment].append(host.name)
        for device in spec.devices:
            stations.append(device.name)
            attached = []
            for port in device.ports:
                # Parallel ports onto one segment add capacity, not edges.
                if port.segment not in attached:
                    attached.append(port.segment)
                    neighbours[port.segment].append(device.name)
            neighbours[device.name] = attached
        return cls(
            spec=spec,
            segments=tuple(segment.name for segment in spec.segments),
            stations=tuple(stations),
            adjacency={
                name: tuple(sorted(adjacent))
                for name, adjacent in neighbours.items()
            },
        )

    # -- basic queries -------------------------------------------------------

    def neighbors(self, name: str) -> Tuple[str, ...]:
        """Adjacent node names (stations of a segment, segments of a station)."""
        try:
            return self.adjacency[name]
        except KeyError as exc:
            raise KeyError(
                f"no node {name!r} in scenario {self.spec.name!r}"
            ) from exc

    def degree(self, name: str) -> int:
        """Number of distinct neighbours."""
        return len(self.neighbors(name))

    @property
    def n_edges(self) -> int:
        """Distinct station-segment attachment edges."""
        return sum(len(adjacent) for adjacent in self.adjacency.values()) // 2

    def segment_weight(self, name: str) -> int:
        """The partitioner's attachment weight: 1 + hosts + device ports.

        Matches :func:`~repro.scenario.compile.plan_partition` exactly
        (parallel ports *do* count here — they carry service load even
        though they add no graph edge).
        """
        if name not in self.segments:
            raise KeyError(f"no segment {name!r} in scenario {self.spec.name!r}")
        weight = 1
        for host in self.spec.hosts:
            if host.segment == name:
                weight += 1
        for device in self.spec.devices:
            for port in device.ports:
                if port.segment == name:
                    weight += 1
        return weight

    # -- connectivity --------------------------------------------------------

    def connected_components(self) -> List[Set[str]]:
        """Connected components, each a set of node names.

        Ordered by the smallest declaration-order node they contain, so the
        result is deterministic.
        """
        seen: Set[str] = set()
        components: List[Set[str]] = []
        for start in (*self.segments, *self.stations):
            if start in seen:
                continue
            component = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for neighbour in self.adjacency[node]:
                    if neighbour not in component:
                        component.add(neighbour)
                        frontier.append(neighbour)
            seen |= component
            components.append(component)
        return components

    @property
    def cycle_rank(self) -> int:
        """Independent cycles: ``edges - nodes + components``.

        Zero means the topology is a forest (no redundant paths — a link
        failure partitions it); positive means the spanning tree has real
        work to do.
        """
        n_nodes = len(self.segments) + len(self.stations)
        return self.n_edges - n_nodes + len(self.connected_components())

    def articulation_points(self) -> Tuple[str, ...]:
        """Nodes whose removal disconnects their component, sorted.

        A segment in this set is a single point of failure for the data
        path; a device in it is a bridge (in the graph sense) the spanning
        tree cannot route around.  Computed with an iterative Tarjan
        low-point walk, so deep chains do not recurse.
        """
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        parent: Dict[str, str] = {}
        points: Set[str] = set()
        counter = 0
        for root in (*self.segments, *self.stations):
            if root in index:
                continue
            root_children = 0
            stack: List[Tuple[str, int]] = [(root, 0)]
            while stack:
                node, child_pos = stack[-1]
                if child_pos == 0:
                    index[node] = low[node] = counter
                    counter += 1
                adjacent = self.adjacency[node]
                if child_pos < len(adjacent):
                    stack[-1] = (node, child_pos + 1)
                    neighbour = adjacent[child_pos]
                    if neighbour not in index:
                        parent[neighbour] = node
                        if node == root:
                            root_children += 1
                        stack.append((neighbour, 0))
                    elif parent.get(node) != neighbour:
                        low[node] = min(low[node], index[neighbour])
                else:
                    stack.pop()
                    up = parent.get(node)
                    if up is not None:
                        low[up] = min(low[up], low[node])
                        if up != root and low[node] >= index[up]:
                            points.add(up)
            if root_children > 1:
                points.add(root)
        return tuple(sorted(points))


@dataclass(frozen=True)
class PlacementReport:
    """The partitioner's inputs and outputs for one spec × partition.

    Attributes:
        scenario: the spec's name.
        n_shards: shard engines the plan uses (1 = single engine).
        assignments: component name -> shard index (the full placement).
        cut_segments: segments whose stations span shards, in declaration
            order.
        cut_count: ``len(cut_segments)``.
        cut_articulation_points: the cut segments that are also articulation
            points of the topology graph — shard-coupling links with no
            redundant path around them.
        lookahead_ns: the conservative window bound (``None`` when the
            shards are independent or the plan is single-engine).
        shard_weights: summed segment attachment weight per shard.
        weight_imbalance: max shard weight over the ideal (total / shards);
            1.0 is perfect balance.
        components: connected components in the topology graph.
        cycle_rank: independent cycles (0 = loop-free).
        articulation_points: all articulation points, sorted.
    """

    scenario: str
    n_shards: int
    assignments: Dict[str, int] = field(hash=False)
    cut_segments: Tuple[str, ...] = ()
    cut_count: int = 0
    cut_articulation_points: Tuple[str, ...] = ()
    lookahead_ns: object = None
    shard_weights: Tuple[int, ...] = ()
    weight_imbalance: float = 1.0
    components: int = 1
    cycle_rank: int = 0
    articulation_points: Tuple[str, ...] = ()

    def describe(self) -> str:
        """A compact multi-line human-readable rendering."""
        lines = [
            f"scenario {self.scenario}: {self.n_shards} shard(s)",
            f"  shard weights: {list(self.shard_weights)} "
            f"(imbalance x{self.weight_imbalance:.2f})",
            f"  cut segments: {list(self.cut_segments)} "
            f"(lookahead {self.lookahead_ns} ns)",
            f"  graph: {self.components} component(s), "
            f"cycle rank {self.cycle_rank}, "
            f"articulation points {list(self.articulation_points)}",
        ]
        if self.cut_articulation_points:
            lines.append(
                "  warning: cut on single point(s) of failure: "
                f"{list(self.cut_articulation_points)}"
            )
        return "\n".join(lines)


def analyze_placement(
    spec: ScenarioSpec, partition: Union[int, PartitionSpec, PartitionPlan] = 1
) -> PlacementReport:
    """Analyze how ``spec`` places under ``partition`` — without compiling.

    ``partition`` is a shard count, a :class:`PartitionSpec`, or an existing
    :class:`PartitionPlan` (reuse the plan a run was actually compiled with).
    """
    if isinstance(partition, PartitionPlan):
        plan = partition
    else:
        plan = plan_partition(spec, partition)
    graph = TopologyGraph.from_spec(spec)
    weights = [0] * plan.n_shards
    for name in graph.segments:
        weights[plan.assignments[name]] += graph.segment_weight(name)
    total = sum(weights)
    ideal = total / plan.n_shards if plan.n_shards else 1.0
    articulation = graph.articulation_points()
    return PlacementReport(
        scenario=spec.name,
        n_shards=plan.n_shards,
        assignments=dict(plan.assignments),
        cut_segments=plan.cut_segments,
        cut_count=len(plan.cut_segments),
        cut_articulation_points=tuple(
            name for name in plan.cut_segments if name in articulation
        ),
        lookahead_ns=plan.lookahead_ns,
        shard_weights=tuple(weights),
        weight_imbalance=(max(weights) / ideal) if total else 1.0,
        components=len(graph.connected_components()),
        cycle_rank=graph.cycle_rank,
        articulation_points=articulation,
    )
