"""The fault & dynamics subsystem: scripted link/port failures, loss models.

Active Bridging's central claims are about a network *reacting to change* —
spanning-tree reconvergence after a link failure, live protocol transitions —
and this package is what lets every scenario in the catalog fail, flap and
degrade mid-run, deterministically:

* :class:`~repro.faults.spec.FaultSpec` — one scheduled fault as pure data
  (the ``faults=`` axis of :class:`~repro.scenario.spec.ScenarioSpec`);
* :class:`~repro.faults.timeline.FaultTimeline` — resolves specs against a
  live network and schedules them through the simulator control path, so a
  timeline is bit-identical under the single engine, strict sharding and
  relaxed canonical-merge execution;
* :class:`~repro.faults.models.FrameLossModel` — seeded per-segment frame
  loss / corruption, consulted by the LAN layer once per serviced frame.

The convergence measurements live in
:mod:`repro.measurement.convergence` (:class:`ConvergenceProbe`).
"""

from repro.faults.models import FrameLossModel, derive_seed
from repro.faults.spec import (
    FAULT_KINDS,
    FaultError,
    FaultSpec,
    NODE_KINDS,
    PORT_KINDS,
    SEGMENT_KINDS,
)
from repro.faults.timeline import FaultTimeline

__all__ = [
    "FAULT_KINDS",
    "SEGMENT_KINDS",
    "PORT_KINDS",
    "NODE_KINDS",
    "FaultError",
    "FaultSpec",
    "FaultTimeline",
    "FrameLossModel",
    "derive_seed",
]
