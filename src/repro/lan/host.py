"""End hosts.

A :class:`Host` models one of the Linux PCs in the paper's testbed: a single
NIC, a small protocol stack (:class:`~repro.netstack.stack.HostStack`) and a
CPU on which protocol processing costs are charged.  The measurement tools
(ping, ttcp) run "on" hosts by calling their stack API and reading the
simulator trace.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.costs.cpu import CpuQueue
from repro.costs.model import CostModel
from repro.ethernet.frame import EthernetFrame
from repro.ethernet.mac import MacAddress
from repro.lan.nic import NetworkInterface
from repro.lan.segment import Segment
from repro.netstack.ip import IPv4Address
from repro.netstack.stack import HostStack
from repro.sim.engine import Simulator


class Host:
    """An end station with one NIC, a protocol stack and a CPU cost model.

    Args:
        sim: owning simulator.
        name: host name used in traces (e.g. ``"host1"``).
        mac: the NIC's MAC address.
        ip: the host's IPv4 address.
        cost_model: software cost constants; ``None`` selects the calibrated
            defaults.
    """

    # Population-scale fleets allocate tens of thousands of hosts; slots
    # drop the per-instance __dict__ from the whole station object chain.
    __slots__ = ("sim", "name", "costs", "nic", "cpu", "stack", "_raw_listeners")

    def __init__(
        self,
        sim: Simulator,
        name: str,
        mac: MacAddress,
        ip: IPv4Address,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.costs = cost_model if cost_model is not None else CostModel()
        self.nic = NetworkInterface(sim, f"{name}.eth0", mac)
        self.cpu = CpuQueue(sim, f"{name}.cpu")
        self.stack = HostStack(name=name, mac=mac, ip=ip, send_frame=self._stack_send)
        # segment_local: the stack path defers every reaction through the
        # CPU queue (see _nic_receive); raw listeners are observation taps.
        self.nic.set_handler(self._nic_receive, segment_local=True)
        self._raw_listeners: list[Callable[[EthernetFrame], None]] = []

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    @property
    def mac(self) -> MacAddress:
        """The host NIC's MAC address."""
        return self.nic.mac

    @property
    def ip(self) -> IPv4Address:
        """The host's IPv4 address."""
        return self.stack.ip

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------

    def attach(self, segment: Segment) -> None:
        """Plug the host's NIC into a LAN segment."""
        self.nic.attach(segment)

    # ------------------------------------------------------------------
    # Data path (cost accounting happens here)
    # ------------------------------------------------------------------

    def _stack_send(self, frame: EthernetFrame) -> None:
        """Protocol stack wants to transmit: charge CPU cost, then hit the NIC."""
        cost = self.costs.host_frame_cost_total(frame.frame_length)
        self.cpu.submit(cost, lambda: self.nic.send(frame))

    def send_raw_frame(self, frame: EthernetFrame, charge_cost: bool = True) -> None:
        """Send an arbitrary Ethernet frame from this host.

        Used by workloads that bypass IP (the ttcp bulk generator can run over
        raw measurement frames, and the agility probe injects prebuilt
        frames).
        """
        if charge_cost:
            cost = self.costs.host_frame_cost_total(frame.frame_length)
            self.cpu.submit(cost, lambda: self.nic.send(frame))
        else:
            self.nic.send(frame)

    def _nic_receive(self, _nic: NetworkInterface, frame: EthernetFrame) -> None:
        """NIC accepted a frame: charge receive cost, then run the stack."""
        for listener in list(self._raw_listeners):
            listener(frame)
        cost = self.costs.host_frame_cost_total(frame.frame_length)
        self.cpu.submit(cost, lambda: self.stack.handle_frame(frame))

    def add_raw_listener(self, listener: Callable[[EthernetFrame], None]) -> None:
        """Register a callback that sees every frame the NIC accepts (pre-stack)."""
        self._raw_listeners.append(listener)

    # ------------------------------------------------------------------
    # Convenience wrappers over the stack
    # ------------------------------------------------------------------

    def ping(
        self, destination: IPv4Address, identifier: int, sequence: int, payload: bytes
    ) -> None:
        """Send one ICMP echo request (the reply arrives via the stack)."""
        self.stack.send_icmp_echo(destination, identifier, sequence, payload)

    def send_udp(
        self,
        destination: IPv4Address,
        destination_port: int,
        source_port: int,
        payload: bytes,
    ) -> None:
        """Send one UDP datagram."""
        self.stack.send_udp(destination, destination_port, source_port, payload)

    def bind_udp(self, port: int, handler: Callable[[bytes, Tuple], None]) -> None:
        """Bind a UDP port on this host."""
        self.stack.bind_udp(port, handler)

    def statistics(self) -> dict:
        """Combined NIC and IP counters for this host."""
        stats = self.nic.statistics()
        stats.update(
            {
                "ip_packets_sent": self.stack.ip_packets_sent,
                "ip_packets_received": self.stack.ip_packets_received,
                "ip_packets_dropped": self.stack.ip_packets_dropped,
            }
        )
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.name!r}, {self.ip}, {self.mac})"
