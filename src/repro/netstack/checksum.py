"""The Internet checksum (RFC 1071).

Used by the minimal IP, UDP and ICMP implementations.  The algorithm is the
classic ones'-complement sum of 16-bit words with end-around carry.
"""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit Internet checksum of ``data``.

    Odd-length input is padded with a trailing zero byte, per RFC 1071.

    Returns:
        The checksum as an unsigned 16-bit integer.  A packet whose checksum
        field is included in ``data`` sums to zero when intact.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for index in range(0, len(data), 2):
        word = (data[index] << 8) | data[index + 1]
        total += word
        # Fold the carry back in as it appears to keep the sum bounded.
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """Return True if ``data`` (which includes its checksum field) verifies."""
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for index in range(0, len(data), 2):
        word = (data[index] << 8) | data[index + 1]
        total += word
        total = (total & 0xFFFF) + (total >> 16)
    return total == 0xFFFF
