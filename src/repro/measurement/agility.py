"""The function-agility experiment (Section 7.5).

"The function-agility of a system is the latency for a functional
transformation. ... We performed a final test using a ring shaped network.
The HP Netserver acted as an end-node to take measurements.  It was
configured with two Ethernet cards, eth0 and eth1.  Attached between these
cards were three of the 166 MHz Pentiums ... each running the bridge software
with the control switchlet to allow automatic switch-over.

A test program running on the HP sent out an 802.1D spanning tree packet on
eth0 and then waits to see one on eth1.  (This indicates that each of the
bridges in the path between eth0 and eth1 have switched to the "new"
algorithm.)  The program then starts two threads one of which sends out a
prebuilt ICMP ECHO on eth0, then delays for 1 second, and repeats.  The other
thread reads packets on eth1 until it sees one of these pings."

The measured answers in the paper: start-to-IEEE ≈ 0.056 s (reconfiguration
is fast), start-to-ping ≈ 30.1 s (dominated by the 2 x 15 s forward-delay
timers).  :class:`AgilityProbe` is that test program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ethernet.ethertype import EtherType
from repro.ethernet.frame import EthernetFrame
from repro.ethernet.mac import ALL_BRIDGES_MULTICAST, MacAddress
from repro.lan.nic import NetworkInterface
from repro.lan.segment import Segment
from repro.measurement.setups import RingSetup
from repro.netstack.icmp import IcmpMessage, IcmpType
from repro.netstack.ip import IPv4Address, IPv4Packet, IpProtocol
from repro.sim.engine import Simulator
from repro.switchlets.bpdu import ConfigBpdu

#: ICMP identifier marking the probe's prebuilt echo frames.
PROBE_IDENTIFIER = 0xA617

#: MAC addresses of the probe's two cards.
PROBE_ETH0_MAC = MacAddress.from_string("02:a6:17:00:00:01")
PROBE_ETH1_MAC = MacAddress.from_string("02:a6:17:00:00:02")


@dataclass
class AgilityResult:
    """The two latencies of the Section 7.5 experiment.

    Attributes:
        start_time: when the probe injected the 802.1D packet.
        ieee_seen_at: when an 802.1D packet was first seen on the far card.
        ping_seen_at: when one of the probe's pings was first seen there.
    """

    start_time: float
    ieee_seen_at: Optional[float] = None
    ping_seen_at: Optional[float] = None

    @property
    def start_to_ieee(self) -> Optional[float]:
        """Seconds from injection to the far-side 802.1D packet (None if never)."""
        if self.ieee_seen_at is None:
            return None
        return self.ieee_seen_at - self.start_time

    @property
    def start_to_ping(self) -> Optional[float]:
        """Seconds from injection to the far-side ping (None if never)."""
        if self.ping_seen_at is None:
            return None
        return self.ping_seen_at - self.start_time


class AgilityProbe:
    """The two-NIC measurement end-node of Section 7.5.

    Args:
        sim: the simulator.
        left_segment: the segment ``eth0`` attaches to (where packets are
            injected).
        right_segment: the segment ``eth1`` attaches to (where packets are
            awaited).
        ping_interval: seconds between prebuilt echoes (1 s in the paper).
    """

    def __init__(
        self,
        sim: Simulator,
        left_segment: Segment,
        right_segment: Segment,
        ping_interval: float = 1.0,
    ) -> None:
        self.sim = sim
        self.ping_interval = ping_interval
        self.eth0 = NetworkInterface(sim, "probe.eth0", PROBE_ETH0_MAC)
        self.eth1 = NetworkInterface(sim, "probe.eth1", PROBE_ETH1_MAC)
        self.eth0.attach(left_segment)
        self.eth1.attach(right_segment)
        self.eth1.set_promiscuous(True)
        # segment_local: the far-side watcher only records timestamps and
        # emits trace records; it never transmits from delivery context.
        self.eth1.set_handler(self._on_far_frame, segment_local=True)
        self.result: Optional[AgilityResult] = None
        self.pings_sent = 0
        self._pinging = False

    @classmethod
    def for_ring(cls, ring: RingSetup, ping_interval: float = 1.0) -> "AgilityProbe":
        """Attach a probe to the two end segments of a ring setup."""
        return cls(
            ring.network.sim,
            ring.left_segment,
            ring.right_segment,
            ping_interval=ping_interval,
        )

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def start(self, at_time: float) -> None:
        """Schedule the experiment to begin at ``at_time`` (after the old protocol settles)."""
        self.sim.schedule_at(at_time, self._inject, label="agility.inject")

    def run(self, start_time: float, deadline: float = 120.0) -> AgilityResult:
        """Run the experiment and return its result (fields ``None`` if unseen)."""
        self.start(start_time)
        self.sim.run_until(start_time + deadline)
        if self.result is None:
            self.result = AgilityResult(start_time=start_time)
        return self.result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _inject(self) -> None:
        self.result = AgilityResult(start_time=self.sim.now)
        self.sim.trace.emit("probe", "agility.inject", None)
        self.eth0.send(self._build_trigger_bpdu())
        self._pinging = True
        self._send_ping()

    def _build_trigger_bpdu(self) -> EthernetFrame:
        # A deliberately *inferior* BPDU (worst possible priority): it
        # triggers the control switchlets (any packet on the All-Bridges
        # address does) without distorting the tree the new protocol computes.
        bpdu = ConfigBpdu(
            root_priority=0xFFFF,
            root_mac=PROBE_ETH0_MAC.octets,
            root_path_cost=0,
            bridge_priority=0xFFFF,
            bridge_mac=PROBE_ETH0_MAC.octets,
            port_id=1,
        )
        return EthernetFrame(
            destination=ALL_BRIDGES_MULTICAST,
            source=PROBE_ETH0_MAC,
            ethertype=int(EtherType.STP_8021D),
            payload=bpdu.encode(),
        )

    def _build_ping_frame(self, sequence: int) -> EthernetFrame:
        echo = IcmpMessage(
            icmp_type=int(IcmpType.ECHO_REQUEST),
            identifier=PROBE_IDENTIFIER,
            sequence=sequence & 0xFFFF,
            payload=b"agility-probe",
        )
        packet = IPv4Packet(
            source=IPv4Address.from_string("10.99.0.1"),
            destination=IPv4Address.from_string("10.99.0.2"),
            protocol=int(IpProtocol.ICMP),
            payload=echo.encode(),
        )
        # Addressed to the far card's unicast MAC: the bridges never learn it
        # (the far card never transmits), so the frame is flooded across the
        # chain once forwarding resumes.
        return EthernetFrame(
            destination=PROBE_ETH1_MAC,
            source=PROBE_ETH0_MAC,
            ethertype=int(EtherType.IPV4),
            payload=packet.encode(),
        )

    def _send_ping(self) -> None:
        if not self._pinging:
            return
        if self.result is not None and self.result.ping_seen_at is not None:
            self._pinging = False
            return
        self.eth0.send(self._build_ping_frame(self.pings_sent))
        self.pings_sent += 1
        self.sim.schedule(self.ping_interval, self._send_ping, label="agility.ping")

    def _on_far_frame(self, _nic: NetworkInterface, frame: EthernetFrame) -> None:
        if self.result is None:
            return
        if (
            self.result.ieee_seen_at is None
            and int(frame.ethertype) == int(EtherType.STP_8021D)
            and frame.destination == ALL_BRIDGES_MULTICAST
        ):
            self.result.ieee_seen_at = self.sim.now
            self.sim.trace.emit(
                "probe", "agility.ieee_seen", {"latency": self.result.start_to_ieee}
            )
            return
        if self.result.ping_seen_at is None and int(frame.ethertype) == int(EtherType.IPV4):
            if self._is_probe_ping(frame):
                self.result.ping_seen_at = self.sim.now
                self.sim.trace.emit(
                    "probe", "agility.ping_seen", {"latency": self.result.start_to_ping}
                )
                self._pinging = False

    @staticmethod
    def _is_probe_ping(frame: EthernetFrame) -> bool:
        try:
            packet = IPv4Packet.decode(frame.payload)
            if packet.protocol != int(IpProtocol.ICMP):
                return False
            echo = IcmpMessage.decode(packet.payload)
        except Exception:  # noqa: BLE001 - any malformed frame is simply not ours
            return False
        return echo.identifier == PROBE_IDENTIFIER
