"""A frame free-list: recycle blast/request frames instead of reallocating.

Population-scale traffic synthesis sends the same *shaped* frame over and
over: an on/off burst source emits thousands of identically sized filler
frames to one peer, a request client pads every request to the same
service request size.  :class:`EthernetFrame` is immutable, which turns
"free-list" into something even cheaper than recycling mutable buffers —
a frame already built for a ``(destination, source, ethertype, size)``
shape can simply be *reused*, payload buffer and all, with zero
construction cost and zero per-frame garbage.

Two layers, measured by the pool-hit counters the benchmark reports:

* :meth:`FramePool.filler` — shared immutable payload buffers by size,
  so two sources blasting 256-byte frames share one 256-byte ``bytes``
  object instead of allocating one per frame.
* :meth:`FramePool.frame` — whole prebuilt frames by shape, sharing the
  precomputed lengths and the padded-payload cache across every send.

Pooled frames carry a deterministic ``0x5A`` filler pattern rather than
seeded random bytes: burst filler is load, not data, and a shared buffer
cannot depend on any per-source random stream.  Sources that need
distinguishable payloads (request/response clients encoding headers)
build the header eagerly and append a pooled filler tail.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.ethernet.frame import EthernetFrame
from repro.ethernet.mac import MacAddress

#: Filler byte for pooled payload buffers.
FILLER_BYTE = 0x5A


class FramePool:
    """Reusable frames and payload buffers, keyed by shape.

    Attributes:
        hits: pooled objects served from cache (frames and fillers).
        misses: cache fills (first time a shape or size is seen).
    """

    __slots__ = ("hits", "misses", "_fillers", "_frames")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self._fillers: Dict[int, bytes] = {}
        self._frames: Dict[Tuple[MacAddress, MacAddress, int, int], EthernetFrame] = {}

    def filler(self, size: int) -> bytes:
        """A shared filler payload of ``size`` bytes."""
        buffer = self._fillers.get(size)
        if buffer is None:
            self.misses += 1
            buffer = bytes([FILLER_BYTE]) * size if size > 0 else b""
            self._fillers[size] = buffer
        else:
            self.hits += 1
        return buffer

    def frame(
        self,
        destination: MacAddress,
        source: MacAddress,
        ethertype: int,
        size: int,
    ) -> EthernetFrame:
        """A shared prebuilt frame for the given shape.

        The returned frame is immutable and safe to send any number of
        times from any number of call sites; its padded-payload cache
        warms once for the whole pool instead of once per send.
        """
        key = (destination, source, ethertype, size)
        frame = self._frames.get(key)
        if frame is None:
            self.misses += 1
            frame = EthernetFrame(
                destination=destination,
                source=source,
                ethertype=ethertype,
                payload=self.filler(size),
            )
            self._frames[key] = frame
        else:
            self.hits += 1
        return frame

    def statistics(self) -> Dict[str, int]:
        """Counter snapshot for reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "fillers": len(self._fillers),
            "frames": len(self._frames),
        }
