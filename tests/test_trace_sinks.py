"""Tests for the pluggable trace-sink architecture and the O(1) event queue.

Covers the refactored instrumentation hot path: per-category gating, lazy
detail rendering, the sink implementations (list / ring buffer / counting /
null), live-counter windows, the event queue's live counter and lazy
compaction, and the determinism guarantee (same seed, same trace) with sinks
swapped.
"""

from __future__ import annotations

import pytest

from repro.ethernet.ethertype import EtherType
from repro.ethernet.frame import EthernetFrame
from repro.ethernet.mac import MacAddress
from repro.lan.nic import NetworkInterface
from repro.lan.segment import Segment
from repro.measurement.ping import PingRunner
from repro.measurement.setups import build_bridged_pair
from repro.sim.engine import Simulator
from repro.sim.events import EventQueue
from repro.sim.trace import (
    CounterWindow,
    CountingSink,
    ListSink,
    NullSink,
    RingBufferSink,
    TraceRecorder,
)


def run_short_ping(trace_sinks=None, seed=11):
    """A short end-to-end ping through the active bridge (no spanning tree)."""
    setup = build_bridged_pair(
        seed=seed, include_spanning_tree=False, trace_sinks=trace_sinks
    )
    runner = PingRunner(
        setup.network.sim,
        setup.left,
        setup.right.ip,
        payload_size=64,
        count=4,
        interval=0.05,
    )
    result = runner.run(start_time=setup.ready_time)
    return setup, result


# ---------------------------------------------------------------------------
# Gating
# ---------------------------------------------------------------------------


class TestCategoryGating:
    def test_disabled_category_suppresses_sinks_and_listeners(self, sim):
        seen = []
        sim.trace.add_listener(lambda record: seen.append(record.category))
        sim.trace.disable_category("noise")
        sim.trace.record("a", "noise")
        sim.trace.record("a", "signal")
        assert seen == ["signal"]
        assert sim.trace.count(category="noise") == 0
        assert sim.trace.count(category="signal") == 1
        assert len(sim.trace.filter(category="noise")) == 0

    def test_reenable_category(self, sim):
        sim.trace.disable_category("x")
        sim.trace.record("a", "x")
        sim.trace.enable_category("x")
        sim.trace.record("a", "x")
        assert sim.trace.count(category="x") == 1

    def test_wants_reflects_gating(self, sim):
        assert sim.trace.wants("anything")
        sim.trace.disable_category("gated")
        assert not sim.trace.wants("gated")
        assert sim.trace.wants("other")
        sim.trace.disable()
        assert not sim.trace.wants("other")
        sim.trace.enable()
        assert sim.trace.wants("other")
        assert "gated" in sim.trace.disabled_categories

    def test_disabled_category_suppresses_producers(self, sim):
        segment = Segment(sim, "lan")
        a = NetworkInterface(sim, "a", MacAddress.locally_administered(1))
        b = NetworkInterface(sim, "b", MacAddress.locally_administered(2))
        a.attach(segment)
        b.attach(segment)
        sim.trace.disable_category("nic.tx")
        frame = EthernetFrame(
            destination=b.mac, source=a.mac, ethertype=int(EtherType.IPV4), payload=b"hi"
        )
        a.send(frame)
        sim.run()
        assert sim.trace.count(category="nic.tx") == 0
        assert sim.trace.count(category="nic.rx") == 1


# ---------------------------------------------------------------------------
# Lazy detail
# ---------------------------------------------------------------------------


class TestLazyDetail:
    def test_callable_detail_renders_on_first_access_only(self, sim):
        calls = []

        def render():
            calls.append(1)
            return {"value": 7}

        record = sim.trace.emit("a", "lazy", render)
        assert not record.detail_is_rendered
        assert calls == []
        assert record.detail == {"value": 7}
        assert record.detail == {"value": 7}
        assert calls == [1]  # cached after first render
        assert record.detail_is_rendered

    def test_none_and_dict_details(self, sim):
        empty = sim.trace.emit("a", "bare")
        assert empty.detail == {}
        eager = sim.trace.emit("a", "eager", {"k": 1})
        assert eager.detail == {"k": 1}

    def test_hot_path_frames_are_not_rendered(self, sim):
        segment = Segment(sim, "lan")
        a = NetworkInterface(sim, "a", MacAddress.locally_administered(1))
        b = NetworkInterface(sim, "b", MacAddress.locally_administered(2))
        a.attach(segment)
        b.attach(segment)
        frame = EthernetFrame(
            destination=b.mac, source=a.mac, ethertype=int(EtherType.IPV4), payload=b"x"
        )
        a.send(frame)
        sim.run()
        tx = sim.trace.last(category="nic.tx")
        assert not tx.detail_is_rendered
        assert "->" in tx.detail["frame"]  # renders on demand
        assert tx.detail_is_rendered


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------


class TestListSink:
    def test_indexed_queries_match_brute_force(self, sim):
        for index in range(30):
            sim.trace.record(f"src{index % 3}", f"cat{index % 4}", value=index)
        records = list(sim.trace)
        for category in (None, "cat0", "cat3", "missing"):
            for source in (None, "src0", "src2", "missing"):
                expected = [
                    r
                    for r in records
                    if (category is None or r.category == category)
                    and (source is None or r.source == source)
                ]
                assert sim.trace.filter(category=category, source=source) == expected
                assert sim.trace.count(category=category, source=source) == len(expected)
                last = sim.trace.last(category=category, source=source)
                assert last == (expected[-1] if expected else None)

    def test_time_window_filter_uses_index(self, sim):
        recorder = sim.trace
        sim.schedule(1.0, lambda: recorder.record("a", "x"))
        sim.schedule(2.0, lambda: recorder.record("b", "x"))
        sim.schedule(3.0, lambda: recorder.record("a", "x"))
        sim.run()
        assert len(recorder.filter(category="x", since=1.5, until=2.5)) == 1
        assert len(recorder.filter(category="x", source="a", since=1.5)) == 1


class TestRingBufferSink:
    def test_evicts_oldest(self):
        sim = Simulator(trace_sinks=[RingBufferSink(capacity=3)])
        for index in range(10):
            sim.trace.record("a", "tick", value=index)
        retained = [record.detail["value"] for record in sim.trace]
        assert retained == [7, 8, 9]
        (sink,) = sim.trace.sinks
        assert sink.evicted == 7
        assert len(sink) == 3
        # Live counters still see everything ever recorded.
        assert sim.trace.count(category="tick") == 10
        assert len(sim.trace) == 10

    def test_queries_cover_the_retained_window(self):
        sim = Simulator(trace_sinks=[RingBufferSink(capacity=4)])
        for index in range(8):
            sim.trace.record("a", "even" if index % 2 == 0 else "odd", value=index)
        assert [r.detail["value"] for r in sim.trace.filter(category="even")] == [4, 6]
        assert sim.trace.last(category="odd").detail["value"] == 7

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestNullSink:
    def test_discards_records_but_counters_stay_live(self):
        sim = Simulator(trace_sinks=[NullSink()])
        sim.trace.record("a", "x")
        sim.trace.record("a", "y")
        assert list(sim.trace) == []
        assert sim.trace.filter(category="x") == []
        assert sim.trace.last(category="x") is None
        assert sim.trace.count(category="x") == 1
        assert len(sim.trace) == 2


class TestSinkManagement:
    def test_add_remove_and_replace(self, sim):
        counting = CountingSink()
        sim.trace.add_sink(counting)
        sim.trace.record("a", "x")
        assert counting.count(category="x") == 1
        sim.trace.remove_sink(counting)
        sim.trace.record("a", "x")
        assert counting.count(category="x") == 1
        assert sim.trace.count(category="x") == 2
        sim.trace.set_sinks([NullSink()])
        sim.trace.record("a", "x")
        assert list(sim.trace) == []

    def test_clear_resets_sinks_and_counters(self, sim):
        sim.trace.record("a", "x")
        sim.trace.clear()
        assert len(sim.trace) == 0
        assert sim.trace.count(category="x") == 0
        assert list(sim.trace) == []


# ---------------------------------------------------------------------------
# Live counters end to end
# ---------------------------------------------------------------------------


class TestLiveCounters:
    def test_counting_sink_matches_list_sink_on_ping_run(self):
        counting = CountingSink()
        list_sink = ListSink()
        setup, result = run_short_ping(trace_sinks=[list_sink, counting])
        assert result.received == result.sent > 0
        assert counting.total == len(list_sink) > 0
        for category in ("nic.tx", "nic.rx", "segment.deliver", "node.forward"):
            assert counting.count(category=category) == list_sink.count(category=category)
        trace = setup.network.sim.trace
        assert trace.count(category="node.forward") == counting.count(
            category="node.forward"
        )

    def test_ping_result_reads_bridge_forwards_from_live_counters(self):
        _setup, result = run_short_ping()
        # Echo request and reply both cross the bridge: two forwards per ping.
        assert result.bridge_forwards == 2 * result.received

    def test_counter_window_isolates_an_interval(self, sim):
        sim.trace.record("a", "x")
        window = CounterWindow(sim.trace)
        assert window.count(category="x") == 0
        sim.trace.record("a", "x")
        sim.trace.record("b", "y")
        assert window.count(category="x") == 1
        assert window.count(source="b") == 1
        assert window.count(category="x", source="a") == 1
        assert window.count() == 2


# ---------------------------------------------------------------------------
# Determinism with sinks swapped
# ---------------------------------------------------------------------------


class TestDeterminismAcrossSinks:
    def test_same_seed_same_trace_regardless_of_sinks(self):
        outcomes = []
        for sinks in (None, [RingBufferSink(capacity=50)], [NullSink()]):
            setup, result = run_short_ping(trace_sinks=sinks, seed=23)
            sim = setup.network.sim
            outcomes.append(
                (
                    tuple(result.rtts),
                    result.bridge_forwards,
                    sim.events_dispatched,
                    len(sim.trace),
                    sim.trace.count(category="nic.tx"),
                )
            )
        assert outcomes[0] == outcomes[1] == outcomes[2]


# ---------------------------------------------------------------------------
# Event queue: O(1) accounting, compaction, cancelled_discarded
# ---------------------------------------------------------------------------


class TestEventQueueAccounting:
    def test_len_tracks_cancellations_live(self):
        queue = EventQueue()
        events = [queue.push(10 * index, lambda: None) for index in range(10)]
        assert len(queue) == 10
        for event in events[:4]:
            event.cancel()
        assert len(queue) == 6
        assert bool(queue)
        # Double-cancel must not double-count.
        events[0].cancel()
        assert len(queue) == 6

    def test_cancel_after_pop_is_harmless(self):
        queue = EventQueue()
        event = queue.push(1, lambda: None)
        queue.push(2, lambda: None)
        popped = queue.pop()
        assert popped is event
        event.cancel()
        assert len(queue) == 1
        assert queue.pop().time_ns == 2

    def test_cancelled_discarded_counts_top_skips(self):
        queue = EventQueue()
        first = queue.push(1, lambda: None)
        second = queue.push(2, lambda: None)
        queue.push(3, lambda: None)
        first.cancel()
        second.cancel()
        assert queue.peek_time_ns() == 3
        assert queue.cancelled_discarded == 2
        assert queue.pop().time_ns == 3
        assert queue.pop() is None

    def test_lazy_compaction_when_cancellations_dominate(self):
        queue = EventQueue()
        doomed = [queue.push(1000 + index, lambda: None) for index in range(100)]
        survivors = [queue.push(10_000 + index, lambda: None) for index in range(5)]
        for event in doomed:
            event.cancel()
        assert len(queue) == 5
        # Compaction kicked in: the heap physically dropped most corpses
        # without waiting for them to surface at the top.
        assert queue.cancelled_discarded > 0
        assert len(queue._heap) < len(doomed) + len(survivors)
        popped = []
        while queue:
            popped.append(queue.pop().time_ns)
        assert popped == sorted(event.time_ns for event in survivors)
        # Draining accounts for every cancelled event exactly once.
        assert queue.cancelled_discarded == len(doomed)
        assert queue.pop() is None

    def test_simulator_exposes_discard_stat(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        assert sim.pending_events == 0
        sim.run()
        assert sim.cancelled_events_discarded >= 0


# ---------------------------------------------------------------------------
# Segment byte accounting (regression)
# ---------------------------------------------------------------------------


class TestSegmentByteAccounting:
    def test_bytes_carried_uses_wire_length(self, sim):
        segment = Segment(sim, "lan", bandwidth_bps=100_000_000)
        a = NetworkInterface(sim, "a", MacAddress.locally_administered(1))
        b = NetworkInterface(sim, "b", MacAddress.locally_administered(2))
        a.attach(segment)
        b.attach(segment)
        frame = EthernetFrame(
            destination=b.mac,
            source=a.mac,
            ethertype=int(EtherType.IPV4),
            payload=b"z" * 100,
        )
        a.send(frame)
        sim.run()
        assert segment.frames_carried == 1
        assert segment.bytes_carried == frame.wire_length

    def test_utilization_matches_serialization_delay(self, sim):
        segment = Segment(sim, "lan", bandwidth_bps=100_000_000)
        a = NetworkInterface(sim, "a", MacAddress.locally_administered(1))
        b = NetworkInterface(sim, "b", MacAddress.locally_administered(2))
        a.attach(segment)
        b.attach(segment)
        frame = EthernetFrame(
            destination=b.mac,
            source=a.mac,
            ethertype=int(EtherType.IPV4),
            payload=b"z" * 500,
        )
        a.send(frame)
        sim.run()
        # Over exactly the serialization time, the wire was 100% occupied.
        busy = segment.serialization_delay(frame)
        assert segment.utilization(elapsed_seconds=busy) == pytest.approx(1.0)
