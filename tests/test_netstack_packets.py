"""Tests for the minimal IP / UDP / ICMP wire formats and the Internet checksum."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ChecksumError, PacketError
from repro.netstack.checksum import internet_checksum, verify_checksum
from repro.netstack.icmp import IcmpMessage, IcmpType
from repro.netstack.ip import IPv4Address, IPv4Packet, IpProtocol, IPV4_HEADER_LENGTH
from repro.netstack.udp import UdpDatagram

SRC = IPv4Address.from_string("10.0.0.1")
DST = IPv4Address.from_string("10.0.0.2")


# ---------------------------------------------------------------------------
# Internet checksum
# ---------------------------------------------------------------------------


class TestChecksum:
    def test_rfc1071_example(self):
        # Classic example from RFC 1071 section 3.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0xFFFF - ((0x0001 + 0xF203 + 0xF4F5 + 0xF6F7) % 0xFFFF)

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_verify_on_packet_with_embedded_checksum(self):
        data = bytearray(b"\x45\x00\x00\x14\x00\x00\x00\x00\x40\x11\x00\x00\x0a\x00\x00\x01\x0a\x00\x00\x02")
        checksum = internet_checksum(bytes(data))
        data[10:12] = checksum.to_bytes(2, "big")
        assert verify_checksum(bytes(data))

    @given(st.binary(max_size=256))
    @settings(max_examples=100, deadline=None)
    def test_data_plus_checksum_always_verifies(self, data):
        checksum = internet_checksum(data)
        assert verify_checksum(data + checksum.to_bytes(2, "big")) or len(data) % 2 == 1


# ---------------------------------------------------------------------------
# IPv4 addresses
# ---------------------------------------------------------------------------


class TestIPv4Address:
    def test_string_roundtrip(self):
        address = IPv4Address.from_string("192.168.1.17")
        assert str(address) == "192.168.1.17"

    def test_bytes_roundtrip(self):
        address = IPv4Address.from_string("10.1.2.3")
        assert IPv4Address.from_bytes(address.to_bytes()) == address

    def test_bad_strings_rejected(self):
        for text in ("10.0.0", "10.0.0.256", "a.b.c.d", ""):
            with pytest.raises(PacketError):
                IPv4Address.from_string(text)

    def test_ordering_and_hashing(self):
        low = IPv4Address.from_string("10.0.0.1")
        high = IPv4Address.from_string("10.0.0.2")
        assert low < high
        assert len({low, high, IPv4Address.from_string("10.0.0.1")}) == 2

    def test_out_of_range_value(self):
        with pytest.raises(PacketError):
            IPv4Address(1 << 32)


# ---------------------------------------------------------------------------
# IPv4 packets
# ---------------------------------------------------------------------------


class TestIPv4Packet:
    def test_roundtrip(self):
        packet = IPv4Packet(SRC, DST, int(IpProtocol.UDP), b"data bytes", ttl=33)
        decoded = IPv4Packet.decode(packet.encode())
        assert decoded.source == SRC
        assert decoded.destination == DST
        assert decoded.protocol == int(IpProtocol.UDP)
        assert decoded.payload == b"data bytes"
        assert decoded.ttl == 33

    def test_total_length(self):
        packet = IPv4Packet(SRC, DST, 17, b"12345")
        assert packet.total_length == IPV4_HEADER_LENGTH + 5

    def test_header_checksum_verified(self):
        encoded = bytearray(IPv4Packet(SRC, DST, 17, b"x").encode())
        encoded[8] ^= 0xFF  # corrupt the TTL without fixing the checksum
        with pytest.raises(ChecksumError):
            IPv4Packet.decode(bytes(encoded))

    def test_trailing_padding_ignored_via_total_length(self):
        packet = IPv4Packet(SRC, DST, 17, b"abc")
        padded = packet.encode() + b"\x00" * 20  # Ethernet minimum-frame padding
        decoded = IPv4Packet.decode(padded)
        assert decoded.payload == b"abc"

    def test_fragmented_packets_rejected(self):
        encoded = bytearray(IPv4Packet(SRC, DST, 17, b"x").encode())
        encoded[6] = 0x20  # set "more fragments"
        # Fix up the checksum so the fragmentation check is what trips.
        encoded[10:12] = b"\x00\x00"
        from repro.netstack.checksum import internet_checksum as cks

        encoded[10:12] = cks(bytes(encoded[:20])).to_bytes(2, "big")
        with pytest.raises(PacketError):
            IPv4Packet.decode(bytes(encoded))

    def test_short_packet_rejected(self):
        with pytest.raises(PacketError):
            IPv4Packet.decode(b"\x45\x00\x00")

    def test_wrong_version_rejected(self):
        encoded = bytearray(IPv4Packet(SRC, DST, 17, b"x").encode())
        encoded[0] = 0x65  # version 6
        with pytest.raises(PacketError):
            IPv4Packet.decode(bytes(encoded))

    @given(st.binary(max_size=1400), st.integers(min_value=0, max_value=255))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_any_payload(self, payload, protocol):
        packet = IPv4Packet(SRC, DST, protocol, payload)
        decoded = IPv4Packet.decode(packet.encode())
        assert decoded.payload == payload
        assert decoded.protocol == protocol


# ---------------------------------------------------------------------------
# UDP
# ---------------------------------------------------------------------------


class TestUdp:
    def test_roundtrip(self):
        datagram = UdpDatagram(1234, 69, b"tftp payload")
        decoded = UdpDatagram.decode(datagram.encode(SRC, DST), SRC, DST)
        assert decoded.source_port == 1234
        assert decoded.destination_port == 69
        assert decoded.payload == b"tftp payload"

    def test_checksum_verified_with_pseudo_header(self):
        datagram = UdpDatagram(1, 2, b"abc")
        encoded = datagram.encode(SRC, DST)
        # Decoding against different addresses must fail the checksum.
        other = IPv4Address.from_string("10.9.9.9")
        with pytest.raises(ChecksumError):
            UdpDatagram.decode(encoded, SRC, other)

    def test_corrupted_payload_rejected(self):
        encoded = bytearray(UdpDatagram(1, 2, b"abcdef").encode(SRC, DST))
        encoded[-1] ^= 0xFF
        with pytest.raises(ChecksumError):
            UdpDatagram.decode(bytes(encoded), SRC, DST)

    def test_trailing_padding_ignored(self):
        encoded = UdpDatagram(5, 6, b"xy").encode(SRC, DST) + b"\x00" * 30
        decoded = UdpDatagram.decode(encoded, SRC, DST)
        assert decoded.payload == b"xy"

    def test_port_range_enforced(self):
        with pytest.raises(PacketError):
            UdpDatagram(-1, 2, b"")
        with pytest.raises(PacketError):
            UdpDatagram(1, 70000, b"")

    def test_short_datagram_rejected(self):
        with pytest.raises(PacketError):
            UdpDatagram.decode(b"\x00\x01", SRC, DST)

    @given(
        st.integers(min_value=0, max_value=65535),
        st.integers(min_value=0, max_value=65535),
        st.binary(max_size=1024),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_any(self, sport, dport, payload):
        datagram = UdpDatagram(sport, dport, payload)
        decoded = UdpDatagram.decode(datagram.encode(SRC, DST), SRC, DST)
        assert decoded.source_port == sport
        assert decoded.destination_port == dport
        assert decoded.payload == payload


# ---------------------------------------------------------------------------
# ICMP
# ---------------------------------------------------------------------------


class TestIcmp:
    def test_roundtrip(self):
        message = IcmpMessage(int(IcmpType.ECHO_REQUEST), 0x1234, 7, b"ping data")
        decoded = IcmpMessage.decode(message.encode())
        assert decoded.is_request
        assert decoded.identifier == 0x1234
        assert decoded.sequence == 7
        assert decoded.payload == b"ping data"

    def test_make_reply(self):
        request = IcmpMessage(int(IcmpType.ECHO_REQUEST), 1, 2, b"abc")
        reply = request.make_reply()
        assert reply.is_reply
        assert reply.identifier == 1
        assert reply.sequence == 2
        assert reply.payload == b"abc"

    def test_make_reply_on_reply_rejected(self):
        reply = IcmpMessage(int(IcmpType.ECHO_REPLY), 1, 2, b"")
        with pytest.raises(PacketError):
            reply.make_reply()

    def test_checksum_verified(self):
        encoded = bytearray(IcmpMessage(int(IcmpType.ECHO_REQUEST), 1, 2, b"abc").encode())
        encoded[-1] ^= 0x01
        with pytest.raises(ChecksumError):
            IcmpMessage.decode(bytes(encoded))

    def test_unknown_type_rejected(self):
        message = bytearray(IcmpMessage(int(IcmpType.ECHO_REQUEST), 1, 2, b"").encode())
        message[0] = 13  # timestamp request: unsupported
        with pytest.raises(PacketError):
            IcmpMessage.decode(bytes(message))

    def test_identifier_range_checked(self):
        with pytest.raises(PacketError):
            IcmpMessage(int(IcmpType.ECHO_REQUEST), 1 << 16, 0, b"")

    @given(st.binary(max_size=1400), st.integers(min_value=0, max_value=65535))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_any(self, payload, sequence):
        message = IcmpMessage(int(IcmpType.ECHO_REQUEST), 99, sequence, payload)
        decoded = IcmpMessage.decode(message.encode())
        assert decoded.payload == payload
        assert decoded.sequence == sequence
