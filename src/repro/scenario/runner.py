"""The one parametrized scenario runner.

:func:`run_scenario` is the single entry point every benchmark, test and
example drives: it resolves a scenario (by registered name or as an explicit
:class:`~repro.scenario.spec.ScenarioSpec`), compiles it, and hands back the
live :class:`~repro.scenario.compile.ScenarioRun`.  :func:`run_matrix`
applies it across a topology-matrix expansion.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional, Union

from repro.costs.model import CostModel
from repro.scenario.compile import ScenarioRun, compile_spec
from repro.scenario.registry import expand_matrix, get_scenario
from repro.scenario.spec import PartitionSpec, ScenarioSpec


def run_scenario(
    scenario: Union[str, ScenarioSpec],
    *,
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    trace_sinks=None,
    params: Optional[Mapping[str, object]] = None,
    shards: Union[int, PartitionSpec] = 1,
    sync: Optional[str] = None,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    faults=None,
    telemetry: bool = False,
) -> ScenarioRun:
    """Compile a scenario into a live network ready for measurement.

    Args:
        scenario: a registered scenario name (e.g. ``"pair/active-bridge"``)
            or an explicit spec.
        seed: simulator seed (deterministic experiments).
        cost_model: software cost constants shared by all components;
            ``None`` selects the calibrated defaults.
        trace_sinks: optional trace sinks for the simulator (e.g. a bounded
            ring buffer for very long runs).
        params: factory parameters when ``scenario`` is a name (matrix-axis
            values such as ``{"n_bridges": 5}``).
        shards: shard the compiled network across this many cooperating
            engines (or per an explicit :class:`PartitionSpec`).  Strict
            results are bit-identical to the single-engine run; large
            topologies execute faster on the fabric's batched per-shard
            event rings.
        sync: fabric synchronization mode — ``"strict"`` (default) or
            ``"relaxed"`` (concurrent lookahead windows, canonical-merge
            equivalent to strict; see :mod:`repro.sim.relaxed`).  Overrides
            :attr:`PartitionSpec.sync` when both are given; ignored for
            single-engine runs.
        workers: worker threads for relaxed windows (``None`` keeps the
            partition's setting; ``0`` = sequential).
        backend: relaxed-window execution backend — ``"thread"``
            (in-process) or ``"process"`` (one worker process per shard,
            wall-clock parallel; see :mod:`repro.sim.procpool`).  Overrides
            :attr:`PartitionSpec.backend` when both are given; ignored for
            single-engine runs.
        faults: extra :class:`~repro.faults.spec.FaultSpec` events appended
            to the scenario's own fault timeline (scripted link/port
            failures, loss models — see :mod:`repro.faults`); the combined
            timeline is installed at compile time on the simulator control
            path, identically under every engine configuration.
        telemetry: enable the engine's metrics/span instrumentation
            (:mod:`repro.telemetry`) before any event dispatches; collect
            the results with ``run.report()``.  Never changes a simulation
            outcome.

    Returns:
        The compiled :class:`ScenarioRun`; the caller decides how far to run
        the simulator (``run.warm_up()`` reaches the scenario's ready time).
    """
    if isinstance(scenario, str):
        spec = get_scenario(scenario, **dict(params or {}))
    else:
        if params:
            raise ValueError("params are only accepted with a scenario name")
        spec = scenario
    return compile_spec(
        spec, seed=seed, cost_model=cost_model, trace_sinks=trace_sinks,
        shards=shards, sync=sync, workers=workers, backend=backend,
        faults=faults, telemetry=telemetry,
    )


def run_matrix(
    name: str,
    axes: Mapping[str, Iterable[object]],
    *,
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    trace_sinks=None,
    base_params: Optional[Mapping[str, object]] = None,
    shards: Union[int, PartitionSpec] = 1,
    sync: Optional[str] = None,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    faults=None,
    telemetry: bool = False,
) -> Iterator[ScenarioRun]:
    """Compile and yield one :class:`ScenarioRun` per matrix point.

    Expansion order is deterministic (see
    :func:`~repro.scenario.registry.expand_matrix`); each run is compiled
    lazily, so a large sweep only holds one live network at a time.  The
    ``shards`` and ``sync``/``workers``/``backend`` knobs apply to every
    point (the partitioner clamps the shard count for points with fewer
    segments).
    """
    for spec in expand_matrix(name, axes, base_params=base_params):
        yield compile_spec(
            spec, seed=seed, cost_model=cost_model, trace_sinks=trace_sinks,
            shards=shards, sync=sync, workers=workers, backend=backend,
            faults=faults, telemetry=telemetry,
        )
