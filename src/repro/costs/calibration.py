"""Calibration constants derived from the paper's measurements.

Section 6/7 of the paper gives us the following anchors on the prototype
hardware (166 MHz Pentium, Linux 2.0, 100 Mb/s Ethernet):

* ttcp throughput: 76 Mb/s unbridged, 16 Mb/s through the active bridge,
  and the active bridge reaches about 44 % of the C buffered repeater.
* Frame rates through the active bridge: ~360 f/s for ~50-byte frames up to
  ~1790 f/s for 1024-byte frames.
* Per-frame cost inside Caml: 0.47 ms on average during ttcp (a ~2100 f/s,
  ~32 Mb/s ceiling before OS and transmission overheads).
* Ping: the Caml code adds ~0.34 ms per frame; the rest of the added latency
  is attributed to Linux and the user-space boundary crossing.
* Agility: reconfiguration itself takes < 0.1 s; end-to-end recovery is
  ~30 s because of the 802.1D forwarding-delay timers.

The constants below are chosen so that the simulated node reproduces those
anchors to first order.  They deliberately separate *interpreter* cost
(what native-code compilation would remove), *kernel-crossing* cost (what a
U-Net-style user-level network interface would remove) and *per-byte* cost
(data-touching cost in the sense of Kay & Pasquale), because the paper's
discussion — and our ablation benchmark — treats those as independent levers.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Active bridge (Caml byte-code interpreter path)
# ---------------------------------------------------------------------------

#: Fixed per-frame cost of the interpreted switchlet path (seconds).
#: 0.40 ms fixed + 65 ns/byte gives 0.47 ms at 1024-byte frames, matching the
#: paper's measured in-Caml cost.
INTERPRETER_FRAME_COST = 0.40e-3

#: Per-byte (data touching) cost inside the interpreter (seconds/byte).
INTERPRETER_BYTE_COST = 65e-9

#: One-way kernel crossing cost (receive into user space, or transmit out of
#: it).  Two crossings plus the interpreter cost give ~0.56 ms per forwarded
#: 1024-byte frame, i.e. the ~1790 frames/second the paper measures.
KERNEL_CROSSING_COST = 0.045e-3

# ---------------------------------------------------------------------------
# C buffered repeater baseline
# ---------------------------------------------------------------------------

#: Fixed per-frame cost of the C user-space repeater (seconds), on top of the
#: two kernel crossings it shares with the bridge.  Calibrated so the active
#: bridge reaches roughly 44 % of the repeater's throughput, as in Section 9
#: of the paper.
REPEATER_FRAME_COST = 0.09e-3

#: Per-byte cost of the C repeater (memcpy through user space).
REPEATER_BYTE_COST = 30e-9

# ---------------------------------------------------------------------------
# End hosts (the Linux PCs running ping / ttcp)
# ---------------------------------------------------------------------------

#: Fixed per-frame protocol-processing cost at an end host (seconds).
#: Calibrated so that the unbridged ttcp baseline lands near 76 Mb/s.
HOST_FRAME_COST = 0.095e-3

#: Per-byte cost at an end host (checksums plus copies).
HOST_BYTE_COST = 10e-9

#: Additional per-write system-call overhead charged to a ttcp sender.
#: This is what makes small-write ttcp trials slow at the *sender*, giving
#: the low frame rates the paper reports for ~50-byte frames.
HOST_SYSCALL_COST = 0.10e-3

# ---------------------------------------------------------------------------
# Switchlet loading / agility
# ---------------------------------------------------------------------------

#: Cost to dynamically link and evaluate one switchlet (seconds).  The paper
#: measures the whole reconfiguration (BPDU in, protocols swapped, BPDU out
#: across three bridges) at ~0.056 s, so per-node module activation must be
#: in the low tens of milliseconds.
SWITCHLET_LOAD_COST = 15e-3

#: Cost to run a loaded switchlet's registration code (seconds).
SWITCHLET_REGISTER_COST = 2e-3

# ---------------------------------------------------------------------------
# Garbage collector model (used only by the ablation benchmark)
# ---------------------------------------------------------------------------

#: Mean interval between GC pauses under forwarding load (seconds).
GC_PAUSE_INTERVAL = 0.25

#: Duration of one GC pause (seconds).  Zero disables GC pauses; the default
#: cost model leaves them off because the paper could not isolate the GC
#: contribution ("We have not yet had an opportunity to isolate the source of
#: the Caml overheads").
GC_PAUSE_DURATION = 0.0
