"""Deterministic-by-construction metrics: counters, gauges, histograms.

The registry records *simulated* quantities only — event counts, frame and
byte tallies, queue depths, window counts.  Every value is a pure function
of the deterministic event stream, so two runs of the same scenario produce
identical snapshots in every engine mode, and enabling the registry can
never change a simulation outcome: metrics are written by the execution
machinery *about* the simulation, never read by it.

Wall-clock timing lives in :mod:`repro.telemetry.spans` instead — the two
families are deliberately separate types so a wall-clock number can never
be folded into a deterministic metric by accident.

Naming follows the Prometheus conventions (``snake_case``, ``_total`` for
monotonic counters); :data:`METRIC_FAMILIES` is the documented family list,
held to a docs-coverage contract by ``tools/docs_check.py``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

#: Every metric family the instrumentation can emit, with a one-line
#: description.  ``tools/docs_check.py`` requires each name to appear in
#: ``docs/telemetry.md`` — adding a family without documenting it fails CI.
METRIC_FAMILIES: Dict[str, str] = {
    "engine_events_dispatched": "events dispatched, per engine/shard",
    "engine_queue_high_water": "peak pending-event count observed per engine",
    "fabric_windows_total": "relaxed lookahead windows executed",
    "fabric_sole_leader_extensions_total": (
        "sole-leader fast-path windows (extended in place)"
    ),
    "fabric_control_barriers_total": "control-ring barrier rounds executed",
    "fabric_mail_entries_total": "cross-shard mailbox entries applied",
    "fabric_mail_frames_total": "frames carried by mailbox entries, per cut segment",
    "fabric_mail_bytes_total": "wire bytes carried by mailbox entries, per cut segment",
    "proc_planner_rounds_total": "process-backend parent planner loop rounds",
    "proc_pipe_messages_total": "process-backend pipe messages sent by the parent",
    "proc_envelope_bytes_total": "serialized frame-envelope bytes broadcast to workers",
    "segment_frames_carried": "frames the segment carried (snapshot)",
    "segment_bytes_carried": "payload bytes the segment carried (snapshot)",
    "segment_frames_lost": "frames dropped by faults/failures (snapshot)",
    "segment_frames_corrupted": "frames delivered corrupted (snapshot)",
    "segment_frames_coalesced": "frames served through coalesced batch drains",
    "segment_cross_shard_frames": "frames that crossed a shard cut",
    "segment_busy_seconds": "end of the segment's wire busy chain (snapshot)",
    "segment_utilization": "fraction of wire capacity used since time zero",
    "express_frames": "frames carried, grouped by the segment's express mode",
    "window_events": "events per relaxed window (histogram)",
}

#: Default histogram bounds for events-per-window (events, not seconds).
WINDOW_EVENT_BUCKETS: Tuple[float, ...] = (1, 2, 5, 10, 25, 50, 100, 250, 1000)


def _key(name: str, labels: tuple) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value; :meth:`set_max` keeps the high-water mark."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """A fixed-bucket histogram: cumulative-style counts plus sum/count.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    overflow bucket catches everything beyond the last bound.  Bounds are
    fixed at construction, so two runs observing identical samples produce
    identical bucket vectors — the determinism contract for histograms.
    """

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: Iterable[float]) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        self.counts[index] += 1
        self.total += value
        self.count += 1

    def as_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


class MetricsRegistry:
    """A labelled metric store, one per engine, mergeable fabric-wide.

    Metrics are created on first touch and cached by ``(name, labels)``;
    the hot-path pattern is to hold the returned object and call ``inc``
    directly, so steady-state cost is one attribute add.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str, **labels) -> Counter:
        key = _key(name, tuple(sorted(labels.items())))
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        key = _key(name, tuple(sorted(labels.items())))
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(
        self, name: str, bounds: Optional[Iterable[float]] = None, **labels
    ) -> Histogram:
        key = _key(name, tuple(sorted(labels.items())))
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(
                bounds if bounds is not None else WINDOW_EVENT_BUCKETS
            )
        return metric

    # -- aggregation --------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-data copy, sorted by key (deterministic serialization)."""
        return {
            "counters": {
                key: self._counters[key].value for key in sorted(self._counters)
            },
            "gauges": {key: self._gauges[key].value for key in sorted(self._gauges)},
            "histograms": {
                key: self._histograms[key].as_dict()
                for key in sorted(self._histograms)
            },
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another registry's snapshot in.

        Counters and histogram buckets add; gauges keep the maximum (the
        fabric-wide high-water of per-shard high-waters).  This is how
        process-backend workers' registries aggregate into the parent's.
        """
        for key, value in (snapshot.get("counters") or {}).items():
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter()
            metric.value += value
        for key, value in (snapshot.get("gauges") or {}).items():
            gauge = self._gauges.get(key)
            if gauge is None:
                gauge = self._gauges[key] = Gauge()
            gauge.set_max(value)
        for key, data in (snapshot.get("histograms") or {}).items():
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram(data["bounds"])
            if tuple(data["bounds"]) != histogram.bounds:
                raise ValueError(
                    f"histogram {key!r} bounds mismatch on merge: "
                    f"{data['bounds']} vs {list(histogram.bounds)}"
                )
            for index, count in enumerate(data["counts"]):
                histogram.counts[index] += count
            histogram.total += data["sum"]
            histogram.count += data["count"]
