"""Plain-text table rendering."""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render a list of rows as an aligned plain-text table.

    Args:
        headers: column headers.
        rows: row cells (converted with ``str``; floats get three decimals).
        title: optional title printed above the table.
    """
    text_rows: List[List[str]] = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            if index >= len(widths):
                widths.append(len(cell))
            else:
                widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[index]) for index, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    separator = "+-" + "-+-".join("-" * width for width in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(format_row(list(headers)))
    lines.append(separator)
    for row in text_rows:
        lines.append(format_row(row))
    lines.append(separator)
    return "\n".join(lines)


def render_counters(counts: Mapping[str, int], title: str = "") -> str:
    """Render live trace counters as a two-column table, largest first.

    Takes any mapping of label to count — typically
    :meth:`repro.sim.trace.CountingSink.snapshot` — so trace summaries come
    from O(1) counters rather than a scan over the record list.
    """
    ordered = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    return render_table(["category", "records"], ordered, title=title)


def render_kv(pairs: Mapping[str, object], title: str = "") -> str:
    """Render a mapping as an aligned key/value listing."""
    if not pairs:
        return title
    width = max(len(str(key)) for key in pairs)
    lines = [title] if title else []
    for key, value in pairs.items():
        lines.append(f"  {str(key).ljust(width)} : {_stringify(value)}")
    return "\n".join(lines)
