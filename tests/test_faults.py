"""The fault & dynamics subsystem.

The headline contract under test: one fault timeline — scripted link/port
failures, loss models, degradations — produces **bit-identical** results on
the single engine and the strict sharded fabric, and **canonical-merge
equivalent** results under relaxed execution (sequential and threaded),
proven over the new ``ring/failover`` and ``pair/lossy`` catalog scenarios
driven through a whole failure → reconvergence → recovery episode.

Also covered: the spanning tree genuinely failing over (blocked port walks
to forwarding, traffic reroutes), express-lane re-evaluation when ports or
loss models change mid-run, the :class:`ConvergenceProbe`, and the
measurement probes' zero-delivery-window robustness.
"""

from __future__ import annotations

import pytest

from repro.ethernet.frame import EthernetFrame
from repro.exceptions import TopologyError
from repro.faults import FAULT_KINDS, FaultError, FaultSpec, FaultTimeline, FrameLossModel
from repro.measurement import ConvergenceProbe
from repro.measurement.framerate import CounterRateProbe
from repro.measurement.ping import PingRunner
from repro.scenario import run_scenario
from repro.scenario.spec import (
    DeviceSpec,
    HostSpec,
    PortSpec,
    ScenarioSpec,
    SegmentSpec,
    SwitchletSpec,
)

#: Compressed 802.1D timers: whole failover episodes in seconds of sim time.
FAST_TIMERS = {"hello_time": 0.5, "max_age": 2.5, "forward_delay": 1.0}

#: ring/failover parameters driven by the equivalence tests.
FAILOVER_PARAMS = {
    "n_bridges": 5, "fail_at": 5.0, "recover_at": 11.0, **FAST_TIMERS,
}


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _canonical(run):
    trace = run.sim.trace
    if hasattr(trace, "canonical_records"):
        return trace.canonical_records()
    return list(trace)


def _observables(run):
    counters = dict(run.sim.trace.counters.by_category_source)
    host_stats = {host.name: host.statistics() for host in run.hosts}
    segment_stats = {
        name: (
            segment.frames_carried,
            segment.bytes_carried,
            segment.frames_lost,
            segment.frames_corrupted,
        )
        for name, segment in run.network.segments.items()
    }
    return counters, host_stats, segment_stats, run.sim.now


def _drive_failover(shards, sync="strict", workers=0):
    """Warm up, ping across the whole outage, run to recovery + settle."""
    run = run_scenario(
        "ring/failover", params=FAILOVER_PARAMS,
        shards=shards, sync=sync, workers=workers,
    )
    run.warm_up()
    PingRunner(
        run.sim, run.host("left"), run.host("right").ip, payload_size=64,
        count=30, interval=0.25, identifier=7,
    ).run(start_time=run.sim.now + 0.01)
    run.sim.run_until(14.0)
    return run


def _drive_lossy(shards, sync="strict", workers=0):
    run = run_scenario(
        "pair/lossy", params={"loss_rate": 0.25, "corrupt_rate": 0.05},
        shards=shards, sync=sync, workers=workers,
    )
    run.warm_up()
    PingRunner(
        run.sim, run.hosts[0], run.hosts[1].ip, payload_size=64,
        count=40, interval=0.05,
    ).run(start_time=run.sim.now)
    return run


# ---------------------------------------------------------------------------
# The headline: fault timelines are engine-mode invariant
# ---------------------------------------------------------------------------


class TestFailoverEquivalence:
    @pytest.fixture(scope="class")
    def reference(self):
        return _drive_failover(1)

    def test_outage_really_happened(self, reference):
        seg1 = reference.segment("seg1")
        assert seg1.frames_lost > 0
        assert seg1.link_up  # recovered by the end of the run
        assert reference.faults.applied == [
            (5.0, "t=5s link-down seg1"), (11.0, "t=11s link-up seg1"),
        ]

    @pytest.mark.parametrize("shards", [2, 4])
    def test_strict_shards_bit_identical(self, reference, shards):
        sharded = _drive_failover(shards)
        assert sharded.partition.cut_segments  # the loop really is cut
        assert list(sharded.sim.trace) == list(reference.sim.trace)
        assert _observables(sharded) == _observables(reference)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_relaxed_is_canonical_merge_identical(self, reference, shards):
        strict = _drive_failover(shards)
        relaxed = _drive_failover(shards, sync="relaxed")
        assert _canonical(relaxed) == _canonical(strict)
        assert _observables(relaxed) == _observables(reference)

    def test_threaded_relaxed_equals_sequential(self, reference):
        sequential = _drive_failover(4, sync="relaxed")
        threaded = _drive_failover(4, sync="relaxed", workers=4)
        assert _canonical(threaded) == _canonical(sequential)
        assert _observables(threaded) == _observables(reference)


class TestLossyEquivalence:
    @pytest.fixture(scope="class")
    def reference(self):
        return _drive_lossy(1)

    def test_loss_model_really_dropped(self, reference):
        lan1 = reference.segment("lan1")
        assert lan1.frames_lost > 0
        assert lan1.frames_corrupted > 0

    @pytest.mark.parametrize("shards", [2])
    def test_strict_shards_bit_identical(self, reference, shards):
        sharded = _drive_lossy(shards)
        assert list(sharded.sim.trace) == list(reference.sim.trace)
        assert _observables(sharded) == _observables(reference)

    def test_relaxed_and_threaded_equivalent(self, reference):
        strict = _drive_lossy(2)
        relaxed = _drive_lossy(2, sync="relaxed")
        threaded = _drive_lossy(2, sync="relaxed", workers=2)
        assert _canonical(relaxed) == _canonical(strict)
        assert _canonical(threaded) == _canonical(relaxed)
        assert _observables(relaxed) == _observables(reference)
        assert _observables(threaded) == _observables(reference)


# ---------------------------------------------------------------------------
# The failover story itself
# ---------------------------------------------------------------------------


class TestSpanningTreeFailover:
    def _stp(self, run, name):
        return run.device(name).func.lookup("stp.ieee")

    def test_blocked_port_fails_over_and_traffic_reroutes(self):
        run = run_scenario(
            "ring/failover",
            params={"n_bridges": 4, "fail_at": 5.0, "recover_at": 0.0,
                    **FAST_TIMERS},
        )
        run.warm_up()
        blocked_before = {
            (name, port)
            for name in ("bridge1", "bridge2", "bridge3", "bridge4")
            for port, state in self._stp(run, name).snapshot()["port_states"].items()
            if state == "blocking"
        }
        assert len(blocked_before) == 1  # a physical loop: exactly one blocked port
        before = PingRunner(
            run.sim, run.host("left"), run.host("right").ip,
            payload_size=64, count=3, interval=0.1, identifier=1,
        ).run(start_time=run.sim.now)
        assert before.received == before.sent == 3
        # Through the failure, detection (max_age) and both forward delays.
        run.sim.run_until(5.0 + 2.5 + 2.0 * 1.0 + 1.0)
        states_after = {
            (name, port): state
            for name in ("bridge1", "bridge2", "bridge3", "bridge4")
            for port, state in self._stp(run, name).snapshot()["port_states"].items()
        }
        for name_port in blocked_before:
            assert states_after[name_port] == "forwarding"
        after = PingRunner(
            run.sim, run.host("left"), run.host("right").ip,
            payload_size=64, count=3, interval=0.1, identifier=2,
        ).run(start_time=run.sim.now)
        assert after.received == after.sent == 3  # rerouted the long way

    def test_convergence_probe_reports_the_episode(self):
        run = run_scenario(
            "ring/failover",
            params={"n_bridges": 5, "fail_at": 5.0, "recover_at": 0.0,
                    **FAST_TIMERS},
        )
        run.warm_up()
        probe = ConvergenceProbe(run.sim, network=run.network, fault_time=5.0)
        probe.start()
        PingRunner(
            run.sim, run.host("left"), run.host("right").ip, payload_size=64,
            count=30, interval=0.25, identifier=3,
        ).run(start_time=run.sim.now + 0.01)
        report = probe.report()
        # Detection rides on max-age expiry; reconvergence adds the two
        # forward-delay transitions.
        assert report.detection_s == pytest.approx(2.5, abs=0.3)
        assert report.reconvergence_s == pytest.approx(4.5, abs=0.3)
        assert report.transitions >= 3
        assert report.frames_lost > 0
        assert report.forwarding_restored_at == pytest.approx(9.5, abs=0.3)

    def test_node_crash_triggers_root_reelection(self):
        run = run_scenario(
            "ring/failover",
            params={"n_bridges": 4, "fail_at": 1e9, **FAST_TIMERS},
        )
        timeline = FaultTimeline().node_crash(5.0, "bridge1")
        timeline.install(run.network)
        run.warm_up()
        old_root = self._stp(run, "bridge1").snapshot()["root_mac"]
        assert self._stp(run, "bridge1").snapshot()["bridge_mac"] == old_root
        run.sim.run_until(5.0 + 2.5 + 2.0 * 1.0 + 1.5)
        # The surviving bridges agree on a new root that is not bridge1.
        roots = {
            self._stp(run, name).snapshot()["root_mac"]
            for name in ("bridge2", "bridge3", "bridge4")
        }
        assert len(roots) == 1
        assert roots.pop() != old_root
        assert all(
            not nic.up for nic in run.device("bridge1").interfaces.values()
        )


# ---------------------------------------------------------------------------
# Express-lane re-evaluation under faults (relaxed mode)
# ---------------------------------------------------------------------------


def _build_blast_ring(shards, sync, frames, timeline_builder):
    """Host-populated ring blast with a fault timeline installed pre-run."""
    run = run_scenario(
        "ring",
        params={"n_bridges": 3, "hosts_per_segment": 2},
        shards=shards, sync=sync,
    )
    timeline = timeline_builder()
    timeline.install(run.network)
    run.warm_up()
    states = []
    for segment_spec in run.spec.segments:
        left = run.host(f"{segment_spec.name}h1")
        right = run.host(f"{segment_spec.name}h2")
        forward = EthernetFrame(
            destination=right.mac, source=left.mac, ethertype=0x88B5,
            payload=b"\x00" * 64,
        )
        backward = EthernetFrame(
            destination=left.mac, source=right.mac, ethertype=0x88B5,
            payload=b"\x00" * 64,
        )
        state = [frames]
        states.append(state)

        def bounce(nic, reply, state=state):
            def handler(_nic, _frame):
                state[0] -= 1
                if state[0] > 0:
                    nic.send(reply)

            return handler

        inline = sync == "relaxed"
        left.nic.set_handler(bounce(left.nic, forward), inline_safe=inline)
        right.nic.set_handler(bounce(right.nic, backward), inline_safe=inline)
    seeds = [
        (run.host(f"{s.name}h1"),
         EthernetFrame(
             destination=run.host(f"{s.name}h2").mac,
             source=run.host(f"{s.name}h1").mac,
             ethertype=0x88B5, payload=b"\x00" * 64,
         ))
        for s in run.spec.segments
    ]
    return run, states, seeds, timeline


class TestExpressLaneReevaluation:
    """A segment whose remote ports go down mid-run must fall back /
    re-express deterministically in relaxed mode (and match strict)."""

    def _drive(self, sync):
        frames = 400
        warm = 31.0

        def build_timeline():
            timeline = FaultTimeline()
            # Mid-blast: every bridge crashes (all remote ports of the cut
            # segments go down -> segments become express-eligible), then
            # restarts (eligibility revoked again).
            for bridge in ("bridge1", "bridge2", "bridge3"):
                timeline.node_crash(warm + 0.002, bridge)
                timeline.node_restart(warm + 0.009, bridge)
            return timeline

        run, states, seeds, timeline = _build_blast_ring(
            2, sync, frames, build_timeline
        )
        express_log = []
        sim = run.sim
        cut = run.partition.cut_segments
        assert cut

        def snapshot(label):
            express_log.append(
                (label, {name: run.segment(name)._express for name in cut})
            )

        sim.schedule_at(warm + 0.004, lambda: snapshot("crashed"))
        sim.schedule_at(warm + 0.011, lambda: snapshot("restarted"))
        for host, frame in seeds:
            host.nic.send(frame)
        sim.run_until(warm + 0.016)
        return run, states, express_log, timeline

    def test_fall_back_and_re_express_matches_strict(self):
        strict_run, strict_states, strict_log, _ = self._drive("strict")
        relaxed_run, relaxed_states, relaxed_log, timeline = self._drive("relaxed")
        # In relaxed mode the cut segments flip to express while the bridges
        # are down and back off it after the restart.
        relaxed_flags = dict(relaxed_log)
        assert all(relaxed_flags["crashed"].values())
        assert not any(relaxed_flags["restarted"].values())
        assert timeline.stats()["applied"] == 6
        # ...and the run remains canonical-merge identical to strict.
        assert [s[0] for s in relaxed_states] == [s[0] for s in strict_states]
        assert _canonical(relaxed_run) == _canonical(strict_run)
        assert dict(relaxed_run.sim.trace.counters.by_category_source) == dict(
            strict_run.sim.trace.counters.by_category_source
        )

    def test_loss_model_vetoes_express_and_detach_restores(self):
        run = run_scenario(
            "ring",
            params={"n_bridges": 3, "hosts_per_segment": 2},
            shards=2, sync="relaxed",
        )
        run.warm_up()
        segment = run.segment("seg0")
        for device in run.devices:
            for nic in device.interfaces.values():
                nic.set_up(False)
        for host_name in ("seg0h1", "seg0h2"):
            run.host(host_name).nic.set_handler(lambda n, f: None, inline_safe=True)
        assert segment._express
        segment.set_fault_model(FrameLossModel(loss_rate=0.5, seed=1))
        assert not segment._express
        segment.set_fault_model(None)
        assert segment._express
        segment.set_link(False)
        assert not segment._express
        segment.set_link(True)
        assert segment._express


class TestCutDrainLinkDown:
    """Batched cut-segment service straddling a mid-window link failure.

    In relaxed mode a cut segment's mailed transmits are serviced in one
    batch at the barrier (``Segment._drain_cut``), so at the instant a
    scripted ``link-down`` fires the busy chain may extend *past* the fault:
    exactly the frames the classic path would still hold queued must be
    killed (parked deliveries cancelled, busy chain and counters rolled
    back) while already-popped frames keep arriving.  The episode below
    keeps the target segment's wire saturated (each bounce answers twice)
    and cycles the link three times, so several outages land inside a busy
    chain — and the run must stay canonical-merge identical to strict.
    """

    WARM = 31.0
    OUTAGES = (
        (WARM + 0.0021, WARM + 0.0034),
        (WARM + 0.0052, WARM + 0.0063),
        (WARM + 0.0081, WARM + 0.0092),
    )
    TARGET = "seg2"  # cut at shards=2 and shards=4 (deterministic partition)

    def _drive(self, shards, sync, workers=0, frames=400):
        run = run_scenario(
            "ring",
            params={"n_bridges": 3, "hosts_per_segment": 2},
            shards=shards, sync=sync, workers=workers,
        )
        timeline = FaultTimeline()
        for down, up in self.OUTAGES:
            timeline.link_down(down, self.TARGET)
            timeline.link_up(up, self.TARGET)
        timeline.install(run.network)
        run.warm_up()
        states = []
        for spec in run.spec.segments:
            left = run.host(f"{spec.name}h1")
            right = run.host(f"{spec.name}h2")
            forward = EthernetFrame(
                destination=right.mac, source=left.mac, ethertype=0x88B5,
                payload=b"\x00" * 64,
            )
            backward = EthernetFrame(
                destination=left.mac, source=right.mac, ethertype=0x88B5,
                payload=b"\x00" * 64,
            )
            state = [frames]
            states.append(state)
            # The target pair answers every delivery with *two* frames, so
            # its segment always has a queued frame behind the one on the
            # wire — the faults land mid-busy-chain instead of between
            # exchanges.
            burst = 2 if spec.name == self.TARGET else 1

            def bounce(nic, reply, state=state, burst=burst):
                def handler(_nic, _frame):
                    state[0] -= 1
                    if state[0] > 0:
                        for _ in range(burst):
                            nic.send(reply)

                return handler

            inline = sync == "relaxed"
            left.nic.set_handler(bounce(left.nic, forward), inline_safe=inline)
            right.nic.set_handler(bounce(right.nic, backward), inline_safe=inline)
            left.nic.send(forward)
        segment = run.segment(self.TARGET)
        stats = {"drains": 0, "kills": 0}
        if sync == "relaxed":
            assert self.TARGET in run.partition.cut_segments
            original_drain = segment._drain_cut
            original_set_link = segment.set_link

            def spying_drain():
                stats["drains"] += 1
                original_drain()

            def spying_set_link(up):
                before = len(segment._express_inflight)
                original_set_link(up)
                if not up:
                    stats["kills"] += before - len(segment._express_inflight)

            segment._drain_cut = spying_drain
            segment.set_link = spying_set_link
        run.sim.run_until(self.WARM + 0.012)
        return run, states, stats, segment

    @pytest.mark.parametrize("shards", [2, 4])
    def test_straddling_outage_matches_strict(self, shards):
        strict_run, strict_states, _, strict_seg = self._drive(shards, "strict")
        relaxed_run, relaxed_states, stats, relaxed_seg = self._drive(
            shards, "relaxed"
        )
        # The path under test genuinely ran: batched barrier service, and at
        # least one outage killed in-flight entries mid-chain.
        assert stats["drains"] > 0
        assert stats["kills"] > 0
        assert relaxed_seg.frames_lost == strict_seg.frames_lost > 0
        assert [s[0] for s in relaxed_states] == [s[0] for s in strict_states]
        assert _canonical(relaxed_run) == _canonical(strict_run)
        assert _observables(relaxed_run) == _observables(strict_run)

    def test_threaded_equals_sequential(self):
        sequential = self._drive(4, "relaxed")
        threaded = self._drive(4, "relaxed", workers=4)
        assert _canonical(threaded[0]) == _canonical(sequential[0])
        assert _observables(threaded[0]) == _observables(sequential[0])


# ---------------------------------------------------------------------------
# Segment-level fault semantics
# ---------------------------------------------------------------------------


class TestSegmentFaults:
    def _pair(self):
        spec = ScenarioSpec(
            name="pair/plain",
            segments=(SegmentSpec("lan1"),),
            hosts=(HostSpec("a", "lan1"), HostSpec("b", "lan1")),
        )
        run = run_scenario(spec)
        run.warm_up()
        return run

    def test_link_down_drops_at_sender_and_link_up_restores(self):
        run = self._pair()
        a, b = run.hosts
        segment = run.segment("lan1")
        segment.set_link(False)
        sent = EthernetFrame(
            destination=b.mac, source=a.mac, ethertype=0x88B5, payload=b"x" * 32
        )
        a.nic.send(sent)
        run.sim.run_for(0.01)
        assert segment.frames_lost == 1
        assert b.nic.frames_received == 0
        assert segment.sim.trace.count(category="segment.drop") == 1
        segment.set_link(True)
        a.nic.send(sent)
        run.sim.run_for(0.01)
        assert b.nic.frames_received == 1
        assert segment.frames_lost == 1

    def test_link_down_drains_queued_frames(self):
        run = self._pair()
        a, b = run.hosts
        segment = run.segment("lan1")
        frame = EthernetFrame(
            destination=b.mac, source=a.mac, ethertype=0x88B5,
            payload=b"x" * 1000,
        )
        # Queue several frames back-to-back, then cut the link while they
        # are still waiting for the medium.
        for _ in range(5):
            a.nic.send(frame)
        segment.set_link(False)
        run.sim.run_for(0.01)
        assert segment.frames_lost > 0
        assert b.nic.frames_received < 5

    def test_loss_model_is_seed_deterministic(self):
        def trial(seed):
            run = self._pair()
            segment = run.segment("lan1")
            segment.set_fault_model(FrameLossModel(loss_rate=0.5, seed=seed))
            a, b = run.hosts
            frame = EthernetFrame(
                destination=b.mac, source=a.mac, ethertype=0x88B5,
                payload=b"y" * 64,
            )
            pattern = []
            for _ in range(40):
                a.nic.send(frame)
                run.sim.run_for(0.001)
                pattern.append(b.nic.frames_received)
            return tuple(pattern)

        assert trial(3) == trial(3)
        assert trial(3) != trial(4)

    def test_corrupt_frames_counted_separately_and_not_delivered(self):
        run = self._pair()
        segment = run.segment("lan1")
        segment.set_fault_model(FrameLossModel(corrupt_rate=1.0, seed=0))
        a, b = run.hosts
        frame = EthernetFrame(
            destination=b.mac, source=a.mac, ethertype=0x88B5, payload=b"z" * 64
        )
        a.nic.send(frame)
        run.sim.run_for(0.01)
        assert segment.frames_corrupted == 1
        assert segment.frames_lost == 0
        assert segment.frames_carried == 1  # it did occupy the wire
        assert b.nic.frames_received == 0

    def test_degrade_slows_the_wire_and_restore_resets(self):
        run = self._pair()
        segment = run.segment("lan1")
        nominal = segment.serialization_delay(
            EthernetFrame(
                destination=run.hosts[1].mac, source=run.hosts[0].mac,
                ethertype=0x88B5, payload=b"p" * 1000,
            )
        )
        segment.set_degrade(bandwidth_scale=0.1, extra_delay=1e-3)
        frame = EthernetFrame(
            destination=run.hosts[1].mac, source=run.hosts[0].mac,
            ethertype=0x88B5, payload=b"p" * 1000,
        )
        assert segment.serialization_delay(frame) == pytest.approx(nominal * 10)
        assert segment.propagation_delay == pytest.approx(
            segment._nominal_propagation_delay + 1e-3
        )
        segment.set_degrade()  # neutral arguments restore nominal
        assert segment.serialization_delay(frame) == pytest.approx(nominal)
        assert segment.propagation_delay == segment._nominal_propagation_delay

    def test_degrade_validation(self):
        run = self._pair()
        segment = run.segment("lan1")
        with pytest.raises(TopologyError):
            segment.set_degrade(bandwidth_scale=0.0)
        with pytest.raises(TopologyError):
            segment.set_degrade(bandwidth_scale=1.5)
        with pytest.raises(TopologyError):
            segment.set_degrade(extra_delay=-1e-6)


# ---------------------------------------------------------------------------
# Specs, timelines, validation
# ---------------------------------------------------------------------------


class TestFaultSpecsAndTimeline:
    def test_fault_spec_validation(self):
        with pytest.raises(FaultError):
            FaultSpec("meteor-strike", 1.0, "lan1")
        with pytest.raises(FaultError):
            FaultSpec("link-down", -1.0, "lan1")
        with pytest.raises(FaultError):
            FaultSpec("frame-loss", 1.0, "lan1", rate=1.5)
        with pytest.raises(FaultError):
            FaultSpec("frame-loss", 1.0, "lan1", rate=0.7, corrupt_rate=0.7)
        with pytest.raises(FaultError):
            FaultSpec("degrade", 1.0, "lan1", bandwidth_scale=0.0)
        with pytest.raises(FaultError):
            FaultSpec("link-down", 1.0, "lan1", port="eth0")
        # frame-corrupt must be spelled with corrupt_rate: a mismatched
        # rate= would otherwise silently run a pure-loss experiment.
        with pytest.raises(FaultError):
            FaultSpec("frame-corrupt", 1.0, "lan1", rate=0.5)
        assert set(FAULT_KINDS) >= {"link-down", "node-crash", "degrade"}

    def test_scenario_spec_validates_fault_targets(self):
        base = dict(
            name="x",
            segments=(SegmentSpec("lan1"),),
            hosts=(HostSpec("h", "lan1"),),
            devices=(
                DeviceSpec(
                    "dev", kind="active-node", ports=(PortSpec("eth0", "lan1"),)
                ),
            ),
        )
        with pytest.raises(ValueError):
            ScenarioSpec(faults=(FaultSpec("link-down", 1.0, "nope"),), **base)
        with pytest.raises(ValueError):
            ScenarioSpec(faults=(FaultSpec("port-down", 1.0, "dev", port="eth9"),), **base)
        with pytest.raises(ValueError):
            ScenarioSpec(faults=(FaultSpec("node-crash", 1.0, "ghost"),), **base)
        ok = ScenarioSpec(
            faults=(
                FaultSpec("link-down", 1.0, "lan1"),
                FaultSpec("port-down", 1.0, "dev", port="eth0"),
                FaultSpec("node-crash", 1.0, "h"),
            ),
            **base,
        )
        assert len(ok.faults) == 3

    def test_timeline_resolution_errors(self):
        run = run_scenario("pair/direct")
        with pytest.raises(FaultError):
            FaultTimeline().link_down(1.0, "nope").install(run.network)
        run = run_scenario("pair/active-bridge", params={"include_spanning_tree": False})
        with pytest.raises(FaultError):
            FaultTimeline().port_down(1.0, "bridge").install(run.network)  # no port name
        with pytest.raises(FaultError):
            FaultTimeline().port_down(1.0, "bridge", "eth9").install(run.network)
        with pytest.raises(FaultError):
            FaultTimeline().node_crash(1.0, "ghost").install(run.network)

    def test_timeline_installs_once_and_orders_events(self):
        run = run_scenario("pair/direct")
        timeline = (
            FaultTimeline()
            .link_up(2.0, "lan1")
            .link_down(1.0, "lan1")
        )
        assert [event.kind for event in timeline.events] == ["link-down", "link-up"]
        timeline.install(run.network)
        with pytest.raises(FaultError):
            timeline.install(run.network)
        run.sim.run_until(3.0)
        assert [kind for _, kind in
                [(at, desc.split()[1]) for at, desc in timeline.applied]] == [
            "link-down", "link-up",
        ]
        assert run.segment("lan1").link_up

    def test_host_port_name_must_match_when_given(self):
        run = run_scenario("pair/direct")
        with pytest.raises(FaultError):
            FaultTimeline().port_down(0.5, "host1", "eth99").install(run.network)
        # The NIC's own name (full or short form) is accepted.
        FaultTimeline().port_down(0.5, "host1", "eth0").install(run.network)
        run.sim.run_until(0.7)
        assert not run.host("host1").nic.up

    def test_failover_ring_rejects_faulting_a_host_segment(self):
        with pytest.raises(ValueError):
            run_scenario(
                "ring/failover",
                params={"n_bridges": 4, "failed_segment": "seg0", **FAST_TIMERS},
            )
        # The minimum ring size defaults the fault away from the far host.
        run = run_scenario("ring/failover", params={"n_bridges": 3, **FAST_TIMERS})
        failed = run.faults.events[0].target
        host_segments = {host.segment for host in run.spec.hosts}
        assert failed not in host_segments

    def test_port_events_on_hosts_use_their_single_nic(self):
        run = run_scenario("pair/direct")
        FaultTimeline().port_down(0.5, "host1").port_up(1.0, "host1").install(
            run.network
        )
        run.sim.run_until(0.7)
        assert not run.host("host1").nic.up
        run.sim.run_until(1.2)
        assert run.host("host1").nic.up
        assert run.host("host1").nic.link_transitions == 2

    def test_run_scenario_faults_argument_extends_spec(self):
        run = run_scenario(
            "pair/direct", faults=[FaultSpec("link-down", 0.5, "lan1")]
        )
        run.sim.run_until(1.0)
        assert run.faults is not None
        assert not run.segment("lan1").link_up

    def test_matrix_expansion_sweeps_fault_axes(self):
        from repro.scenario import expand_matrix

        specs = expand_matrix("pair/lossy", {"loss_rate": [0.0, 0.2, 0.4]})
        rates = [spec.faults[0].rate for spec in specs]
        assert rates == [0.0, 0.2, 0.4]


# ---------------------------------------------------------------------------
# Zero-delivery windows: probes stay total during outages
# ---------------------------------------------------------------------------


class TestOutageRobustProbes:
    def test_ping_across_total_outage_reports_full_loss(self):
        run = run_scenario(
            "pair/direct", faults=[FaultSpec("link-down", 0.2, "lan1")]
        )
        run.warm_up()
        result = PingRunner(
            run.sim, run.hosts[0], run.hosts[1].ip, payload_size=64,
            count=5, interval=0.2,
        ).run(start_time=0.25)
        assert result.sent == 5
        assert result.received == 0
        assert result.loss_fraction == 1.0
        # No empty-mean() surprises: the summary of zero samples is zeros.
        assert result.mean_rtt_ms() == 0.0
        assert result.summary()["count"] == 0.0

    def test_counter_rate_probe_over_zero_delivery_window(self):
        run = run_scenario("pair/direct")
        run.warm_up()
        probe = CounterRateProbe(run.sim, category="node.forward")
        probe.start()
        run.sim.run_for(1.0)
        sample = probe.stop()
        assert sample.frames == 0
        assert sample.frames_per_second == 0.0

    def test_counter_rate_probe_clamps_after_trace_clear(self):
        run = run_scenario("pair/direct")
        run.warm_up()
        PingRunner(
            run.sim, run.hosts[0], run.hosts[1].ip, payload_size=64,
            count=2, interval=0.05,
        ).run(start_time=run.sim.now)
        probe = CounterRateProbe(run.sim, category="nic.rx")
        probe.start()
        run.sim.trace.clear()  # rewinds the live counters below the snapshot
        run.sim.run_for(0.5)
        sample = probe.stop()
        assert sample.frames == 0
        assert sample.frames_per_second == 0.0

    def test_zero_length_window_rate_is_zero(self):
        run = run_scenario("pair/direct")
        probe = CounterRateProbe(run.sim, category="nic.rx")
        probe.start()
        sample = probe.stop()  # no simulated time elapsed at all
        assert sample.frames_per_second == 0.0

    def test_convergence_probe_is_total_on_empty_episodes(self):
        run = run_scenario("pair/direct")
        run.warm_up()
        probe = ConvergenceProbe(run.sim, network=run.network)
        probe.start()
        run.sim.run_for(0.5)
        report = probe.report()
        assert report.detection_s is None
        assert report.reconvergence_s is None
        assert report.transitions == 0
        assert report.frames_lost == 0
        assert report.nic_frames_dropped == 0
