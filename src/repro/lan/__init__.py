"""LAN substrate: shared broadcast segments, NICs, hosts and topologies.

The paper's testbed is a set of 100 Mb/s Ethernet LANs joined by the active
bridge (Figures 6-8) plus a ring of bridges for the agility experiment
(Section 7.5).  This package models those pieces:

* :class:`~repro.lan.segment.Segment` — a shared half-duplex broadcast medium
  with configurable bandwidth and propagation delay;
* :class:`~repro.lan.nic.NetworkInterface` — an attachment point with a MAC
  address, promiscuous mode, and transmit/receive accounting;
* :class:`~repro.lan.host.Host` — an end station with a small protocol stack
  (Ethernet demux, IP, UDP, ICMP) used by the measurement tools;
* :class:`~repro.lan.topology.NetworkBuilder` — a convenience layer that
  builds the paper's topologies (two-LAN bridge setup, baseline single LAN,
  the three-bridge ring) in a few calls.
"""

from repro.lan.segment import Segment
from repro.lan.nic import NetworkInterface
from repro.lan.host import Host
from repro.lan.topology import NetworkBuilder, Network

__all__ = [
    "Segment",
    "NetworkInterface",
    "Host",
    "NetworkBuilder",
    "Network",
]
