"""The network loading path (Section 5.2).

"To overcome this limitation [the initial loader can only load switchlets
from disk], we load a network loader.  It consists of four layers.  The
lowest layer captures those Ethernet layer frames destined for an Ethernet
card installed on this machine.  It then demultiplexes these frames based on
the Ethernet protocol identifier.  The next layer implements a minimal IP ...
The next layer implements a minimal UDP in a similar fashion.  Finally, the
highest layer in this stack implements a TFTP server.  This server only
services write requests in binary format.  Any such file is taken to be a
Caml byte code file and, upon successful receipt, an attempt is made to
dynamically load and evaluate the file."

:class:`NetworkLoader` is that stack for an :class:`~repro.core.node.ActiveNode`:

* layer 1 — an address binding on the node's own interface MAC (frames
  destined for the node itself), demultiplexed by EtherType;
* layer 2 — the minimal IP of :mod:`repro.netstack.ip` (no fragmentation);
* layer 3 — the minimal UDP of :mod:`repro.netstack.udp`;
* layer 4 — the write-only TFTP server of :mod:`repro.netstack.tftp`, whose
  completed files are handed to the node's switchlet loader.

The loader also answers ICMP echo requests addressed to the node, which the
examples use to check that a remote node is alive before programming it.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.node import ActiveNode
from repro.core.unixnet import Packet, packet_bytes_to_frame
from repro.ethernet.ethertype import EtherType
from repro.ethernet.frame import EthernetFrame
from repro.ethernet.mac import MacAddress
from repro.exceptions import LoadError, ProtocolError, SwitchletError
from repro.netstack.icmp import IcmpMessage
from repro.netstack.ip import IPv4Address, IPv4Packet, IpProtocol
from repro.netstack.tftp import TFTP_PORT, TftpServer
from repro.netstack.udp import UdpDatagram


class NetworkLoader:
    """The Ethernet → IP → UDP → TFTP switchlet loading path for one node.

    Args:
        node: the active node to program.
        ip: the IP address the node answers on for loading traffic.
        interface: which of the node's interfaces "owns" the address
            (loading frames may still arrive on any interface, exactly as
            with a multi-homed Linux box).
        udp_port: the TFTP server port (69 by default).
    """

    def __init__(
        self,
        node: ActiveNode,
        ip: IPv4Address,
        interface: str = "eth0",
        udp_port: int = TFTP_PORT,
    ) -> None:
        self.node = node
        self.ip = ip
        self.interface = interface
        self.udp_port = udp_port
        self.mac = node.unixnet.interface_mac(interface)
        self.tftp = TftpServer(send=self._send_tftp, on_file=self._file_received)
        self._iport = node.unixnet.bind_addr(str(self.mac))
        node.unixnet.set_handler_in(self._iport, self._handle_packet)
        # Statistics
        self.switchlets_loaded = 0
        self.load_failures = 0
        self.last_error: Optional[str] = None

    # ------------------------------------------------------------------
    # Layer 1: Ethernet demultiplexing
    # ------------------------------------------------------------------

    def _handle_packet(self, packet: Packet) -> None:
        try:
            frame = packet_bytes_to_frame(packet.pkt)
        except ProtocolError:
            return
        if int(frame.ethertype) != int(EtherType.IPV4):
            return
        self._handle_ip(frame)

    # ------------------------------------------------------------------
    # Layer 2: minimal IP
    # ------------------------------------------------------------------

    def _handle_ip(self, frame: EthernetFrame) -> None:
        try:
            packet = IPv4Packet.decode(frame.payload)
        except ProtocolError:
            return
        if packet.destination != self.ip:
            return
        if packet.protocol == int(IpProtocol.UDP):
            self._handle_udp(frame, packet)
        elif packet.protocol == int(IpProtocol.ICMP):
            self._handle_icmp(frame, packet)

    def _handle_icmp(self, frame: EthernetFrame, packet: IPv4Packet) -> None:
        try:
            message = IcmpMessage.decode(packet.payload)
        except ProtocolError:
            return
        if not message.is_request:
            return
        reply = message.make_reply()
        self._send_ip(frame.source, packet.source, IpProtocol.ICMP, reply.encode())

    # ------------------------------------------------------------------
    # Layer 3: minimal UDP
    # ------------------------------------------------------------------

    def _handle_udp(self, frame: EthernetFrame, packet: IPv4Packet) -> None:
        try:
            datagram = UdpDatagram.decode(packet.payload, packet.source, packet.destination)
        except ProtocolError:
            return
        if datagram.destination_port != self.udp_port:
            return
        remote = (packet.source, datagram.source_port, frame.source)
        self.tftp.handle_datagram(datagram.payload, remote)

    # ------------------------------------------------------------------
    # Layer 4: TFTP -> dynamic load
    # ------------------------------------------------------------------

    def _send_tftp(self, payload: bytes, remote: Tuple) -> None:
        remote_ip, remote_port, remote_mac = remote
        datagram = UdpDatagram(
            source_port=self.udp_port, destination_port=remote_port, payload=payload
        )
        self._send_ip(
            remote_mac, remote_ip, IpProtocol.UDP, datagram.encode(self.ip, remote_ip)
        )

    def _file_received(self, filename: str, data: bytes) -> None:
        self.node.sim.trace.emit(
            self.node.name,
            "netloader.file",
            {"filename": filename, "bytes": len(data)},
        )
        try:
            self.node.load_switchlet_bytes(data)
        except SwitchletError as exc:
            # A bad module must not take the loader down; the paper's node
            # likewise survives a failed Dynlink.load.
            self.load_failures += 1
            self.last_error = str(exc)
            self.node.sim.trace.emit(
                self.node.name,
                "netloader.load_failed",
                {"filename": filename, "error": str(exc)},
            )
            return
        self.switchlets_loaded += 1
        self.node.sim.trace.emit(
            self.node.name, "netloader.load_ok", {"filename": filename}
        )

    # ------------------------------------------------------------------
    # Output helper
    # ------------------------------------------------------------------

    def _send_ip(
        self,
        destination_mac: MacAddress,
        destination_ip: IPv4Address,
        protocol: IpProtocol,
        payload: bytes,
    ) -> None:
        packet = IPv4Packet(
            source=self.ip,
            destination=destination_ip,
            protocol=int(protocol),
            payload=payload,
        )
        frame = EthernetFrame(
            destination=destination_mac,
            source=self.mac,
            ethertype=int(EtherType.IPV4),
            payload=packet.encode(),
        )
        # The network loader is node infrastructure (it is what loads the
        # switchlets), so it transmits through the node's own output path and
        # is charged the same transmit-side kernel crossing.
        self.node._transmit(self.interface, frame)
