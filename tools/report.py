"""Render a :class:`repro.telemetry.RunReport` for humans and scrapers.

Two input paths:

* a RunReport JSON file produced by ``ScenarioRun.report()`` (what the
  benchmark ``--report`` flags and the fuzz smoke write), or
* ``--scenario NAME`` to compile a catalog scenario with telemetry
  enabled, run it, and report on the fresh run.

Two output modes:

* the default console table — engine configuration, event counters, the
  wall-clock phase breakdown, per-segment statistics, express hit rates
  and the latency percentile summary;
* ``--prometheus`` — the metrics section in Prometheus text exposition
  format (``# HELP``/``# TYPE`` headers from
  :data:`repro.telemetry.METRIC_FAMILIES`), suitable for a textfile
  collector.

Usage::

    PYTHONPATH=src python tools/report.py population_smoke_report.json
    PYTHONPATH=src python tools/report.py --scenario ring --shards 4 --sync relaxed
    PYTHONPATH=src python tools/report.py run.json --prometheus --out metrics.prom
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.telemetry.report import RunReport  # noqa: E402


def load_report(path: Path) -> RunReport:
    """Reconstruct a :class:`RunReport` from its JSON document."""
    data = json.loads(path.read_text())
    known = {f for f in RunReport.__dataclass_fields__}
    return RunReport(**{k: v for k, v in data.items() if k in known})


def run_scenario_report(args: argparse.Namespace) -> RunReport:
    """Compile and run a catalog scenario with telemetry on, then report."""
    from repro.scenario import run_scenario

    params = json.loads(args.params) if args.params else None
    run = run_scenario(
        args.scenario,
        params=params,
        seed=args.seed,
        shards=args.shards,
        sync=args.sync,
        backend=args.backend,
        telemetry=True,
    )
    if run.backend == "process":
        run.warm_up()
    run.sim.run_until(args.run_for)
    return run.report()


# ----------------------------------------------------------------------
# Console rendering
# ----------------------------------------------------------------------


def _rows(title: str, rows: list) -> str:
    """A two-column aligned block with a section title."""
    if not rows:
        return ""
    width = max(len(str(k)) for k, _ in rows)
    body = "\n".join(f"  {str(k):<{width}}  {v}" for k, v in rows)
    return f"{title}\n{body}\n"


def _fmt_seconds(value: float) -> str:
    return f"{value * 1e3:.3f} ms"


def render_console(report: RunReport) -> str:
    """The console table for one report."""
    parts = []
    engine = report.engine or {}
    parts.append(
        _rows(
            f"run: {report.scenario} (seed={report.seed})",
            [
                ("engine", engine.get("mode", "?")),
                ("shards", engine.get("shards", 1)),
                ("sync", engine.get("sync", "")),
                ("backend", engine.get("backend", "")),
                ("sim time", f"{report.sim_time_s:.6f} s"),
                ("telemetry", "on" if report.telemetry_enabled else "off"),
            ],
        )
    )

    event_rows = sorted((report.events or {}).items())
    parts.append(_rows("events", event_rows))

    if report.fabric:
        parts.append(_rows("fabric", sorted(report.fabric.items())))

    if report.wall:
        wall = report.wall
        rows = [
            (phase, _fmt_seconds(wall.get(f"{phase}_s", 0.0)))
            for phase in ("compute", "barrier", "pipe", "plan")
        ]
        rows.append(("total", _fmt_seconds(wall.get("total_s", 0.0))))
        rows.append(("attributed", _fmt_seconds(wall.get("attributed_s", 0.0))))
        rows.append(("windows", wall.get("windows", 0)))
        parts.append(_rows("wall breakdown", rows))

    if report.segments:
        header = (
            "segment",
            "frames",
            "bytes",
            "lost",
            "corrupt",
            "coalesced",
            "util",
            "express",
        )
        table = [header]
        for name, stats in report.segments.items():
            table.append(
                (
                    name,
                    stats.get("frames_carried", 0),
                    stats.get("bytes_carried", 0),
                    stats.get("frames_lost", 0),
                    stats.get("frames_corrupted", 0),
                    stats.get("frames_coalesced", 0),
                    f"{stats.get('utilization', 0.0):.4f}",
                    stats.get("express_mode", "off"),
                )
            )
        widths = [max(len(str(row[i])) for row in table) for i in range(len(header))]
        lines = [
            "  " + "  ".join(f"{str(cell):<{widths[i]}}" for i, cell in enumerate(row))
            for row in table
        ]
        parts.append("segments\n" + "\n".join(lines) + "\n")

    express = report.express or {}
    if express.get("frames_total"):
        rows = [("frames total", express["frames_total"])]
        for mode, count in sorted(express.get("frames_by_mode", {}).items()):
            rate = express.get("hit_rates", {}).get(mode)
            suffix = f"  ({rate:.1%})" if rate is not None else ""
            rows.append((f"mode {mode}", f"{count}{suffix}"))
        rows.append(("coalesced", express.get("frames_coalesced", 0)))
        parts.append(_rows("express", rows))

    if report.drops:
        parts.append(_rows("drops", sorted(report.drops.items())))

    if report.latency_ns:
        lat = report.latency_ns
        rows = [("samples", int(lat.get("count", 0)))]
        for key in ("min", "p50", "p95", "p99", "max", "mean"):
            if key in lat:
                rows.append((key, f"{lat[key] / 1e6:.3f} ms"))
        parts.append(_rows("latency (rtt)", rows))

    metrics = report.metrics or {}
    n_samples = sum(len(metrics.get(kind) or {}) for kind in ("counters", "gauges", "histograms"))
    if n_samples:
        parts.append(f"metrics: {n_samples} samples (use --prometheus to export)\n")

    return "\n".join(p for p in parts if p)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "report",
        nargs="?",
        type=Path,
        help="RunReport JSON file (omit when using --scenario)",
    )
    parser.add_argument("--scenario", help="run this catalog scenario live instead")
    parser.add_argument("--params", help="scenario params as a JSON object")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument("--sync", default="relaxed", choices=("strict", "relaxed"))
    parser.add_argument("--backend", default="thread", choices=("thread", "process"))
    parser.add_argument(
        "--run-for", type=float, default=2.0, help="simulated seconds to run (live mode)"
    )
    parser.add_argument(
        "--prometheus",
        action="store_true",
        help="emit Prometheus text exposition format instead of the table",
    )
    parser.add_argument("--out", type=Path, help="write output here instead of stdout")
    args = parser.parse_args(argv)

    if (args.report is None) == (args.scenario is None):
        parser.error("provide exactly one of: a report JSON path, or --scenario")

    if args.scenario:
        report = run_scenario_report(args)
    else:
        report = load_report(args.report)

    text = report.to_prometheus() if args.prometheus else render_console(report)
    if args.out:
        args.out.write_text(text)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
