"""Compiling a :class:`ScenarioSpec` into a live network.

The compiler replays a spec as the exact sequence of
:class:`~repro.lan.topology.NetworkBuilder` calls the hand-written setup
functions used to make — segments, hosts, static ARP warm-up, ``build()``,
then devices in declaration order — so a spec-driven experiment is
bit-identical to its legacy builder equivalent.  The result is a
:class:`ScenarioRun`: the assembled network plus typed accessors and the
adapters (:meth:`ScenarioRun.as_pair`, :meth:`ScenarioRun.as_ring`) the
measurement tools consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.baselines.c_repeater import BufferedRepeater
from repro.baselines.static_bridge import StaticLearningBridge
from repro.core.node import ActiveNode
from repro.costs.model import CostModel
from repro.lan.host import Host
from repro.lan.segment import Segment
from repro.lan.topology import Network, NetworkBuilder
from repro.scenario.spec import (
    DeviceSpec,
    ScenarioSpec,
    SPANNING_TREE_WARMUP,
)
from repro.switchlets.packaging import (
    control_package,
    dec_spanning_tree_package,
    dumb_bridge_package,
    learning_bridge_package,
    spanning_tree_package,
    vlan_bridge_package,
)

#: Switchlet catalog: spec name -> factory(environment, **params) -> package.
SWITCHLET_CATALOG: Dict[str, Callable] = {
    "dumb-bridge": dumb_bridge_package,
    "learning-bridge": learning_bridge_package,
    "spanning-tree": spanning_tree_package,
    "dec-spanning-tree": dec_spanning_tree_package,
    "control": control_package,
    "vlan-bridge": vlan_bridge_package,
}


@dataclass
class PairSetup:
    """A two-host configuration ready for ping/ttcp measurements.

    Attributes:
        network: the assembled network.
        left / right: the two measurement hosts.
        device: the interconnecting device (``None`` for the direct baseline).
        ready_time: simulated time after which the path is forwarding (the
            spanning-tree configurations need ~30 s of warm-up).
        label: short name used in benchmark output.
    """

    network: Network
    left: Host
    right: Host
    device: Optional[object]
    ready_time: float
    label: str


@dataclass
class RingSetup:
    """The Section 7.5 ring of active bridges.

    Attributes:
        network: the assembled network.
        bridges: the active bridges, in chain order.
        left_segment / right_segment: the end segments the measurement
            host's two NICs attach to.
        ready_time: time by which the old (DEC) protocol has converged.
    """

    network: Network
    bridges: List[ActiveNode] = field(default_factory=list)
    left_segment: Optional[Segment] = None
    right_segment: Optional[Segment] = None
    ready_time: float = SPANNING_TREE_WARMUP


@dataclass
class ScenarioRun:
    """A compiled, live scenario: the network plus spec-aware accessors.

    Attributes:
        spec: the spec this run was compiled from.
        network: the assembled :class:`~repro.lan.topology.Network`.
        ready_time: simulated time after which the data path is forwarding.
    """

    spec: ScenarioSpec
    network: Network
    ready_time: float

    # -- accessors ----------------------------------------------------------

    @property
    def sim(self):
        """The shared simulator."""
        return self.network.sim

    def host(self, name: str) -> Host:
        """Look up a host by name."""
        return self.network.host(name)

    def segment(self, name: str) -> Segment:
        """Look up a segment by name."""
        return self.network.segment(name)

    def device(self, name: str) -> object:
        """Look up a device (station) by name."""
        return self.network.station(name)

    @property
    def hosts(self) -> List[Host]:
        """Hosts in spec declaration order."""
        return [self.network.host(spec.name) for spec in self.spec.hosts]

    @property
    def devices(self) -> List[object]:
        """Devices in spec declaration order."""
        return [self.network.station(spec.name) for spec in self.spec.devices]

    def run_until(self, until_seconds: float) -> int:
        """Convenience passthrough to :meth:`Simulator.run_until`."""
        return self.network.run_until(until_seconds)

    def warm_up(self) -> None:
        """Run the simulator up to the scenario's ready time."""
        self.network.run_until(self.ready_time)

    # -- measurement adapters ----------------------------------------------

    def as_pair(self) -> PairSetup:
        """View this run as a two-host measurement pair.

        Requires exactly two hosts; the first declared device (if any) is the
        interconnect under test.
        """
        if len(self.spec.hosts) != 2:
            raise ValueError(
                f"scenario {self.spec.name!r} has {len(self.spec.hosts)} hosts; "
                "a pair setup needs exactly two"
            )
        devices = self.devices
        return PairSetup(
            network=self.network,
            left=self.network.host(self.spec.hosts[0].name),
            right=self.network.host(self.spec.hosts[1].name),
            device=devices[0] if devices else None,
            ready_time=self.ready_time,
            label=self.spec.display_label,
        )

    def as_ring(self) -> RingSetup:
        """View this run as the Section 7.5 bridge chain.

        The devices (in declaration order) are the chain; the first and last
        declared segments are the ends the measurement host's NICs close.
        """
        if not self.spec.segments or not self.spec.devices:
            raise ValueError(
                f"scenario {self.spec.name!r} has no devices/segments; "
                "a ring setup needs a bridge chain"
            )
        return RingSetup(
            network=self.network,
            bridges=self.devices,
            left_segment=self.network.segment(self.spec.segments[0].name),
            right_segment=self.network.segment(self.spec.segments[-1].name),
            ready_time=self.ready_time,
        )


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


def _build_switchlet(environment, spec) -> object:
    try:
        factory = SWITCHLET_CATALOG[spec.name]
    except KeyError as exc:
        raise ValueError(
            f"unknown switchlet {spec.name!r}; catalog has "
            f"{sorted(SWITCHLET_CATALOG)}"
        ) from exc
    return factory(environment, **dict(spec.params))


def _vlan_port_config(device: DeviceSpec) -> Dict[str, Dict[str, object]]:
    config: Dict[str, Dict[str, object]] = {}
    for port in device.ports:
        if port.mode == "trunk":
            allowed = None if port.allowed_vlans is None else list(port.allowed_vlans)
            config[port.name] = {"mode": "trunk", "allowed": allowed}
        else:
            config[port.name] = {"mode": "access", "vlan": int(port.vlan)}
    return config


def _instantiate_device(network: Network, device: DeviceSpec) -> object:
    if device.kind == "repeater":
        station = BufferedRepeater(network.sim, device.name, cost_model=network.cost_model)
        for port in device.ports:
            station.add_interface(port.name, network.segment(port.segment))
        return station
    if device.kind == "static-bridge":
        station = StaticLearningBridge(network.sim, device.name, cost_model=network.cost_model)
        for port in device.ports:
            station.add_interface(port.name, network.segment(port.segment))
        return station
    node = ActiveNode(network.sim, device.name, cost_model=network.cost_model)
    for port in device.ports:
        node.add_interface(port.name, network.segment(port.segment))
    environment = node.environment.modules
    for switchlet in device.switchlets:
        node.load_switchlet(_build_switchlet(environment, switchlet))
    if any(switchlet.name == "vlan-bridge" for switchlet in device.switchlets):
        node.func.call("bridge.vlan.configure", _vlan_port_config(device))
    return node


def _arp_groups(spec: ScenarioSpec) -> List[List[str]]:
    """Host-name groups that should know each other's MAC addresses.

    Hosts are grouped by VLAN: untagged hosts (``vlan=None``) form one
    classic broadcast domain, and each VLAN forms its own.  Group and member
    order follow host declaration order, so ARP warm-up is deterministic.
    """
    groups: Dict[object, List[str]] = {}
    for host in spec.hosts:
        groups.setdefault(host.vlan, []).append(host.name)
    return list(groups.values())


def compile_spec(
    spec: ScenarioSpec,
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    trace_sinks=None,
) -> ScenarioRun:
    """Compile ``spec`` into a live :class:`ScenarioRun`.

    The call sequence mirrors the legacy hand-written builders exactly:
    segments, hosts, static ARP, ``build()``, then devices in declaration
    order — so address allocation, switchlet load order and therefore every
    simulated timestamp match the pre-fabric code path.
    """
    builder = NetworkBuilder(seed=seed, cost_model=cost_model, trace_sinks=trace_sinks)
    for segment in spec.segments:
        builder.add_segment(
            segment.name,
            bandwidth_bps=segment.bandwidth_bps,
            propagation_delay=segment.propagation_delay,
        )
    for host in spec.hosts:
        builder.add_host(host.name, host.segment, ip=host.ip)
    if spec.static_arp and spec.hosts:
        for group in _arp_groups(spec):
            builder.populate_static_arp(group)
    network = builder.build()
    for device in spec.devices:
        builder.register_station(device.name, _instantiate_device(network, device))
    return ScenarioRun(spec=spec, network=network, ready_time=spec.ready_time)
