"""Programming a remote node over the network (Section 5.2 of the paper).

An administrator host ships the bridge switchlets to an unprogrammed active
node using the paper's loading path — minimal IP, minimal UDP, and a TFTP
server that accepts binary write requests and dynamically loads whatever it
receives — and then ships a third switchlet *in-band* as a capsule frame that
every listening node on the LAN loads at once.

Run with:  python examples/network_programming.py
"""

from __future__ import annotations

from repro import ActiveNode, NetworkBuilder
from repro.core.capsule import CapsuleReceiver, encode_capsule
from repro.core.netloader import NetworkLoader
from repro.core.switchlet import SwitchletPackage
from repro.measurement.ping import PingRunner
from repro.netstack.ip import IPv4Address
from repro.netstack.tftp import TFTP_PORT, TftpClient
from repro.switchlets.packaging import dumb_bridge_package, learning_bridge_package


def ship_over_tftp(network, admin, node_ip, package, client_port):
    """Write one switchlet package to the node's TFTP loader."""
    outcome = []
    client = TftpClient(
        send=lambda data, remote: admin.send_udp(node_ip, TFTP_PORT, client_port, data),
        filename=f"{package.name}.bin",
        data=package.to_bytes(),
        remote=(node_ip, TFTP_PORT),
        on_complete=outcome.append,
    )
    admin.bind_udp(client_port, lambda data, remote: client.handle_datagram(data, remote))
    started = network.sim.now
    client.start()
    network.sim.run_until(network.sim.now + 5.0)
    elapsed = network.sim.now - started
    print(f"  TFTP write of {package.name!r} ({len(package.to_bytes())} bytes): "
          f"{'ok' if outcome == [True] else 'FAILED'} ")
    return elapsed


def main() -> None:
    builder = NetworkBuilder(seed=2)
    builder.add_segment("lan1")
    builder.add_segment("lan2")
    admin = builder.add_host("admin", "lan1")
    far = builder.add_host("far-host", "lan2")
    builder.populate_static_arp()
    network = builder.build()

    node = ActiveNode(network.sim, "remote-bridge")
    node.add_interface("eth0", network.segment("lan1"))
    node.add_interface("eth1", network.segment("lan2"))
    node_ip = IPv4Address.from_string("10.0.0.100")
    NetworkLoader(node, node_ip, interface="eth0")
    CapsuleReceiver(node)
    admin.stack.add_static_arp(node_ip, node.interface("eth0").mac)

    print("1. The node is reachable (the network loader answers ICMP echoes):")
    probe = PingRunner(network.sim, admin, node_ip, payload_size=64, count=2, interval=0.1)
    result = probe.run(start_time=0.1)
    print(f"  {result.received}/{result.sent} replies from {node_ip}")

    print("2. Ship the bridge switchlets over Ethernet/IP/UDP/TFTP:")
    environment = node.environment.modules
    ship_over_tftp(network, admin, node_ip, dumb_bridge_package(environment), 4100)
    ship_over_tftp(network, admin, node_ip, learning_bridge_package(environment), 4102)
    print(f"  node now reports loaded switchlets: {node.loader.loaded_names()}")

    print("3. The freshly programmed node forwards between its LANs:")
    crossing = PingRunner(network.sim, admin, far.ip, payload_size=256, count=3, interval=0.1)
    result = crossing.run(start_time=network.sim.now + 0.1)
    print(f"  {result.received}/{result.sent} replies across the bridge, "
          f"mean RTT {result.mean_rtt_ms():.3f} ms")

    print("4. Ship a diagnostic switchlet in-band, as a capsule frame:")
    diagnostic = SwitchletPackage.build(
        "frame-counter",
        # The switchlet registers a hook and a query function; it can only
        # name what the thinned environment exposes.
        "_count = {'frames': 0}\n"
        "def _query():\n"
        "    return _count['frames']\n"
        "_previous = Func.lookup('bridge.switch')\n"
        "def _counting_switch(in_port, pkt):\n"
        "    _count['frames'] = _count['frames'] + 1\n"
        "    _previous(in_port, pkt)\n"
        "Func.register('bridge.switch', _counting_switch)\n"
        "Func.register('diagnostic.frame_count', _query)\n",
        node.environment.modules,
    )
    network.sim.schedule(0.1, lambda: admin.send_raw_frame(
        encode_capsule(diagnostic, admin.mac)))
    network.sim.run_until(network.sim.now + 1.0)
    print(f"  loaded: {node.loader.loaded_names()}")

    PingRunner(network.sim, admin, far.ip, payload_size=64, count=5, interval=0.1,
               identifier=0x77).run(start_time=network.sim.now + 0.1)
    print(f"  frames seen by the in-band diagnostic switchlet: "
          f"{node.func.call('diagnostic.frame_count')}")


if __name__ == "__main__":
    main()
