"""Calibrated cost model for the user-space frame path.

The paper's performance results are dominated by software costs: the Linux
kernel path into and out of user space, the Caml byte-code interpreter, and
the bridge logic itself ("Additional instrumentation showed a cost per frame
within Caml of 0.47 ms on average during a ttcp trial", Section 7.3).  The
reproduction runs on a simulator, so those costs are *modelled*: every frame
crossing a node is charged per-frame and per-byte costs drawn from
:class:`~repro.costs.model.CostModel`, whose defaults are calibrated from the
paper's measurements (see :mod:`repro.costs.calibration`).

Processing is serialized through a :class:`~repro.costs.cpu.CpuQueue`
(one frame at a time, like the single bridge thread in the prototype), which
is what produces the ~1800 frames/second ceiling.
"""

from repro.costs.model import CostModel
from repro.costs.cpu import CpuQueue
from repro.costs import calibration

__all__ = ["CostModel", "CpuQueue", "calibration"]
