"""Module interface signatures and digests.

Caml includes, in every byte-code file, an MD5 digest of the interfaces the
module was compiled against and of the interface it exports; the dynamic
linker refuses to link a module whose digests do not match the running
program ("If the other module were compiled against a signature built by an
attacker that included some private objects, a link time error would result
because the signatures would not match", Section 5.1.1).

The reproduction keeps the same mechanism: every thinned environment module
has an *interface* — the sorted list of names it exports — and the digest of
that interface is an MD5 over a canonical rendering of those names.  A
switchlet package records the digests of the interfaces it requires; the
loader recomputes the digests of the modules it actually provides and refuses
to load on any mismatch.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Mapping


def interface_of(module: object) -> tuple:
    """Return the exported interface of a (thinned) module object.

    The interface is the sorted tuple of public attribute names.  Thinned
    modules (:class:`repro.core.thinning.ThinnedModule`) expose exactly the
    names the thinner allowed, so this *is* their signature.
    """
    exports = getattr(module, "__exports__", None)
    if exports is not None:
        return tuple(sorted(exports))
    names = [name for name in dir(module) if not name.startswith("_")]
    return tuple(sorted(names))


def digest_interface(names: Iterable[str]) -> str:
    """MD5 digest of an interface (a collection of exported names)."""
    canonical = "\n".join(sorted(names)).encode("utf-8")
    return hashlib.md5(canonical).hexdigest()


def digest_module(module: object) -> str:
    """MD5 digest of a module object's exported interface."""
    return digest_interface(interface_of(module))


def digest_source(source: str) -> str:
    """MD5 digest of a switchlet's source text (the exported-interface analogue).

    For a switchlet, "what it exports" is the code it will register; hashing
    the source gives load-time integrity checking for the shipped unit, the
    same role the byte-code's own MD5 plays in Caml.
    """
    return hashlib.md5(source.encode("utf-8")).hexdigest()


def environment_digests(environment: Mapping[str, object]) -> Dict[str, str]:
    """Digest every module in an environment, keyed by module name."""
    return {name: digest_module(module) for name, module in environment.items()}
