"""Frame-rate measurement (Section 7.3).

The paper reports forwarding rates for the active bridge of roughly 360
frames/second for ~50-byte frames up to ~1790 frames/second for 1024-byte
frames, and derives a ~2100 frames/second ceiling from the measured 0.47 ms
per-frame cost inside Caml.  :class:`FrameRateProbe` measures the realized
forwarding rate of any station that exposes a transmitted-frame counter, and
:func:`interpreter_ceiling` reports the cost-model ceiling for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.costs.model import CostModel
from repro.sim.engine import Simulator
from repro.sim.trace import CounterWindow


def _transmitted_count(station: object) -> int:
    """Read a station's forwarded/transmitted frame counter, whatever it is called."""
    for attribute in ("frames_transmitted", "frames_repeated", "frames_forwarded"):
        if hasattr(station, attribute):
            return int(getattr(station, attribute))
    raise AttributeError(
        f"station {station!r} exposes no transmitted-frame counter"
    )


@dataclass
class FrameRateSample:
    """One measured interval.

    Attributes:
        frames: frames forwarded during the interval.
        elapsed: interval length in seconds.
    """

    frames: int
    elapsed: float

    @property
    def frames_per_second(self) -> float:
        """The realized forwarding rate.

        Total for degenerate windows: a zero-length or zero-delivery
        interval (every frame lost to an outage) reports ``0.0``, and a
        negative frame delta (the trace or a station counter was reset
        mid-window) saturates at ``0.0`` instead of reporting a negative
        rate.
        """
        if self.elapsed <= 0 or self.frames <= 0:
            return 0.0
        return self.frames / self.elapsed


class FrameRateProbe:
    """Measure a station's forwarding rate over an interval of simulated time."""

    def __init__(self, sim: Simulator, station: object) -> None:
        self.sim = sim
        self.station = station
        self._start_count: Optional[int] = None
        self._start_time: Optional[float] = None

    def start(self) -> None:
        """Snapshot the counter at the start of the interval."""
        self._start_count = _transmitted_count(self.station)
        self._start_time = self.sim.now

    def stop(self) -> FrameRateSample:
        """Snapshot again and return the interval's sample.

        Robust to outage windows: a station that forwarded nothing (or whose
        counter was reset mid-window) yields a zero-rate sample rather than
        a division surprise downstream.
        """
        if self._start_count is None or self._start_time is None:
            raise RuntimeError("FrameRateProbe.stop() called before start()")
        frames = max(0, _transmitted_count(self.station) - self._start_count)
        elapsed = self.sim.now - self._start_time
        return FrameRateSample(frames=frames, elapsed=elapsed)


class CounterRateProbe:
    """Measure an event rate from the trace hub's live counters.

    Where :class:`FrameRateProbe` needs direct access to the station object,
    this probe only needs the station's trace *source name* (or none, to
    measure a whole-network category rate) — measurement stays external to
    the component, exactly as the paper instruments its bridge, but with O(1)
    counter reads instead of post-hoc trace scans.

    Args:
        sim: the simulator.
        category: the trace category to rate (e.g. ``"node.forward"``).
        source: optional source filter (e.g. ``"bridge1"``).
    """

    def __init__(
        self, sim: Simulator, category: str = "node.forward", source: Optional[str] = None
    ) -> None:
        self.sim = sim
        self.category = category
        self.source = source
        self._window: Optional[CounterWindow] = None
        self._start_time: Optional[float] = None

    def start(self) -> None:
        """Open the counter window at the start of the interval."""
        self._window = CounterWindow(self.sim.trace)
        self._start_time = self.sim.now

    def stop(self) -> FrameRateSample:
        """Read the counter delta and return the interval's sample.

        Robust to zero-delivery windows during an outage: no matching
        records (or a trace cleared mid-window, which rewinds the live
        counters) yields a zero-rate sample — never a negative count or a
        division error.
        """
        if self._window is None or self._start_time is None:
            raise RuntimeError("CounterRateProbe.stop() called before start()")
        frames = max(
            0, self._window.count(category=self.category, source=self.source)
        )
        elapsed = self.sim.now - self._start_time
        return FrameRateSample(frames=frames, elapsed=elapsed)


def interpreter_ceiling(cost_model: CostModel, frame_bytes: int) -> float:
    """The frames/second ceiling implied by the interpreter cost alone.

    This is the paper's "limiting rate of 2100 frames per second ... before
    accounting for operating system and transmission overheads" computed from
    the in-Caml per-frame cost.
    """
    return cost_model.interpreter_frame_rate_ceiling(frame_bytes)


def bridge_ceiling(cost_model: CostModel, frame_bytes: int) -> float:
    """The frames/second ceiling of the full bridge path (kernel + interpreter)."""
    return cost_model.bridge_frame_rate_ceiling(frame_bytes)
