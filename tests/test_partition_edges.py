"""Edge cases of the segment-graph partitioner and the partition spec.

``plan_partition`` carries the invariants the sharded engines rely on: the
shard count is clamped so no shard sits segment-less, hosts ride with their
segment and devices with their first port's segment, cut segments are
exactly the cross-shard coupling points, and the conservative lookahead is
the minimum cross-shard handoff latency.  These tests pin each of those at
the boundaries.
"""

import pytest

from repro.ethernet.frame import MIN_WIRE_LENGTH
from repro.scenario import (
    DeviceSpec,
    HostSpec,
    PartitionSpec,
    PortSpec,
    ScenarioSpec,
    SegmentSpec,
    SwitchletSpec,
    plan_partition,
)
from repro.sim.clock import seconds_to_ns

BRIDGE_STACK = (SwitchletSpec("dumb-bridge"), SwitchletSpec("learning-bridge"))


def _bridge(name, left, right):
    return DeviceSpec(
        name=name,
        ports=(PortSpec("eth0", left), PortSpec("eth1", right)),
        switchlets=BRIDGE_STACK,
    )


def _chain(n_segments, hosts_per_segment=1, propagation_delay=2e-6,
           bandwidth_bps=1e8):
    """``s0 -b0- s1 -b1- s2 ...`` with hosts spread over the segments."""
    segments = tuple(
        SegmentSpec(f"s{index}", bandwidth_bps=bandwidth_bps,
                    propagation_delay=propagation_delay)
        for index in range(n_segments)
    )
    hosts = tuple(
        HostSpec(f"h{index}-{k}", f"s{index}")
        for index in range(n_segments)
        for k in range(hosts_per_segment)
    )
    devices = tuple(
        _bridge(f"b{index}", f"s{index}", f"s{index + 1}")
        for index in range(n_segments - 1)
    )
    return ScenarioSpec(
        name=f"chain-{n_segments}", segments=segments, hosts=hosts,
        devices=devices,
    )


class TestShardClamping:
    def test_shards_are_clamped_to_the_segment_count(self):
        plan = plan_partition(_chain(2), 8)
        assert plan.n_shards == 2
        assert set(plan.assignments.values()) == {0, 1}

    def test_single_segment_falls_back_to_the_single_engine(self):
        plan = plan_partition(_chain(1), 4)
        assert plan.n_shards == 1
        assert set(plan.assignments.values()) == {0}
        assert plan.cut_segments == ()
        assert plan.lookahead_ns is None

    def test_segmentless_spec_falls_back_to_the_single_engine(self):
        spec = ScenarioSpec(name="empty")
        plan = plan_partition(spec, 3)
        assert plan.n_shards == 1
        assert plan.assignments == {}

    def test_fewer_than_one_shard_is_rejected(self):
        with pytest.raises(ValueError, match="at least one shard"):
            plan_partition(_chain(2), 0)

    def test_int_partition_matches_default_partition_spec(self):
        spec = _chain(3)
        assert plan_partition(spec, 2) == plan_partition(
            spec, PartitionSpec(shards=2)
        )


class TestPlacement:
    def test_every_shard_gets_a_segment_despite_skewed_weights(self):
        # s0 carries almost all the attachment weight; without the
        # force-advance rule the balancer would give every segment to
        # shard 0 and leave the rest idle.
        spec = _chain(4)
        heavy = spec.hosts + tuple(HostSpec(f"extra{k}", "s0") for k in range(20))
        spec = ScenarioSpec(name=spec.name, segments=spec.segments, hosts=heavy,
                            devices=spec.devices)
        plan = plan_partition(spec, 4)
        assert plan.n_shards == 4
        segment_shards = {plan.assignments[f"s{index}"] for index in range(4)}
        assert segment_shards == {0, 1, 2, 3}

    def test_hosts_follow_their_segment(self):
        plan = plan_partition(_chain(4, hosts_per_segment=2), 4)
        for host_index in range(4):
            for k in range(2):
                assert (
                    plan.assignments[f"h{host_index}-{k}"]
                    == plan.assignments[f"s{host_index}"]
                )

    def test_devices_follow_their_first_port_segment(self):
        plan = plan_partition(_chain(4), 4)
        for index in range(3):
            assert plan.assignments[f"b{index}"] == plan.assignments[f"s{index}"]

    def test_disjoint_segments_produce_no_cuts(self):
        spec = ScenarioSpec(
            name="islands",
            segments=(SegmentSpec("s0"), SegmentSpec("s1")),
            hosts=(HostSpec("h0", "s0"), HostSpec("h1", "s1")),
        )
        plan = plan_partition(spec, 2)
        assert plan.n_shards == 2
        assert plan.cut_segments == ()
        assert plan.lookahead_ns is None

    def test_bridge_chain_cuts_exactly_at_chunk_boundaries(self):
        plan = plan_partition(_chain(4), 2)
        cut = set(plan.cut_segments)
        for segment in plan.cut_segments:
            owner = plan.assignments[segment]
            attached = {
                plan.assignments[f"b{index}"]
                for index in range(3)
                if segment in (f"s{index}", f"s{index + 1}")
            }
            assert attached - {owner}
        # Non-cut segments are touched only by their own shard.
        for index in range(4):
            if f"s{index}" not in cut:
                owner = plan.assignments[f"s{index}"]
                for bridge_index in range(3):
                    if index in (bridge_index, bridge_index + 1):
                        assert plan.assignments[f"b{bridge_index}"] == owner


class TestLookahead:
    def test_lookahead_is_the_minimum_cut_handoff_latency(self):
        spec = _chain(3, propagation_delay=5e-6)
        plan = plan_partition(spec, 3)
        assert plan.cut_segments
        expected = min(
            seconds_to_ns(
                segment.propagation_delay + MIN_WIRE_LENGTH * 8.0 / segment.bandwidth_bps
            ) - 1
            for segment in spec.segments
            if segment.name in plan.cut_segments
        )
        assert plan.lookahead_ns == expected

    def test_zero_propagation_cut_segment_is_rejected(self):
        with pytest.raises(ValueError, match="zero propagation delay"):
            plan_partition(_chain(2, propagation_delay=0.0), 2)

    def test_zero_propagation_is_fine_when_not_cut(self):
        plan = plan_partition(_chain(2, propagation_delay=0.0), 1)
        assert plan.n_shards == 1
        assert plan.lookahead_ns is None


class TestExplicitAssignments:
    def test_explicit_assignment_overrides_automatic_placement(self):
        spec = _chain(2)
        automatic = plan_partition(spec, 2)
        moved = plan_partition(
            spec, PartitionSpec(shards=2, assignments={"h0-0": 1})
        )
        assert automatic.assignments["h0-0"] == 0
        assert moved.assignments["h0-0"] == 1
        # Moving the host off its segment's shard turns s0 into a cut.
        assert "s0" in moved.cut_segments

    def test_unknown_component_is_rejected(self):
        with pytest.raises(ValueError, match="unknown component 'ghost'"):
            plan_partition(
                _chain(2), PartitionSpec(shards=2, assignments={"ghost": 1})
            )

    def test_assignment_beyond_the_clamped_shard_count_is_rejected(self):
        # shards=4 is legal in the spec, but the plan clamps to 2 segments;
        # an index valid for the request but not the clamp must fail loudly.
        with pytest.raises(ValueError, match="uses only 2 shard"):
            plan_partition(
                _chain(2), PartitionSpec(shards=4, assignments={"s0": 3})
            )


class TestPartitionSpecValidation:
    def test_zero_shards_is_rejected(self):
        with pytest.raises(ValueError, match="at least one shard"):
            PartitionSpec(shards=0)

    def test_unknown_sync_mode_is_rejected(self):
        with pytest.raises(ValueError, match="unknown sync mode"):
            PartitionSpec(sync="eventual")

    def test_negative_workers_are_rejected(self):
        with pytest.raises(ValueError, match="cannot be negative"):
            PartitionSpec(workers=-1)

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValueError, match="unknown relaxed backend"):
            PartitionSpec(backend="fiber")

    def test_out_of_range_assignment_is_rejected(self):
        with pytest.raises(ValueError, match="outside 0..1"):
            PartitionSpec(shards=2, assignments={"s0": 2})
