"""Ablations — the optimization levers the paper's conclusions name.

Section 9: "Optimizations such as compiling switchlets into native code for
faster operation, shortening the Linux path between interrupt arrival and
switchlet operation, improving GC performance, and increasing concurrency,
all offer possibilities for improving this result."

This benchmark sweeps those levers on the cost model and re-runs the bridged
ttcp trial for each:

* baseline (calibrated interpreter + kernel path),
* native-code switchlets (interpreter cost / 10),
* U-Net-style user-level networking (kernel-crossing cost reduced 90 %),
* both together,
* a GC-pause model (periodic forwarding stalls),
* a fixed-function (non-active) learning bridge, for the "what does the
  active property cost at all" comparison.
"""

from __future__ import annotations

from _harness import emit, run_once

from repro.analysis.tables import render_table
from repro.costs.model import CostModel
from repro.measurement.setups import build_bridged_pair, build_static_bridge_pair
from repro.measurement.ttcp import TtcpSession

WRITE_SIZE = 8192
TOTAL_BYTES = 300_000


def _bridged_throughput(cost_model, seed=21):
    setup = build_bridged_pair(seed=seed, cost_model=cost_model)
    session = TtcpSession(
        setup.network.sim, setup.left, setup.right, buffer_size=WRITE_SIZE, total_bytes=TOTAL_BYTES
    )
    result = session.run(start_time=setup.ready_time)
    return result.throughput_mbps, result.completed


def _static_bridge_throughput(seed=22):
    setup = build_static_bridge_pair(seed=seed)
    session = TtcpSession(
        setup.network.sim, setup.left, setup.right, buffer_size=WRITE_SIZE, total_bytes=TOTAL_BYTES
    )
    result = session.run(start_time=setup.ready_time)
    return result.throughput_mbps, result.completed


def measure():
    base = CostModel()
    variants = {
        "active bridge (baseline)": _bridged_throughput(base),
        "+ native-code switchlets (10x)": _bridged_throughput(base.with_native_code(10.0)),
        "+ user-level networking (U-Net)": _bridged_throughput(base.with_user_level_networking(0.9)),
        "+ both optimizations": _bridged_throughput(
            base.with_native_code(10.0).with_user_level_networking(0.9)
        ),
        "with GC pauses (2 ms every 250 ms)": _bridged_throughput(base.with_gc_pauses(0.25, 2e-3)),
        "fixed-function learning bridge": _static_bridge_throughput(),
    }
    return variants


def test_ablations(benchmark):
    variants = run_once(benchmark, measure)

    rows = [[name, f"{mbps:.1f}", "ok" if done else "incomplete"] for name, (mbps, done) in variants.items()]
    emit(
        "Ablation -- ttcp throughput (8 KB writes) under the paper's proposed optimizations",
        render_table(["configuration", "throughput (Mb/s)", "trial"], rows),
    )

    base = variants["active bridge (baseline)"][0]
    native = variants["+ native-code switchlets (10x)"][0]
    unet = variants["+ user-level networking (U-Net)"][0]
    both = variants["+ both optimizations"][0]
    gc = variants["with GC pauses (2 ms every 250 ms)"][0]
    hardware = variants["fixed-function learning bridge"][0]

    # Every trial completed.
    assert all(done for _mbps, done in variants.values())
    # Native code is the dominant lever (the interpreter dominates the
    # per-frame budget), and the combination approaches the wire/host limit.
    assert native > base * 1.5
    assert unet > base
    assert both > native
    assert hardware > both * 0.8
    # GC pauses can only hurt.
    assert gc <= base + 0.5
