"""The cost model charged to every frame that crosses a node in software.

:class:`CostModel` is a plain dataclass of per-frame / per-byte constants.
The active node, the C-repeater baseline and the hosts each query it for the
time a given frame costs them, and charge that time on their
:class:`~repro.costs.cpu.CpuQueue`.

Separate knobs exist for the interpreter, the kernel crossings, and the
per-byte copies so that the ablation benchmark can ask the questions the
paper poses in its conclusions: what would native-code switchlets buy?
what would a shorter kernel path (U-Net style) buy?
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.costs import calibration


@dataclass(frozen=True)
class CostModel:
    """Per-frame and per-byte software costs (all times in seconds).

    Attributes:
        interpreter_frame_cost: fixed per-frame cost of the interpreted
            switchlet path (the Caml byte-code interpreter in the paper).
        interpreter_byte_cost: per-byte data-touching cost in the interpreter.
        kernel_crossing_cost: one-way cost of moving a frame between the
            kernel and user space; charged once on receive and once on send.
        repeater_frame_cost: fixed per-frame cost of the C buffered repeater.
        repeater_byte_cost: per-byte cost of the C repeater.
        host_frame_cost: fixed per-frame protocol cost at an end host.
        host_byte_cost: per-byte cost at an end host.
        host_syscall_cost: additional per-write overhead for a ttcp sender.
        switchlet_load_cost: time to dynamically link one switchlet.
        switchlet_register_cost: time to run a switchlet's registration code.
        gc_pause_interval: mean time between GC pauses (ablation only).
        gc_pause_duration: length of one GC pause; zero disables pauses.
    """

    interpreter_frame_cost: float = calibration.INTERPRETER_FRAME_COST
    interpreter_byte_cost: float = calibration.INTERPRETER_BYTE_COST
    kernel_crossing_cost: float = calibration.KERNEL_CROSSING_COST
    repeater_frame_cost: float = calibration.REPEATER_FRAME_COST
    repeater_byte_cost: float = calibration.REPEATER_BYTE_COST
    host_frame_cost: float = calibration.HOST_FRAME_COST
    host_byte_cost: float = calibration.HOST_BYTE_COST
    host_syscall_cost: float = calibration.HOST_SYSCALL_COST
    switchlet_load_cost: float = calibration.SWITCHLET_LOAD_COST
    switchlet_register_cost: float = calibration.SWITCHLET_REGISTER_COST
    gc_pause_interval: float = calibration.GC_PAUSE_INTERVAL
    gc_pause_duration: float = calibration.GC_PAUSE_DURATION

    # ------------------------------------------------------------------
    # Per-node costs
    # ------------------------------------------------------------------

    def switchlet_frame_cost(self, frame_bytes: int) -> float:
        """Cost of running the loaded switchlets over one frame (interpreter only)."""
        return self.interpreter_frame_cost + self.interpreter_byte_cost * frame_bytes

    def bridge_frame_cost(self, frame_bytes: int) -> float:
        """Total active-bridge cost for one forwarded frame.

        Receive kernel crossing + interpreted switchlet processing + transmit
        kernel crossing — the seven-step path of Figure 5 collapsed into its
        three software components.
        """
        return 2 * self.kernel_crossing_cost + self.switchlet_frame_cost(frame_bytes)

    def repeater_frame_cost_total(self, frame_bytes: int) -> float:
        """Total C-buffered-repeater cost for one forwarded frame."""
        return (
            2 * self.kernel_crossing_cost
            + self.repeater_frame_cost
            + self.repeater_byte_cost * frame_bytes
        )

    def host_frame_cost_total(self, frame_bytes: int) -> float:
        """End-host protocol processing cost for sending or receiving one frame."""
        return self.host_frame_cost + self.host_byte_cost * frame_bytes

    def load_cost(self) -> float:
        """Time to dynamically link and register one switchlet."""
        return self.switchlet_load_cost + self.switchlet_register_cost

    # ------------------------------------------------------------------
    # Derived quantities (used by benchmarks and tests)
    # ------------------------------------------------------------------

    def bridge_frame_rate_ceiling(self, frame_bytes: int) -> float:
        """Maximum frames/second the active bridge can forward at this size."""
        return 1.0 / self.bridge_frame_cost(frame_bytes)

    def interpreter_frame_rate_ceiling(self, frame_bytes: int) -> float:
        """The paper's "limiting rate before OS overheads" (2100 f/s at 1024 B)."""
        return 1.0 / self.switchlet_frame_cost(frame_bytes)

    # ------------------------------------------------------------------
    # Ablation helpers
    # ------------------------------------------------------------------

    def with_native_code(self, speedup: float = 10.0) -> "CostModel":
        """A model in which switchlets are compiled to native code.

        The interpreter costs shrink by ``speedup``; kernel costs are
        unchanged.  This is the first optimization the paper proposes.
        """
        return replace(
            self,
            interpreter_frame_cost=self.interpreter_frame_cost / speedup,
            interpreter_byte_cost=self.interpreter_byte_cost / speedup,
        )

    def with_user_level_networking(self, reduction: float = 0.9) -> "CostModel":
        """A model with a U-Net style user-level network interface.

        Kernel-crossing costs shrink by ``reduction`` (default 90 %); this is
        the second optimization direction the paper names.
        """
        return replace(
            self,
            kernel_crossing_cost=self.kernel_crossing_cost * (1.0 - reduction),
        )

    def with_gc_pauses(
        self, interval: float = calibration.GC_PAUSE_INTERVAL, duration: float = 2e-3
    ) -> "CostModel":
        """A model in which the garbage collector pauses forwarding periodically."""
        return replace(self, gc_pause_interval=interval, gc_pause_duration=duration)

    def scaled(self, factor: float) -> "CostModel":
        """Scale every node-side cost by ``factor`` (sensitivity sweeps)."""
        return replace(
            self,
            interpreter_frame_cost=self.interpreter_frame_cost * factor,
            interpreter_byte_cost=self.interpreter_byte_cost * factor,
            kernel_crossing_cost=self.kernel_crossing_cost * factor,
            repeater_frame_cost=self.repeater_frame_cost * factor,
            repeater_byte_cost=self.repeater_byte_cost * factor,
        )
