"""Events and the event queue.

An :class:`Event` is a callback scheduled at an absolute simulated time.
The :class:`EventQueue` orders events by ``(time, sequence number)`` so that
two events scheduled for the same instant fire in the order they were
scheduled — this makes the whole simulation deterministic, which the paper's
reproducible measurements depend on.

Two hot-path properties the simulator run loop relies on:

* the heap stores ``(time_ns, sequence, event)`` tuples, so heap sifting
  compares machine integers instead of calling Python comparison methods;
* a live-event counter makes :meth:`EventQueue.__len__` and
  :meth:`EventQueue.__bool__` O(1) — the run loop consults them once per
  dispatched event, so they must not scan the heap.

Cancelled events stay in the heap (keeping :meth:`Event.cancel` O(1)) and
are discarded either at the top by :meth:`EventQueue._compact_top` or, when
they come to dominate the heap, by a lazy full compaction; both are counted
in :attr:`EventQueue.cancelled_discarded`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.exceptions import SchedulingError

#: Heaps smaller than this are never fully compacted — the O(n) rebuild only
#: pays off once scanning/popping dead entries costs more than it does.
_COMPACT_MIN_HEAP = 64


def validate_schedule_time(now_ns: int, when_ns: int) -> None:
    """Raise :class:`SchedulingError` if ``when_ns`` lies in the past.

    Shared by the single-engine :class:`EventQueue` and the per-shard queues
    of the sharded fabric so both report the identical error.
    """
    if when_ns < now_ns:
        raise SchedulingError(
            f"cannot schedule an event at t={when_ns}ns, "
            f"which is before the current time t={now_ns}ns"
        )


class Event:
    """A single scheduled event.

    Attributes:
        time_ns: absolute simulated time (nanoseconds) at which to fire.
        sequence: tie-breaker preserving scheduling order at equal times.
        callback: zero-argument callable invoked when the event fires.
        label: free-form string used by traces and debugging output.
        cancelled: set by :meth:`cancel`; cancelled events are skipped.
    """

    __slots__ = ("time_ns", "sequence", "callback", "label", "cancelled", "_queue")

    def __init__(
        self,
        time_ns: int,
        sequence: int,
        callback: Callable[[], None],
        label: str = "",
        cancelled: bool = False,
        _queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time_ns = time_ns
        self.sequence = sequence
        self.callback = callback
        self.label = label
        self.cancelled = cancelled
        self._queue = _queue

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped.

        Cancelling is O(1): the event stays in its queue's heap but the
        queue's live counter is decremented immediately.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return (
            f"Event(time_ns={self.time_ns}, sequence={self.sequence}, "
            f"label={self.label!r}, {state})"
        )


class EventQueue:
    """A priority queue of :class:`Event` objects keyed by time.

    Cancelled events are not removed eagerly — :meth:`Event.cancel` stays
    O(1), which matters because the 802.1D switchlet cancels and re-arms many
    timers.  They are discarded when they reach the top of the heap, or in
    one lazy compaction pass when dead entries outnumber live ones.

    Attributes:
        cancelled_discarded: total cancelled events physically dropped from
            the heap so far (top-skips plus compactions).
    """

    def __init__(self) -> None:
        # Entries are (time_ns, sequence, event): heap sifting compares the
        # two integers at C speed and never reaches the event object, since
        # sequence numbers are unique.  (The sharded fabric's per-shard
        # queues — :class:`repro.sim.shard.ShardQueue` — share one counter
        # across shards instead, keeping (time, sequence) a global order.)
        self._heap: list = []
        self._counter = itertools.count()
        self._live = 0
        self._dead_in_heap = 0
        self.cancelled_discarded = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time_ns: int, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at absolute time ``time_ns`` and return the event."""
        sequence = next(self._counter)
        event = Event(time_ns, sequence, callback, label, False, self)
        heapq.heappush(self._heap, (time_ns, sequence, event))
        self._live += 1
        return event

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` while the event is still in the heap."""
        self._live -= 1
        self._dead_in_heap += 1
        # Lazy compaction: once cancelled entries outnumber live ones on a
        # non-trivial heap, one O(n) rebuild keeps later pushes and pops from
        # wading through the corpses.
        if len(self._heap) >= _COMPACT_MIN_HEAP and self._dead_in_heap > self._live:
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap from live events only (deterministic: entries are
        totally ordered by (time, sequence), so heapify reproduces the same
        pop sequence)."""
        survivors = [entry for entry in self._heap if not entry[2].cancelled]
        self.cancelled_discarded += len(self._heap) - len(survivors)
        heapq.heapify(survivors)
        self._heap = survivors
        self._dead_in_heap = 0

    def _compact_top(self) -> None:
        """Discard cancelled events sitting at the top of the heap."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self.cancelled_discarded += 1
            self._dead_in_heap -= 1

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or ``None`` if the queue is empty."""
        heap = self._heap
        if heap and heap[0][2].cancelled:
            self._compact_top()
        if not heap:
            return None
        event = heapq.heappop(heap)[2]
        self._live -= 1
        # A later cancel() on an already-fired event must not touch the queue.
        event._queue = None
        return event

    def peek_time_ns(self) -> Optional[int]:
        """Return the firing time of the earliest pending event, if any."""
        heap = self._heap
        if heap and heap[0][2].cancelled:
            self._compact_top()
        if not heap:
            return None
        return heap[0][0]

    def clear(self) -> None:
        """Drop every pending event."""
        for entry in self._heap:
            entry[2]._queue = None
        self._heap.clear()
        self._live = 0
        self._dead_in_heap = 0

    def validate_schedule_time(self, now_ns: int, when_ns: int) -> None:
        """Raise :class:`SchedulingError` if ``when_ns`` lies in the past."""
        validate_schedule_time(now_ns, when_ns)


def describe_event(event: Event) -> dict:
    """Return a JSON-friendly description of an event (for traces and tests)."""
    return {
        "time_ns": event.time_ns,
        "sequence": event.sequence,
        "label": event.label,
        "cancelled": event.cancelled,
    }
