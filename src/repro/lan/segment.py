"""A shared broadcast LAN segment.

The segment models classic shared Ethernet: one transmission at a time, every
attached station sees every frame, and a frame occupies the wire for
``wire_length * 8 / bandwidth`` seconds plus a small propagation delay.
Stations that want to transmit while the medium is busy are queued in FIFO
order (an idealized, collision-free CSMA — adequate because the paper's
experiments are not collision-bound, they are bridge-CPU-bound).

**Inter-shard channel.**  Under the sharded fabric
(:mod:`repro.sim.fabric`) a segment may have stations placed on other shard
engines than its own; such a segment is a *cut segment* and cross-shard frame
handoff is the fabric's only coupling point.  The segment detects this
automatically from its interfaces' home engines (:meth:`attach` /
:meth:`detach` refresh the plan) and routes delivery through per-shard
delivery runs: one delivery event per contiguous run of same-shard receivers,
scheduled on the receiving shard at the same ``deliver_at`` the single engine
would use.  The handoff latency is bounded below by
:attr:`propagation_delay` — the fabric's conservative-synchronization
lookahead.  On a homogeneous segment (every station on the segment's own
engine — in particular, any unsharded run) the classic single-event delivery
path is taken unchanged.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import TYPE_CHECKING, Deque, List, Optional, Tuple

from repro.ethernet.frame import EthernetFrame
from repro.exceptions import TopologyError
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking only
    from repro.lan.nic import NetworkInterface

#: 100 Mb/s, the LAN speed used throughout the paper's evaluation.
DEFAULT_BANDWIDTH_BPS = 100_000_000

#: A few microseconds of propagation/repeater latency per segment.
DEFAULT_PROPAGATION_DELAY = 2e-6


class Segment:
    """A shared, half-duplex broadcast Ethernet segment.

    Args:
        sim: the owning simulator.
        name: segment name used in traces (e.g. ``"lan1"``).
        bandwidth_bps: wire speed in bits per second.
        propagation_delay: one-way propagation delay in seconds.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        propagation_delay: float = DEFAULT_PROPAGATION_DELAY,
    ) -> None:
        if bandwidth_bps <= 0:
            raise TopologyError("segment bandwidth must be positive")
        if propagation_delay < 0:
            raise TopologyError("propagation delay cannot be negative")
        self.sim = sim
        self.name = name
        self.bandwidth_bps = float(bandwidth_bps)
        self.propagation_delay = float(propagation_delay)
        # The trace hub never changes over the segment's lifetime.
        self._trace = sim.trace
        # Delivery/service events are never cancelled: use the engine's
        # fire-and-forget scheduler when it offers one (the sharded fabric's
        # cores do); otherwise a cached bound schedule_at.
        fire = getattr(sim, "schedule_fire", None)
        self._schedule = fire if fire is not None else sim.schedule_at
        self._interfaces: list["NetworkInterface"] = []
        # Attach-order snapshot iterated on delivery; rebuilding it on
        # attach/detach (rare) keeps the per-frame path copy-free.
        self._receivers: Tuple["NetworkInterface", ...] = ()
        self._busy_until = 0.0
        self._pending: Deque[Tuple["NetworkInterface", EthernetFrame]] = deque()
        self._in_service = False
        # Event labels are fixed per segment; building them per frame shows
        # up on the hot path.
        self._deliver_label = f"{name}:deliver"
        self._next_label = f"{name}:next"
        # Inter-shard delivery plan: None while every attached station lives
        # on this segment's own engine (the common, unsharded case); else a
        # list of (engine, [interfaces]) runs in attach order.
        self._delivery_runs: Optional[List[tuple]] = None
        # Statistics
        self.frames_carried = 0
        self.bytes_carried = 0
        self.cross_shard_frames = 0

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------

    @property
    def interfaces(self) -> tuple:
        """The NICs currently attached to this segment."""
        return tuple(self._interfaces)

    def attach(self, interface: "NetworkInterface") -> None:
        """Attach a NIC.  A NIC may be attached to at most one segment."""
        if interface in self._interfaces:
            raise TopologyError(
                f"interface {interface.name} is already attached to {self.name}"
            )
        self._interfaces.append(interface)
        self._receivers = tuple(self._interfaces)
        self._refresh_delivery_runs()

    def detach(self, interface: "NetworkInterface") -> None:
        """Detach a NIC (frames already queued from it still complete)."""
        if interface not in self._interfaces:
            raise TopologyError(
                f"interface {interface.name} is not attached to {self.name}"
            )
        self._interfaces.remove(interface)
        self._receivers = tuple(self._interfaces)
        self._refresh_delivery_runs()

    def _refresh_delivery_runs(self) -> None:
        """Recompute the inter-shard delivery plan from interface residency.

        Attach order is preserved: contiguous same-engine receivers share one
        delivery event, and run order equals attach order, so the sharded
        receive order (and every trace record it produces) is exactly the
        single engine's.
        """
        home = self.sim
        if all(interface.home_sim is home for interface in self._interfaces):
            self._delivery_runs = None
            return
        runs: List[tuple] = []
        current_sim = None
        current_run: Optional[list] = None
        for interface in self._interfaces:
            engine = interface.home_sim
            if engine is not current_sim:
                current_run = []
                runs.append((engine, current_run))
                current_sim = engine
            current_run.append(interface)
        self._delivery_runs = runs

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------

    def serialization_delay(self, frame: EthernetFrame) -> float:
        """Time the frame occupies the wire, in seconds."""
        return frame.wire_length * 8.0 / self.bandwidth_bps

    def transmit(self, sender: "NetworkInterface", frame: EthernetFrame) -> None:
        """Queue ``frame`` from ``sender`` for transmission on this segment.

        Delivery to every other attached NIC happens after the medium becomes
        free, the frame serializes, and the propagation delay elapses.
        """
        if sender.segment is not self:
            raise TopologyError(
                f"interface {sender.name} transmitted on {self.name} "
                "without being attached"
            )
        self._pending.append((sender, frame))
        trace = self._trace
        if trace.wants("segment.enqueue"):
            trace.emit(
                self.name,
                "segment.enqueue",
                lambda: {"sender": sender.name, "frame": frame.describe()},
            )
        if not self._in_service:
            self._service_next()

    def _service_next(self) -> None:
        if not self._pending:
            self._in_service = False
            return
        self._in_service = True
        sender, frame = self._pending.popleft()
        now = self.sim.clock._now_s
        busy = self._busy_until
        start = now if now >= busy else busy
        finish = start + frame.wire_length * 8.0 / self.bandwidth_bps
        self._busy_until = finish
        deliver_at = finish + self.propagation_delay
        self.frames_carried += 1
        # Wire occupancy, consistent with serialization_delay(): the frame
        # plus preamble/SFD/inter-frame gap, not just header+payload+FCS.
        self.bytes_carried += frame.wire_length

        runs = self._delivery_runs
        if runs is None:
            self._schedule(
                deliver_at,
                partial(self._deliver, sender, frame),
                label=self._deliver_label,
            )
        else:
            # Cut segment: one delivery event per contiguous same-shard run of
            # receivers, scheduled consecutively (so their shared-counter
            # sequence numbers preserve attach order) on each receiving shard.
            self.cross_shard_frames += 1
            first = True
            for engine, run in runs:
                engine.schedule_fire(
                    deliver_at,
                    partial(self._deliver_run, sender, frame, run, first),
                    label=self._deliver_label,
                )
                first = False
        self._schedule(finish, self._service_next, label=self._next_label)

    def _deliver(self, sender: "NetworkInterface", frame: EthernetFrame) -> None:
        trace = self._trace
        if trace.wants("segment.deliver"):
            trace.emit(
                self.name,
                "segment.deliver",
                lambda: {"sender": sender.name, "frame": frame.describe()},
            )
        # The receiver tuple is a stable snapshot: attach/detach during the
        # loop rebuild it without disturbing this delivery.
        for interface in self._receivers:
            if interface is sender:
                continue
            interface.deliver(frame)

    def _deliver_run(
        self,
        sender: "NetworkInterface",
        frame: EthernetFrame,
        run: List["NetworkInterface"],
        first: bool,
    ) -> None:
        """Deliver ``frame`` to one same-shard run of receivers.

        Runs are snapshotted when the frame is scheduled (an interface that
        detaches mid-flight is skipped below; one that attaches mid-flight
        joins from the next frame on — the classic path snapshots at delivery
        instead, a difference only visible to mid-flight retopology).
        """
        if first:
            trace = self._trace
            if trace.wants("segment.deliver"):
                trace.emit(
                    self.name,
                    "segment.deliver",
                    lambda: {"sender": sender.name, "frame": frame.describe()},
                )
        for interface in run:
            if interface is sender or interface.segment is not self:
                continue
            interface.deliver(frame)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def utilization(self, elapsed_seconds: Optional[float] = None) -> float:
        """Fraction of wire capacity used since time zero (or over ``elapsed_seconds``)."""
        elapsed = self.sim.now if elapsed_seconds is None else elapsed_seconds
        if elapsed <= 0:
            return 0.0
        bits = self.bytes_carried * 8.0
        return min(1.0, bits / (self.bandwidth_bps * elapsed))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Segment({self.name!r}, {self.bandwidth_bps/1e6:.0f} Mb/s, "
            f"{len(self._interfaces)} stations)"
        )
