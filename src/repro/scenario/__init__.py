"""The declarative scenario fabric.

One spec, one compiler, one runner: experimental topologies are described as
data (:mod:`~repro.scenario.spec`), registered by name with parametrized
factories (:mod:`~repro.scenario.registry`, :mod:`~repro.scenario.catalog`),
expanded over topology matrices, and driven through the single
:func:`~repro.scenario.runner.run_scenario` entry point.  The legacy builder
functions in :mod:`repro.measurement.setups` are thin wrappers over this
package.
"""

from repro.faults.spec import FaultSpec
from repro.faults.timeline import FaultTimeline
from repro.scenario.spec import (
    BASIC_WARMUP,
    SPANNING_TREE_WARMUP,
    DeviceSpec,
    HostSpec,
    PartitionSpec,
    PortSpec,
    ScenarioSpec,
    SegmentSpec,
    SwitchletSpec,
)
from repro.scenario.compile import (
    PairSetup,
    PartitionPlan,
    RingSetup,
    ScenarioRun,
    SWITCHLET_CATALOG,
    compile_spec,
    plan_partition,
)
from repro.scenario.registry import (
    ScenarioEntry,
    expand_matrix,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_entry,
)
from repro.scenario.runner import run_matrix, run_scenario
from repro.scenario.graphview import (
    PlacementReport,
    TopologyGraph,
    analyze_placement,
)
from repro.scenario.interchange import (
    InterchangeError,
    SCHEMA,
    ScenarioDocument,
    dict_to_partition,
    dict_to_spec,
    dump_scenario,
    load_scenario,
    load_scenario_file,
    partition_to_dict,
    save_scenario,
    spec_to_dict,
)

# Importing the catalogs registers the built-in scenarios.
from repro.scenario import catalog as _catalog  # noqa: F401
from repro.scenario import generators as _generators  # noqa: F401
from repro.population import catalog as _population_catalog  # noqa: F401
from repro.scenario.generators import FUZZ_PARAM_SPACE, GENERATORS  # noqa: E402

__all__ = [
    "BASIC_WARMUP",
    "SPANNING_TREE_WARMUP",
    "FaultSpec",
    "FaultTimeline",
    "SegmentSpec",
    "HostSpec",
    "PortSpec",
    "SwitchletSpec",
    "DeviceSpec",
    "ScenarioSpec",
    "PairSetup",
    "PartitionPlan",
    "PartitionSpec",
    "RingSetup",
    "ScenarioRun",
    "SWITCHLET_CATALOG",
    "compile_spec",
    "plan_partition",
    "ScenarioEntry",
    "register_scenario",
    "scenario_entry",
    "get_scenario",
    "list_scenarios",
    "expand_matrix",
    "run_scenario",
    "run_matrix",
    "TopologyGraph",
    "PlacementReport",
    "analyze_placement",
    "InterchangeError",
    "SCHEMA",
    "ScenarioDocument",
    "spec_to_dict",
    "dict_to_spec",
    "partition_to_dict",
    "dict_to_partition",
    "dump_scenario",
    "load_scenario",
    "save_scenario",
    "load_scenario_file",
    "GENERATORS",
    "FUZZ_PARAM_SPACE",
]
