"""The built-in scenario catalog.

Every experimental configuration the paper's figures and tables use — the
three two-host pairs of Figures 7/8, the static-bridge ablation baseline and
the Section 7.5 ring — is registered here as a declarative factory, together
with the new families the fabric enables: a many-LAN bridge chain and the
802.1Q VLAN trunk workload.  ``list_scenarios()`` is the catalog listing; the
README's "Scenario catalog" section mirrors it.
"""

from __future__ import annotations

from typing import Tuple

from repro.faults.spec import FaultSpec
from repro.lan.segment import DEFAULT_BANDWIDTH_BPS, DEFAULT_PROPAGATION_DELAY
from repro.scenario.registry import register_scenario
from repro.scenario.spec import (
    BASIC_WARMUP,
    SPANNING_TREE_WARMUP,
    DeviceSpec,
    HostSpec,
    PortSpec,
    ScenarioSpec,
    SegmentSpec,
    SwitchletSpec,
)


def _pair_segments(count: int, bandwidth_bps: float) -> Tuple[SegmentSpec, ...]:
    return tuple(
        SegmentSpec(f"lan{index + 1}", bandwidth_bps=bandwidth_bps)
        for index in range(count)
    )


@register_scenario(
    "pair/direct",
    description="two hosts on a single LAN (Figure 8's best-case baseline)",
    axes=("bandwidth_bps",),
)
def direct_pair(bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS) -> ScenarioSpec:
    return ScenarioSpec(
        name="pair/direct",
        label="direct",
        description="two hosts on one shared LAN",
        segments=_pair_segments(1, bandwidth_bps),
        hosts=(HostSpec("host1", "lan1"), HostSpec("host2", "lan1")),
        ready_time=BASIC_WARMUP,
    )


@register_scenario(
    "pair/repeater",
    description="two LANs joined by the C buffered repeater",
    axes=("bandwidth_bps",),
)
def repeater_pair(bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS) -> ScenarioSpec:
    return ScenarioSpec(
        name="pair/repeater",
        label="c-repeater",
        description="two LANs joined by the C buffered repeater",
        segments=_pair_segments(2, bandwidth_bps),
        hosts=(HostSpec("host1", "lan1"), HostSpec("host2", "lan2")),
        devices=(
            DeviceSpec(
                "repeater",
                kind="repeater",
                ports=(PortSpec("eth0", "lan1"), PortSpec("eth1", "lan2")),
            ),
        ),
        ready_time=BASIC_WARMUP,
    )


@register_scenario(
    "pair/active-bridge",
    description="two LANs joined by the active bridge running the switchlet stack",
    axes=("include_spanning_tree", "include_learning", "bandwidth_bps"),
)
def bridged_pair(
    include_spanning_tree: bool = True,
    include_learning: bool = True,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
) -> ScenarioSpec:
    stack = [SwitchletSpec("dumb-bridge")]
    if include_learning:
        stack.append(SwitchletSpec("learning-bridge"))
    if include_spanning_tree:
        stack.append(SwitchletSpec("spanning-tree", {"autostart": True}))
    return ScenarioSpec(
        name="pair/active-bridge",
        label="active-bridge",
        description="two LANs joined by the active bridge (Figure 7)",
        segments=_pair_segments(2, bandwidth_bps),
        hosts=(HostSpec("host1", "lan1"), HostSpec("host2", "lan2")),
        devices=(
            DeviceSpec(
                "bridge",
                kind="active-node",
                ports=(PortSpec("eth0", "lan1"), PortSpec("eth1", "lan2")),
                switchlets=tuple(stack),
            ),
        ),
        ready_time=SPANNING_TREE_WARMUP if include_spanning_tree else BASIC_WARMUP,
    )


@register_scenario(
    "pair/static-bridge",
    description="two LANs joined by a fixed-function learning bridge (ablation baseline)",
    axes=("bandwidth_bps",),
)
def static_bridge_pair(bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS) -> ScenarioSpec:
    return ScenarioSpec(
        name="pair/static-bridge",
        label="static-bridge",
        description="two LANs joined by a DEC-LANbridge-like fixed bridge",
        segments=_pair_segments(2, bandwidth_bps),
        hosts=(HostSpec("host1", "lan1"), HostSpec("host2", "lan2")),
        devices=(
            DeviceSpec(
                "lanbridge",
                kind="static-bridge",
                ports=(PortSpec("eth0", "lan1"), PortSpec("eth1", "lan2")),
            ),
        ),
        ready_time=BASIC_WARMUP,
    )


@register_scenario(
    "pair/unprogrammed",
    description="two LANs joined by an unprogrammed active node (quickstart canvas)",
)
def unprogrammed_pair(bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS) -> ScenarioSpec:
    return ScenarioSpec(
        name="pair/unprogrammed",
        label="unprogrammed",
        description="an empty active node between two LANs, ready to be programmed",
        segments=_pair_segments(2, bandwidth_bps),
        hosts=(HostSpec("host1", "lan1"), HostSpec("host2", "lan2")),
        devices=(
            DeviceSpec(
                "bridge",
                kind="active-node",
                ports=(PortSpec("eth0", "lan1"), PortSpec("eth1", "lan2")),
            ),
        ),
        ready_time=BASIC_WARMUP,
    )


@register_scenario(
    "ring",
    description="the Section 7.5 chain of active bridges (DEC running, IEEE idle, control armed)",
    axes=("n_bridges", "bandwidth_bps", "hosts_per_segment"),
)
def ring(
    n_bridges: int = 3,
    with_control: bool = True,
    suppression_period: float = 30.0,
    validation_delay: float = 60.0,
    buggy_new_protocol: bool = False,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    hosts_per_segment: int = 0,
) -> ScenarioSpec:
    """``hosts_per_segment`` populates every LAN with end hosts — the
    wire-speed multi-LAN sweep configuration the sharded fabric is
    benchmarked on (local per-segment traffic, bridges carrying the
    spanning-tree control plane across shards)."""
    if n_bridges < 1:
        raise ValueError("a ring needs at least one bridge")
    if hosts_per_segment < 0:
        raise ValueError("hosts_per_segment cannot be negative")
    segments = tuple(
        SegmentSpec(f"seg{index}", bandwidth_bps=bandwidth_bps)
        for index in range(n_bridges + 1)
    )
    hosts = tuple(
        HostSpec(f"seg{index}h{host + 1}", f"seg{index}")
        for index in range(n_bridges + 1)
        for host in range(hosts_per_segment)
    )
    stack = [
        SwitchletSpec("dumb-bridge"),
        SwitchletSpec("learning-bridge"),
        SwitchletSpec("dec-spanning-tree"),
        SwitchletSpec("spanning-tree", {"autostart": False, "buggy": buggy_new_protocol}),
    ]
    if with_control:
        stack.append(
            SwitchletSpec(
                "control",
                {
                    "suppression_period": suppression_period,
                    "validation_delay": validation_delay,
                },
            )
        )
    devices = tuple(
        DeviceSpec(
            f"bridge{index + 1}",
            kind="active-node",
            ports=(
                PortSpec("eth0", f"seg{index}"),
                PortSpec("eth1", f"seg{index + 1}"),
            ),
            switchlets=tuple(stack),
        )
        for index in range(n_bridges)
    )
    return ScenarioSpec(
        name="ring",
        label="ring",
        description="chain of active bridges between two end segments",
        segments=segments,
        hosts=hosts,
        devices=devices,
        ready_time=SPANNING_TREE_WARMUP,
    )


@register_scenario(
    "ring/failover",
    description="closed ring of STP bridges with a scheduled link failure and failover",
    axes=("n_bridges", "fail_at", "recover_at", "failed_segment", "forward_delay"),
)
def ring_failover(
    n_bridges: int = 4,
    fail_at: float = 45.0,
    recover_at: float = 0.0,
    failed_segment: str = "",
    hosts_per_segment: int = 0,
    hello_time: float = 2.0,
    max_age: float = 20.0,
    forward_delay: float = 15.0,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
) -> ScenarioSpec:
    """A *closed* loop of active bridges running the IEEE spanning tree.

    Unlike the (chain-shaped) ``ring`` scenario, bridge ``i`` joins segment
    ``i`` to segment ``(i+1) mod n`` — a genuine physical loop, so the
    spanning tree must block one port, and killing a forwarding segment at
    ``fail_at`` forces a real failover: max-age expiry detects the failure
    and the blocked port walks listening → learning → forwarding the other
    way around the ring.  ``recover_at`` (0 = never) restores the link.
    Two measurement hosts sit on segment 0 and the diametrically opposite
    segment, so traffic crosses the failed link before the outage and the
    long way around after reconvergence.  The 802.1D timers are parameters:
    the standard 2/20/15 s reproduce the paper's timescales, compressed
    values run whole failover episodes in seconds of simulated time.
    """
    if n_bridges < 3:
        raise ValueError("a failover ring needs at least three bridges")
    if fail_at < 0 or recover_at < 0:
        raise ValueError("fault times cannot be negative")
    # Per-segment propagation delays are staggered by one nanosecond: on a
    # *physical loop* of zero-jitter hello timers, the root's BPDUs race both
    # ways around the ring and would otherwise collide at the antipodal
    # bridge at the exact same nanosecond on two different ports — a
    # same-instant, order-sensitive tie the fabric's canonical-merge contract
    # deliberately does not order (commuting effects only).  Unequal cable
    # lengths are also simply the physical truth.
    segments = tuple(
        SegmentSpec(
            f"seg{index}",
            bandwidth_bps=bandwidth_bps,
            propagation_delay=DEFAULT_PROPAGATION_DELAY + index * 1e-9,
        )
        for index in range(n_bridges)
    )
    far = n_bridges // 2
    hosts = [HostSpec("left", "seg0"), HostSpec("right", f"seg{far}")]
    hosts.extend(
        HostSpec(f"seg{index}h{host + 1}", f"seg{index}")
        for index in range(n_bridges)
        for host in range(hosts_per_segment)
    )
    stack = (
        SwitchletSpec("dumb-bridge"),
        # 802.1D shortens MAC aging to forward_delay while the topology
        # changes (the TCN mechanism); modeling that as the steady aging
        # time is what lets the data path re-route instead of black-holing
        # on stale pre-failure entries until the 300 s default expires.
        SwitchletSpec("learning-bridge", {"aging_time": forward_delay}),
        SwitchletSpec(
            "spanning-tree",
            {
                "autostart": True,
                "hello_time": hello_time,
                "max_age": max_age,
                "forward_delay": forward_delay,
            },
        ),
    )
    devices = tuple(
        DeviceSpec(
            f"bridge{index + 1}",
            kind="active-node",
            ports=(
                PortSpec("eth0", f"seg{index}"),
                PortSpec("eth1", f"seg{(index + 1) % n_bridges}"),
            ),
            switchlets=stack,
        )
        for index in range(n_bridges)
    )
    # Default to failing seg1 (on the short path between the hosts); at the
    # minimum ring size the far host itself sits on seg1, so fall back to the
    # other transit segment — failing a *host's own* LAN can never reroute,
    # so it is rejected outright rather than silently measuring a black hole.
    failed = failed_segment or ("seg1" if far != 1 else "seg2")
    if failed in ("seg0", f"seg{far}"):
        raise ValueError(
            f"failed_segment {failed!r} carries a measurement host; failover "
            "needs the hosts alive on their own LANs"
        )
    faults = [FaultSpec("link-down", fail_at, failed)]
    if recover_at:
        if recover_at <= fail_at:
            raise ValueError("recover_at must be after fail_at")
        faults.append(FaultSpec("link-up", recover_at, failed))
    return ScenarioSpec(
        name="ring/failover",
        label="ring-failover",
        description="closed STP bridge ring with scripted link failure",
        segments=segments,
        hosts=tuple(hosts),
        devices=devices,
        faults=tuple(faults),
        # listening -> learning -> forwarding plus a hello round of margin.
        ready_time=2.0 * forward_delay + 2.0 * hello_time + 1.0,
    )


@register_scenario(
    "pair/lossy",
    description="bridged host pair with a seeded frame-loss/corruption model on the first LAN",
    axes=("loss_rate", "corrupt_rate", "loss_at", "clear_at"),
)
def lossy_pair(
    loss_rate: float = 0.1,
    corrupt_rate: float = 0.0,
    loss_at: float = 0.05,
    clear_at: float = 0.0,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
) -> ScenarioSpec:
    """Two LANs joined by a learning active bridge, with ``lan1`` turning
    lossy at ``loss_at``: every serviced frame is dropped with probability
    ``loss_rate`` (or corrupted — discarded by the receivers' FCS check —
    with ``corrupt_rate``) from a seeded per-segment random stream.
    ``clear_at`` (0 = never) detaches the model again.  The loss axes are
    ordinary matrix parameters, so loss-rate sweeps expand like topology
    sweeps."""
    if loss_at < 0 or clear_at < 0:
        raise ValueError("fault times cannot be negative")
    faults = [
        FaultSpec(
            "frame-loss", loss_at, "lan1", rate=loss_rate,
            corrupt_rate=corrupt_rate,
        )
    ]
    if clear_at:
        if clear_at <= loss_at:
            raise ValueError("clear_at must be after loss_at")
        faults.append(FaultSpec("frame-loss", clear_at, "lan1", rate=0.0))
    return ScenarioSpec(
        name="pair/lossy",
        label="lossy",
        description="host pair over a degraded LAN: seeded loss/corruption",
        segments=_pair_segments(2, bandwidth_bps),
        hosts=(HostSpec("host1", "lan1"), HostSpec("host2", "lan2")),
        devices=(
            DeviceSpec(
                "bridge",
                kind="active-node",
                ports=(PortSpec("eth0", "lan1"), PortSpec("eth1", "lan2")),
                switchlets=(
                    SwitchletSpec("dumb-bridge"),
                    SwitchletSpec("learning-bridge"),
                ),
            ),
        ),
        faults=tuple(faults),
        ready_time=BASIC_WARMUP,
    )


@register_scenario(
    "chain",
    description="two hosts at the ends of a chain of learning bridges (many-LAN scaling)",
    axes=("n_bridges", "bandwidth_bps"),
)
def chain(
    n_bridges: int = 2,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
) -> ScenarioSpec:
    if n_bridges < 1:
        raise ValueError("a chain needs at least one bridge")
    segments = tuple(
        SegmentSpec(f"seg{index}", bandwidth_bps=bandwidth_bps)
        for index in range(n_bridges + 1)
    )
    devices = tuple(
        DeviceSpec(
            f"bridge{index + 1}",
            kind="active-node",
            ports=(
                PortSpec("eth0", f"seg{index}"),
                PortSpec("eth1", f"seg{index + 1}"),
            ),
            switchlets=(
                SwitchletSpec("dumb-bridge"),
                SwitchletSpec("learning-bridge"),
            ),
        )
        for index in range(n_bridges)
    )
    return ScenarioSpec(
        name="chain",
        label="chain",
        description="hosts at the ends of a loop-free bridge chain",
        segments=segments,
        hosts=(HostSpec("left", "seg0"), HostSpec("right", f"seg{n_bridges}")),
        devices=devices,
        ready_time=BASIC_WARMUP,
    )


@register_scenario(
    "vlan/trunk",
    description="802.1Q VLAN bridges joined by a tagged trunk; per-VLAN isolation",
    axes=("n_vlans", "hosts_per_vlan", "n_switches", "bandwidth_bps"),
)
def vlan_trunk(
    n_vlans: int = 2,
    hosts_per_vlan: int = 1,
    n_switches: int = 2,
    vlan_base: int = 10,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    native_vlan: int = 0,
) -> ScenarioSpec:
    """``native_vlan`` (a VLAN id, 0 = none) makes that VLAN travel the
    trunk untagged — the 802.1Q native-VLAN interoperability configuration."""
    if n_vlans < 1:
        raise ValueError("a VLAN scenario needs at least one VLAN")
    if n_switches < 2:
        raise ValueError("a trunk scenario needs at least two switches")
    if hosts_per_vlan < 1:
        raise ValueError("each VLAN needs at least one host per switch")
    vlans = tuple(vlan_base * (index + 1) for index in range(n_vlans))
    segments = []
    hosts = []
    devices = []
    for switch in range(1, n_switches + 1):
        for vlan in vlans:
            segment_name = f"sw{switch}-v{vlan}"
            segments.append(SegmentSpec(segment_name, bandwidth_bps=bandwidth_bps))
            for index in range(hosts_per_vlan):
                hosts.append(
                    HostSpec(f"h{switch}v{vlan}n{index + 1}", segment_name, vlan=vlan)
                )
    segments.append(SegmentSpec("trunk", bandwidth_bps=bandwidth_bps))
    for switch in range(1, n_switches + 1):
        ports = [
            PortSpec(f"eth{index}", f"sw{switch}-v{vlan}", mode="access", vlan=vlan)
            for index, vlan in enumerate(vlans)
        ]
        ports.append(
            PortSpec(
                f"eth{n_vlans}",
                "trunk",
                mode="trunk",
                allowed_vlans=vlans,
                native_vlan=native_vlan if native_vlan else None,
            )
        )
        devices.append(
            DeviceSpec(
                f"switch{switch}",
                kind="active-node",
                ports=tuple(ports),
                switchlets=(
                    SwitchletSpec("dumb-bridge"),
                    SwitchletSpec("vlan-bridge"),
                ),
            )
        )
    return ScenarioSpec(
        name="vlan/trunk",
        label="vlan-trunk",
        description="VLAN-aware bridges, access segments per VLAN, one 802.1Q trunk",
        segments=tuple(segments),
        hosts=tuple(hosts),
        devices=tuple(devices),
        ready_time=BASIC_WARMUP,
    )
