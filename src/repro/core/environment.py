"""The switchlet execution environment.

Section 5.2.1: "Currently, the loader provides an initial set of eight
modules.  These modules define the basic environment in which a switchlet
will execute."  The eight are ``Safestd``, ``Safeunix``, ``Log``,
``Safethread``, ``Condition``, ``Mutex``, ``Func`` and ``Unixnet``.

:func:`build_environment` constructs exactly those eight as
:class:`~repro.core.thinning.ThinnedModule` facades over the node's
implementation objects.  The environment dict is what the loader injects into
a switchlet's global namespace — nothing else is reachable by name.
"""

from __future__ import annotations

from typing import Dict

from repro.core.log import LogImplementation
from repro.core.registry import FuncRegistry
from repro.core.safestd import SafestdImplementation
from repro.core.safethread import Condition, Mutex, SafethreadImplementation
from repro.core.safeunix import SafeunixImplementation
from repro.core.thinning import ThinnedModule, thin
from repro.core.unixnet import Unixnet
from repro.sim.engine import Simulator

#: The names of the eight environment modules, in the order the paper lists them.
ENVIRONMENT_MODULE_NAMES = (
    "Safestd",
    "Safeunix",
    "Log",
    "Safethread",
    "Condition",
    "Mutex",
    "Func",
    "Unixnet",
)


class NodeEnvironment:
    """The implementation objects and thinned facades for one active node.

    Attributes:
        modules: mapping of module name to :class:`ThinnedModule`, i.e. what
            switchlets actually see.
        func: the (unthinned) function registry, for node-side introspection.
        log: the (unthinned) log implementation, for node-side inspection.
        safethread: the (unthinned) thread scheduler, so the node can cancel
            outstanding timers on reset.
    """

    def __init__(
        self,
        sim: Simulator,
        node_name: str,
        unixnet: Unixnet,
    ) -> None:
        self.sim = sim
        self.node_name = node_name
        self.func = FuncRegistry()
        self.log = LogImplementation(sim, node_name)
        self.safethread = SafethreadImplementation(sim, node_name)
        self.safestd = SafestdImplementation()
        self.safeunix = SafeunixImplementation(sim)
        self.unixnet = unixnet
        self.modules: Dict[str, ThinnedModule] = {
            "Safestd": thin("Safestd", self.safestd, SafestdImplementation.THINNED_EXPORTS),
            "Safeunix": thin(
                "Safeunix", self.safeunix, SafeunixImplementation.THINNED_EXPORTS
            ),
            "Log": thin("Log", self.log, LogImplementation.THINNED_EXPORTS),
            "Safethread": thin(
                "Safethread", self.safethread, SafethreadImplementation.THINNED_EXPORTS
            ),
            "Condition": thin("Condition", Condition, Condition.THINNED_EXPORTS),
            "Mutex": thin("Mutex", Mutex, Mutex.THINNED_EXPORTS),
            "Func": thin("Func", self.func, FuncRegistry.THINNED_EXPORTS),
            "Unixnet": thin("Unixnet", self.unixnet, Unixnet.THINNED_EXPORTS),
        }

    def reset(self) -> None:
        """Clear registrations, cancel timers, and drop port bindings."""
        self.func.clear()
        self.safethread.cancel_all()
        self.unixnet.reset()
        self.log.clear()


def build_environment(sim: Simulator, node_name: str, unixnet: Unixnet) -> NodeEnvironment:
    """Construct the eight-module environment for an active node."""
    return NodeEnvironment(sim=sim, node_name=node_name, unixnet=unixnet)
