"""Compiling a :class:`ScenarioSpec` into a live network.

The compiler replays a spec as the exact sequence of
:class:`~repro.lan.topology.NetworkBuilder` calls the hand-written setup
functions used to make — segments, hosts, static ARP warm-up, ``build()``,
then devices in declaration order — so a spec-driven experiment is
bit-identical to its legacy builder equivalent.  The result is a
:class:`ScenarioRun`: the assembled network plus typed accessors and the
adapters (:meth:`ScenarioRun.as_pair`, :meth:`ScenarioRun.as_ring`) the
measurement tools consume.

**Partition contiguity invariant.**  :func:`plan_partition` chunks segments
*contiguously in declaration order*, balancing chunks by attachment weight
and force-advancing so no shard is ever left segment-less; hosts follow
their segment and devices their first port's segment.  Contiguity is what
keeps the cut small on chain/ring topologies (a bridge chain cuts exactly at
chunk boundaries) and what makes the cut set — and with it the conservative
lookahead, the minimum over cut segments of wire service time for a
minimum-size frame plus propagation delay — a deterministic function of the
spec alone.  Every cut segment must have a positive propagation delay: that
delay anchors the fabric's lookahead, and both sync modes (the strict batch
bound and the relaxed window length) depend on it being non-zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.baselines.c_repeater import BufferedRepeater
from repro.baselines.static_bridge import StaticLearningBridge
from repro.core.node import ActiveNode
from repro.costs.model import CostModel
from repro.ethernet.frame import MIN_WIRE_LENGTH
from repro.faults.timeline import FaultTimeline
from repro.lan.host import Host
from repro.lan.segment import Segment
from repro.lan.topology import Network, NetworkBuilder
from repro.scenario.spec import (
    DeviceSpec,
    PartitionSpec,
    ScenarioSpec,
    SPANNING_TREE_WARMUP,
)
from repro.sim.clock import seconds_to_ns
from repro.sim.fabric import ShardedSimulator
from repro.switchlets.packaging import (
    control_package,
    dec_spanning_tree_package,
    dumb_bridge_package,
    learning_bridge_package,
    spanning_tree_package,
    vlan_bridge_package,
)

#: Switchlet catalog: spec name -> factory(environment, **params) -> package.
SWITCHLET_CATALOG: Dict[str, Callable] = {
    "dumb-bridge": dumb_bridge_package,
    "learning-bridge": learning_bridge_package,
    "spanning-tree": spanning_tree_package,
    "dec-spanning-tree": dec_spanning_tree_package,
    "control": control_package,
    "vlan-bridge": vlan_bridge_package,
}


@dataclass
class PairSetup:
    """A two-host configuration ready for ping/ttcp measurements.

    Attributes:
        network: the assembled network.
        left / right: the two measurement hosts.
        device: the interconnecting device (``None`` for the direct baseline).
        ready_time: simulated time after which the path is forwarding (the
            spanning-tree configurations need ~30 s of warm-up).
        label: short name used in benchmark output.
    """

    network: Network
    left: Host
    right: Host
    device: Optional[object]
    ready_time: float
    label: str


@dataclass
class RingSetup:
    """The Section 7.5 ring of active bridges.

    Attributes:
        network: the assembled network.
        bridges: the active bridges, in chain order.
        left_segment / right_segment: the end segments the measurement
            host's two NICs attach to.
        ready_time: time by which the old (DEC) protocol has converged.
    """

    network: Network
    bridges: List[ActiveNode] = field(default_factory=list)
    left_segment: Optional[Segment] = None
    right_segment: Optional[Segment] = None
    ready_time: float = SPANNING_TREE_WARMUP


@dataclass
class PartitionPlan:
    """The partitioner's output: where every component of a spec runs.

    Attributes:
        n_shards: shard engines the plan uses (1 = plain single engine).
        assignments: component name -> shard index, complete over the spec's
            segments, hosts and devices.
        cut_segments: segments whose attached stations span shards — the
            fabric's only coupling points.
        lookahead_ns: the conservative-synchronization lookahead — the
            minimum over the cut segments of wire service time for a
            minimum-size frame plus propagation delay, in nanoseconds
            (``None`` when the shards are fully independent).
        sync: the fabric synchronization mode the run was compiled with
            (``"strict"`` or ``"relaxed"``).
        workers: worker threads for relaxed windows (0 = sequential).
        backend: relaxed-window execution backend (``"thread"`` in-process,
            ``"process"`` one worker process per shard).
    """

    n_shards: int
    assignments: Dict[str, int]
    cut_segments: Tuple[str, ...] = ()
    lookahead_ns: Optional[int] = None
    sync: str = "strict"
    workers: int = 0
    backend: str = "thread"


def plan_partition(
    spec: ScenarioSpec, partition: Union[int, PartitionSpec]
) -> PartitionPlan:
    """Partition a spec's segment graph across shard engines.

    Segments are chunked contiguously in declaration order, balancing chunks
    by attachment weight (1 + hosts + device ports per segment); each host is
    placed with its segment and each device with its first port's segment, so
    a bridge chain cuts exactly at chunk boundaries.  Explicit
    :attr:`PartitionSpec.assignments` override any automatic placement.

    The plan's lookahead is the minimum over cut segments of the cross-shard
    handoff latency: the serialization time of a minimum-size frame plus the
    propagation delay (a delivery can land no earlier than its transmit plus
    both).  A cut segment with zero propagation delay is rejected because the
    conservative synchronizer requires cross-shard handoffs to land strictly
    in the receiving shard's future.

    The shard count is clamped to the number of segments; plans for one shard
    (or specs without segments) fall back to the single engine.
    """
    if isinstance(partition, PartitionSpec):
        requested, explicit = partition.shards, dict(partition.assignments)
        sync, workers = partition.sync, partition.workers
        backend = partition.backend
    else:
        requested, explicit = int(partition), {}
        sync, workers = "strict", 0
        backend = "thread"
    if requested < 1:
        raise ValueError("a partition needs at least one shard")
    shards = min(requested, len(spec.segments)) if spec.segments else 1
    known = {
        item.name
        for group in (spec.segments, spec.hosts, spec.devices)
        for item in group
    }
    for name, index in explicit.items():
        if name not in known:
            raise ValueError(
                f"partition assigns unknown component {name!r}; the scenario "
                f"{spec.name!r} has no segment, host or device by that name"
            )
        if not 0 <= int(index) < shards:
            raise ValueError(
                f"partition assigns {name!r} to shard {index}, but the plan "
                f"uses only {shards} shard(s) for {len(spec.segments)} "
                "segment(s); lower the assignment or add segments"
            )
    if shards <= 1:
        names = [item.name for group in (spec.segments, spec.hosts, spec.devices)
                 for item in group]
        return PartitionPlan(
            n_shards=1,
            assignments={name: 0 for name in names},
            sync=sync,
            workers=workers,
            backend=backend,
        )

    weights = {segment.name: 1 for segment in spec.segments}
    for host in spec.hosts:
        weights[host.segment] += 1
    for device in spec.devices:
        for port in device.ports:
            weights[port.segment] += 1

    assignments: Dict[str, int] = {}
    total = sum(weights.values())
    consumed = 0.0
    shard = 0
    remaining = len(spec.segments)
    chunk_size = 0
    for segment in spec.segments:
        # Advance to the next shard once this one has its fair share — and
        # *always* advance when exactly one segment per still-empty shard
        # remains, so no shard is ever left without a segment (the clamp
        # above guarantees there are enough segments to go around).
        if shard < shards - 1 and chunk_size > 0:
            if remaining <= shards - shard - 1 or (
                consumed >= total * (shard + 1) / shards
                and remaining > shards - shard - 1
            ):
                shard += 1
                chunk_size = 0
        assignments[segment.name] = explicit.get(segment.name, shard)
        consumed += weights[segment.name]
        remaining -= 1
        chunk_size += 1
    for host in spec.hosts:
        assignments[host.name] = explicit.get(host.name, assignments[host.segment])
    for device in spec.devices:
        automatic = (
            assignments[device.ports[0].segment] if device.ports else 0
        )
        assignments[device.name] = explicit.get(device.name, automatic)

    cut: List[str] = []
    lookahead_ns: Optional[int] = None
    attached: Dict[str, set] = {segment.name: set() for segment in spec.segments}
    for host in spec.hosts:
        attached[host.segment].add(assignments[host.name])
    for device in spec.devices:
        for port in device.ports:
            attached[port.segment].add(assignments[device.name])
    for segment in spec.segments:
        stations = attached[segment.name]
        if stations - {assignments[segment.name]}:
            cut.append(segment.name)
            if segment.propagation_delay <= 0:
                raise ValueError(
                    f"segment {segment.name!r} joins shards with zero "
                    "propagation delay: the conservative synchronizer has no "
                    "lookahead; give the cut segment a positive delay or "
                    "adjust the partition"
                )
            # The true cross-shard handoff latency is wire *service* plus
            # propagation: a delivery run lands no earlier than its transmit
            # plus the minimum frame's serialization time.  Both knobs only
            # move the latency up at run time (the :meth:`Segment.set_degrade`
            # contract), so folding the minimum wire time into the lookahead
            # stays conservative; the -1 ns absorbs the engine's
            # round-to-nearest nanosecond quantization.
            latency = (
                segment.propagation_delay
                + MIN_WIRE_LENGTH * 8.0 / segment.bandwidth_bps
            )
            delay_ns = seconds_to_ns(latency) - 1
            if lookahead_ns is None or delay_ns < lookahead_ns:
                lookahead_ns = delay_ns
    return PartitionPlan(
        n_shards=shards,
        assignments=assignments,
        cut_segments=tuple(cut),
        lookahead_ns=lookahead_ns,
        sync=sync,
        workers=workers,
        backend=backend,
    )


@dataclass
class ScenarioRun:
    """A compiled, live scenario: the network plus spec-aware accessors.

    Attributes:
        spec: the spec this run was compiled from.
        network: the assembled :class:`~repro.lan.topology.Network`.
        ready_time: simulated time after which the data path is forwarding.
        partition: the partition plan the run was compiled with (``None``
            for single-engine runs).
        faults: the installed :class:`~repro.faults.timeline.FaultTimeline`
            (``None`` when the scenario schedules no faults).
    """

    spec: ScenarioSpec
    network: Network
    ready_time: float
    partition: Optional[PartitionPlan] = None
    faults: Optional[FaultTimeline] = None
    seed: int = 0

    @property
    def n_shards(self) -> int:
        """Shard engines this run executes on (1 = single engine)."""
        return getattr(self.network.sim, "n_shards", 1)

    @property
    def sync(self) -> str:
        """The fabric synchronization mode (``"strict"`` for single engine)."""
        return getattr(self.network.sim, "sync", "strict")

    @property
    def backend(self) -> str:
        """The relaxed execution backend (``"thread"`` for single engine)."""
        return getattr(self.network.sim, "relaxed_backend", "thread")

    # -- accessors ----------------------------------------------------------

    @property
    def sim(self):
        """The shared simulator."""
        return self.network.sim

    def host(self, name: str) -> Host:
        """Look up a host by name."""
        return self.network.host(name)

    def segment(self, name: str) -> Segment:
        """Look up a segment by name."""
        return self.network.segment(name)

    def device(self, name: str) -> object:
        """Look up a device (station) by name."""
        return self.network.station(name)

    @property
    def hosts(self) -> List[Host]:
        """Hosts in spec declaration order."""
        return [self.network.host(spec.name) for spec in self.spec.hosts]

    @property
    def devices(self) -> List[object]:
        """Devices in spec declaration order."""
        return [self.network.station(spec.name) for spec in self.spec.devices]

    def run_until(self, until_seconds: float) -> int:
        """Convenience passthrough to :meth:`Simulator.run_until`."""
        return self.network.run_until(until_seconds)

    def express_report(self) -> Dict[str, str]:
        """Express-lane eligibility per segment (``off``/``inline``/``deferred``).

        A snapshot of :attr:`Segment.express_mode` at call time, in segment
        declaration order.  Eligibility is topology- and declaration-driven
        (not load-driven), so for a given scenario and shard count the report
        is stable — the catalog test pins it.
        """
        return {
            name: segment.express_mode
            for name, segment in self.network.segments.items()
        }

    def report(self, latency_ns=None):
        """Build the structured :class:`~repro.telemetry.report.RunReport`.

        Available with or without telemetry enabled (native counters and
        segment statistics are always reported; the metrics snapshot and
        wall breakdown appear when the run was compiled with
        ``telemetry=True`` or ``sim.enable_telemetry()`` was called).
        ``latency_ns`` optionally carries the caller's round-trip samples
        (nanoseconds) for the p50/p95/p99 latency section.
        """
        from repro.telemetry import build_report

        return build_report(self, latency_ns=latency_ns)

    def warm_up(self) -> None:
        """Run the simulator up to the scenario's ready time.

        Under the process backend, warm-up runs on the in-process relaxed
        engine (canonically identical by the relaxed contract): the process
        backend supports exactly one measured dispatch per run, which the
        warm-up must not consume.
        """
        sim = self.network.sim
        if getattr(sim, "relaxed_backend", "thread") == "process":
            sim.set_backend("thread")
            try:
                self.network.run_until(self.ready_time)
            finally:
                sim.set_backend("process")
            return
        self.network.run_until(self.ready_time)

    # -- measurement adapters ----------------------------------------------

    def as_pair(self) -> PairSetup:
        """View this run as a two-host measurement pair.

        Requires exactly two hosts; the first declared device (if any) is the
        interconnect under test.
        """
        if len(self.spec.hosts) != 2:
            raise ValueError(
                f"scenario {self.spec.name!r} has {len(self.spec.hosts)} hosts; "
                "a pair setup needs exactly two"
            )
        devices = self.devices
        return PairSetup(
            network=self.network,
            left=self.network.host(self.spec.hosts[0].name),
            right=self.network.host(self.spec.hosts[1].name),
            device=devices[0] if devices else None,
            ready_time=self.ready_time,
            label=self.spec.display_label,
        )

    def as_ring(self) -> RingSetup:
        """View this run as the Section 7.5 bridge chain.

        The devices (in declaration order) are the chain; the first and last
        declared segments are the ends the measurement host's NICs close.
        """
        if not self.spec.segments or not self.spec.devices:
            raise ValueError(
                f"scenario {self.spec.name!r} has no devices/segments; "
                "a ring setup needs a bridge chain"
            )
        return RingSetup(
            network=self.network,
            bridges=self.devices,
            left_segment=self.network.segment(self.spec.segments[0].name),
            right_segment=self.network.segment(self.spec.segments[-1].name),
            ready_time=self.ready_time,
        )


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


def _build_switchlet(environment, spec) -> object:
    try:
        factory = SWITCHLET_CATALOG[spec.name]
    except KeyError as exc:
        raise ValueError(
            f"unknown switchlet {spec.name!r}; catalog has "
            f"{sorted(SWITCHLET_CATALOG)}"
        ) from exc
    return factory(environment, **dict(spec.params))


def _vlan_port_config(device: DeviceSpec) -> Dict[str, Dict[str, object]]:
    config: Dict[str, Dict[str, object]] = {}
    for port in device.ports:
        if port.mode == "trunk":
            allowed = None if port.allowed_vlans is None else list(port.allowed_vlans)
            entry: Dict[str, object] = {"mode": "trunk", "allowed": allowed}
            if port.native_vlan is not None:
                entry["native"] = int(port.native_vlan)
            config[port.name] = entry
        else:
            config[port.name] = {"mode": "access", "vlan": int(port.vlan)}
    return config


def _instantiate_device(network: Network, device: DeviceSpec) -> object:
    sim = network.sim_for(device.name)
    if device.kind == "repeater":
        station = BufferedRepeater(sim, device.name, cost_model=network.cost_model)
        for port in device.ports:
            station.add_interface(port.name, network.segment(port.segment))
        return station
    if device.kind == "static-bridge":
        station = StaticLearningBridge(sim, device.name, cost_model=network.cost_model)
        for port in device.ports:
            station.add_interface(port.name, network.segment(port.segment))
        return station
    node = ActiveNode(sim, device.name, cost_model=network.cost_model)
    for port in device.ports:
        node.add_interface(port.name, network.segment(port.segment))
    environment = node.environment.modules
    for switchlet in device.switchlets:
        app = _build_switchlet(environment, switchlet)
        node.load_switchlet(app)
        if not getattr(app, "SEGMENT_LOCAL_SAFE", True):
            # The switchlet disclaims the segment-local contract (it reaches
            # the wire synchronously from delivery context): revoke the
            # express-lane declaration on every port of this node.
            for nic in node.interfaces.values():
                nic.declare_segment_local(False)
    if any(switchlet.name == "vlan-bridge" for switchlet in device.switchlets):
        node.func.call("bridge.vlan.configure", _vlan_port_config(device))
    return node


def _arp_groups(spec: ScenarioSpec) -> List[List[str]]:
    """Host-name groups that should know each other's MAC addresses.

    Hosts are grouped by VLAN: untagged hosts (``vlan=None``) form one
    classic broadcast domain, and each VLAN forms its own.  Group and member
    order follow host declaration order, so ARP warm-up is deterministic.
    """
    groups: Dict[object, List[str]] = {}
    for host in spec.hosts:
        groups.setdefault(host.vlan, []).append(host.name)
    return list(groups.values())


def compile_spec(
    spec: ScenarioSpec,
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    trace_sinks=None,
    shards: Union[int, PartitionSpec] = 1,
    sync: Optional[str] = None,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    faults=None,
    telemetry: bool = False,
) -> ScenarioRun:
    """Compile ``spec`` into a live :class:`ScenarioRun`.

    The call sequence mirrors the legacy hand-written builders exactly:
    segments, hosts, static ARP, ``build()``, then devices in declaration
    order — so address allocation, switchlet load order and therefore every
    simulated timestamp match the pre-fabric code path.

    With ``shards`` > 1 (or an explicit :class:`PartitionSpec`) the same
    sequence is replayed onto a :class:`~repro.sim.fabric.ShardedSimulator`:
    the partitioner places every component on a shard engine and the
    resulting strict run is bit-identical — same traces, same counters, same
    timestamps — to the single-engine compile (see :mod:`repro.sim.fabric`
    for the determinism argument).  ``sync="relaxed"`` (directly or via
    :attr:`PartitionSpec.sync`; the explicit argument wins) switches the
    fabric to concurrent lookahead windows under the canonical-merge
    contract, optionally on ``workers`` threads; ``backend="process"``
    (directly or via :attr:`PartitionSpec.backend`) runs those windows on
    one worker process per shard for wall-clock multi-core speedup.
    Construction always runs strictly — the mode only affects dispatch.

    ``faults`` extends the spec's own fault timeline with additional
    :class:`~repro.faults.spec.FaultSpec` events; the combined timeline is
    installed on the simulator control path *before any event has been
    dispatched*, which is what keeps one timeline bit-identical across the
    single engine, strict shards and relaxed execution (see
    :mod:`repro.faults.timeline`).

    ``telemetry=True`` enables the engine's metrics/span instrumentation
    (:mod:`repro.telemetry`) before any event dispatches.  Telemetry never
    changes a simulation outcome — the determinism suite proves catalog-wide
    bit-identity with it on; ``ScenarioRun.report()`` collects the results.
    """
    plan = plan_partition(spec, shards)
    if sync is not None:
        if sync not in ShardedSimulator.SYNC_MODES:
            raise ValueError(
                f"unknown sync mode {sync!r}; expected one of "
                f"{ShardedSimulator.SYNC_MODES}"
            )
        plan.sync = sync
    if workers is not None:
        plan.workers = workers
    if backend is not None:
        if backend not in ShardedSimulator.BACKENDS:
            raise ValueError(
                f"unknown relaxed backend {backend!r}; expected one of "
                f"{ShardedSimulator.BACKENDS}"
            )
        plan.backend = backend
    if plan.n_shards > 1:
        engine = ShardedSimulator(
            seed=seed,
            shards=plan.n_shards,
            trace_sinks=trace_sinks,
            placement=plan.assignments,
            lookahead_ns=plan.lookahead_ns,
            sync=plan.sync,
            workers=plan.workers,
            backend=plan.backend,
        )
        builder = NetworkBuilder(seed=seed, cost_model=cost_model, engine=engine)
    else:
        plan = None
        builder = NetworkBuilder(
            seed=seed, cost_model=cost_model, trace_sinks=trace_sinks
        )
    for segment in spec.segments:
        builder.add_segment(
            segment.name,
            bandwidth_bps=segment.bandwidth_bps,
            propagation_delay=segment.propagation_delay,
        )
    for host in spec.hosts:
        builder.add_host(host.name, host.segment, ip=host.ip)
    if spec.static_arp and spec.hosts:
        for group in _arp_groups(spec):
            builder.populate_static_arp(group)
    network = builder.build()
    for device in spec.devices:
        builder.register_station(device.name, _instantiate_device(network, device))
    fault_events = tuple(spec.faults) + tuple(faults or ())
    timeline = None
    if fault_events:
        timeline = FaultTimeline(seed=seed).extend(fault_events)
        timeline.install(network)
    if telemetry:
        # After construction, before any event dispatches: metrics are
        # deterministic functions of the event stream and spans are
        # out-of-band wall clock, so this cannot change an outcome.
        network.sim.enable_telemetry()
    return ScenarioRun(
        spec=spec, network=network, ready_time=spec.ready_time, partition=plan,
        faults=timeline, seed=seed,
    )
