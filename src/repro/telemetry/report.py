"""Structured run reports: one JSON-able document per scenario run.

:func:`build_report` folds everything a run knows about itself — engine
configuration, native event/fabric counters, segment statistics (shipped
from workers when the process backend ran), the telemetry registry
snapshot, and the wall-clock phase breakdown — into a :class:`RunReport`
dataclass.  ``tools/report.py`` renders it as a console table or exports
the metrics section in Prometheus text format.

Everything here is read-only over the run: building a report never mutates
simulation state (segment statistics are snapshotted, not reset).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional

from .metrics import METRIC_FAMILIES

#: Segment statistic fields shipped from process-backend workers and
#: snapshotted from live segments — one shape for both sources.
SEGMENT_STAT_FIELDS = (
    "frames_carried",
    "bytes_carried",
    "cross_shard_frames",
    "frames_lost",
    "frames_corrupted",
    "frames_coalesced",
)


def snapshot_segment(segment) -> dict:
    """A plain-data statistics snapshot of a live :class:`Segment`."""
    stats = {name: getattr(segment, name) for name in SEGMENT_STAT_FIELDS}
    stats["busy_seconds"] = segment._busy_until
    stats["utilization"] = segment.utilization()
    stats["express_mode"] = segment.express_mode
    return stats


@dataclass
class RunReport:
    """The structured report attached to a :class:`ScenarioRun`."""

    scenario: str
    seed: int
    engine: Dict[str, object]
    sim_time_s: float
    events: Dict[str, int]
    fabric: Dict[str, int]
    segments: Dict[str, dict]
    express: Dict[str, object]
    drops: Dict[str, int]
    telemetry_enabled: bool
    wall: Optional[dict] = None
    latency_ns: Optional[Dict[str, float]] = None
    metrics: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """The metrics section in Prometheus text exposition format.

        Registry keys are already ``family{label="value"}`` sample names;
        ``# HELP``/``# TYPE`` headers come from :data:`METRIC_FAMILIES`.
        """
        lines = []
        seen = set()

        def header(sample_key: str, kind: str) -> None:
            family = sample_key.split("{", 1)[0]
            if family in seen:
                return
            seen.add(family)
            help_text = METRIC_FAMILIES.get(family, "")
            if help_text:
                lines.append(f"# HELP {family} {help_text}")
            lines.append(f"# TYPE {family} {kind}")

        for key, value in (self.metrics.get("counters") or {}).items():
            header(key, "counter")
            lines.append(f"{key} {value}")
        for key, value in (self.metrics.get("gauges") or {}).items():
            header(key, "gauge")
            lines.append(f"{key} {value}")
        for key, data in (self.metrics.get("histograms") or {}).items():
            header(key, "histogram")
            family, _, labels = key.partition("{")
            labels = labels[:-1] if labels else ""
            cumulative = 0
            for bound, count in zip(data["bounds"], data["counts"]):
                cumulative += count
                extra = f'le="{bound:g}"'
                inner = f"{labels},{extra}" if labels else extra
                lines.append(f"{family}_bucket{{{inner}}} {cumulative}")
            cumulative += data["counts"][-1]
            inner = f'{labels},le="+Inf"' if labels else 'le="+Inf"'
            lines.append(f"{family}_bucket{{{inner}}} {cumulative}")
            suffix = f"{{{labels}}}" if labels else ""
            lines.append(f"{family}_sum{suffix} {data['sum']}")
            lines.append(f"{family}_count{suffix} {data['count']}")
        return "\n".join(lines) + ("\n" if lines else "")


def _express_summary(segments: Dict[str, dict]) -> dict:
    """Express-lane hit rates aggregated over a segment-stats snapshot."""
    frames_by_mode = {"off": 0, "inline": 0, "deferred": 0}
    coalesced = 0
    for stats in segments.values():
        mode = stats.get("express_mode", "off")
        frames_by_mode[mode] = frames_by_mode.get(mode, 0) + stats["frames_carried"]
        coalesced += stats["frames_coalesced"]
    total = sum(frames_by_mode.values())
    summary: Dict[str, object] = {
        "frames_by_mode": frames_by_mode,
        "frames_coalesced": coalesced,
        "frames_total": total,
    }
    if total:
        summary["hit_rates"] = {
            mode: count / total for mode, count in frames_by_mode.items()
        }
        summary["coalesced_rate"] = coalesced / total
    return summary


def build_report(run, latency_ns=None) -> RunReport:
    """Build the structured report for a compiled scenario run.

    ``latency_ns`` is an optional iterable of round-trip samples (ns) from
    the caller's own measurement loop; when given, the report carries a
    p50/p95/p99 summary via :func:`repro.measurement.analysis.latency_summary`.
    """
    from repro.measurement.analysis import latency_summary

    sim = run.sim
    telemetry = getattr(sim, "_telemetry", None)
    n_shards = run.n_shards

    engine = {
        "mode": "single" if n_shards == 1 else run.sync,
        "shards": n_shards,
        "sync": run.sync,
        "backend": run.backend,
    }

    events: Dict[str, int] = {"dispatched": sim.events_dispatched}
    fabric: Dict[str, int] = {}
    if n_shards > 1:
        fabric.update(sim.relaxed_stats)

    # Segment statistics: when a process dispatch ran, the parent's Segment
    # objects only saw the replicated barrier work — the authoritative
    # numbers are the ones the workers shipped home with their trace
    # suffixes.  Force the lazy fetch so they are present.
    segments: Dict[str, dict] = {}
    shipped = None
    if telemetry is not None and n_shards > 1:
        proc_fetch = getattr(sim, "_proc_fetch", None)
        if proc_fetch is not None:
            proc_fetch()
        shipped = telemetry.shipped_segments or None
    if shipped:
        segments = {name: dict(stats) for name, stats in sorted(shipped.items())}
    else:
        for name in sorted(run.network.segments):
            segments[name] = snapshot_segment(run.network.segments[name])

    drops = {
        "frames_lost": sum(s["frames_lost"] for s in segments.values()),
        "frames_corrupted": sum(s["frames_corrupted"] for s in segments.values()),
    }

    wall = None
    metrics: dict = {}
    if telemetry is not None:
        wall = telemetry.profiler.breakdown()
        metrics = telemetry.registry.snapshot()
        high_waters = [
            value
            for key, value in (metrics.get("gauges") or {}).items()
            if key.split("{", 1)[0] == "engine_queue_high_water"
        ]
        if high_waters:
            events["queue_high_water"] = int(max(high_waters))

    return RunReport(
        scenario=run.spec.name,
        seed=getattr(run, "seed", 0),
        engine=engine,
        sim_time_s=sim.now,
        events=events,
        fabric=fabric,
        segments=segments,
        express=_express_summary(segments),
        drops=drops,
        telemetry_enabled=telemetry is not None,
        wall=wall,
        latency_ns=latency_summary(latency_ns) if latency_ns is not None else None,
        metrics=metrics,
    )
