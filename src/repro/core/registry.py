"""The ``Func`` registration module.

Section 5.2.1: "The first of these, ``Func``, contains glue routines to allow
the loaded functions to properly register themselves.  The register routine
simply takes a string as a key and a function and enters them into a hash
table.  There is also a function that allows one to evaluate one of these
functions."

Because dynamically loaded code cannot be called by previously linked code
directly (there is no name for it), registration through ``Func`` is how a
switchlet makes itself reachable: the dumb bridge registers the node's
``"bridge.switch"`` function, the learning switchlet *replaces* that
registration, the spanning-tree switchlet registers port filters, and the
control switchlet registers and inspects all of them.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.exceptions import RegistrationError


class FuncRegistry:
    """A string-keyed table of registered functions (and values).

    The registry is deliberately permissive about what gets registered — any
    object is allowed, because the paper's switchlets also hang shared data
    structures (host location tables, captured protocol state) off the same
    mechanism ("the byte codes usually contain some top-level forms that call
    a registration function, that changes a data structure visible to
    previously linked functions").
    """

    def __init__(self) -> None:
        self._table: Dict[str, object] = {}
        self._history: List[tuple] = []

    # ------------------------------------------------------------------
    # The thinned interface (what switchlets see)
    # ------------------------------------------------------------------

    def register(self, key: str, value: object) -> None:
        """Register ``value`` under ``key``, replacing any previous entry.

        Replacement is intentional: the learning switchlet replaces the dumb
        bridge's switching function by registering under the same key.
        """
        if not isinstance(key, str) or not key:
            raise RegistrationError("registration key must be a non-empty string")
        previous = self._table.get(key)
        self._table[key] = value
        self._history.append((key, previous is not None))

    def unregister(self, key: str) -> None:
        """Remove a registration (missing keys are ignored)."""
        self._table.pop(key, None)

    def registered(self, key: str) -> bool:
        """Whether ``key`` currently has a registration."""
        return key in self._table

    def lookup(self, key: str) -> object:
        """Return the registered value for ``key``.

        Raises:
            RegistrationError: if nothing is registered under ``key``.
        """
        try:
            return self._table[key]
        except KeyError as exc:
            raise RegistrationError(f"nothing registered under {key!r}") from exc

    def lookup_opt(self, key: str) -> Optional[object]:
        """Return the registered value for ``key`` or ``None``."""
        return self._table.get(key)

    def call(self, key: str, *args: object) -> object:
        """Evaluate the function registered under ``key`` with ``args``.

        Raises:
            RegistrationError: if nothing is registered or the entry is not
                callable.
        """
        value = self.lookup(key)
        if not callable(value):
            raise RegistrationError(f"registration {key!r} is not callable")
        function: Callable = value
        return function(*args)

    def keys(self) -> list:
        """The currently registered keys, sorted."""
        return sorted(self._table)

    # ------------------------------------------------------------------
    # Loader-side introspection (not exported to switchlets)
    # ------------------------------------------------------------------

    @property
    def registration_history(self) -> list:
        """``(key, replaced_existing)`` tuples, in registration order."""
        return list(self._history)

    def clear(self) -> None:
        """Remove every registration (used when resetting a node)."""
        self._table.clear()
        self._history.clear()

    #: Names exported to switchlets when this registry is thinned.
    THINNED_EXPORTS = (
        "register",
        "unregister",
        "registered",
        "lookup",
        "lookup_opt",
        "call",
        "keys",
    )
