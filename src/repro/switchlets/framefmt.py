"""Frame unmarshalling helpers used inside switchlets.

The paper is explicit that switchlets receive raw bytes and "the user must
unmarshall the data from the string" (Section 6).  :class:`FrameFmt` is the
small set of helpers the bridge switchlets use to do that unmarshalling.

This class is *shipped as part of every bridge switchlet*: the packaging
layer extracts its source and prepends it to each switchlet's source text, so
the loaded code is self-contained and uses nothing beyond safe builtins.
(That is also why it uses ``int.from_bytes`` instead of the ``struct``
module, which switchlets cannot import.)
"""

from __future__ import annotations


class FrameFmt:
    """Static helpers for picking apart and building Ethernet frame bytes.

    The ``pkt`` byte strings handled here are the format defined by
    :mod:`repro.core.unixnet`: destination (6) + source (6) + EtherType (2) +
    payload, with no frame check sequence.
    """

    HEADER_LEN = 14
    BROADCAST = "ff:ff:ff:ff:ff:ff"
    VLAN_TPID = 0x8100

    @staticmethod
    def dst_bytes(pkt):
        """Destination MAC address as 6 raw bytes."""
        return bytes(pkt[0:6])

    @staticmethod
    def src_bytes(pkt):
        """Source MAC address as 6 raw bytes."""
        return bytes(pkt[6:12])

    @staticmethod
    def ethertype(pkt):
        """The 16-bit EtherType field."""
        return int.from_bytes(bytes(pkt[12:14]), "big")

    @staticmethod
    def payload(pkt):
        """The frame payload (everything after the 14-byte header)."""
        return bytes(pkt[14:])

    @staticmethod
    def mac_to_str(mac_bytes):
        """Render 6 raw bytes as the usual colon-separated string."""
        return ":".join("%02x" % b for b in bytes(mac_bytes))

    @staticmethod
    def str_to_mac(text):
        """Parse a colon-separated MAC string back into 6 raw bytes."""
        parts = str(text).split(":")
        if len(parts) != 6:
            raise ValueError("malformed MAC string: %r" % (text,))
        return bytes(int(part, 16) for part in parts)

    @staticmethod
    def is_group(mac_bytes):
        """Whether the address has the multicast/broadcast group bit set."""
        data = bytes(mac_bytes)
        return bool(data[0] & 0x01)

    @staticmethod
    def dst_str(pkt):
        """Destination MAC as a string."""
        return FrameFmt.mac_to_str(FrameFmt.dst_bytes(pkt))

    @staticmethod
    def src_str(pkt):
        """Source MAC as a string."""
        return FrameFmt.mac_to_str(FrameFmt.src_bytes(pkt))

    @staticmethod
    def build(dst_bytes, src_bytes, ethertype, payload):
        """Assemble header + payload bytes for ``Unixnet.send_pkt_out``."""
        return (
            bytes(dst_bytes)
            + bytes(src_bytes)
            + int(ethertype).to_bytes(2, "big")
            + bytes(payload)
        )

    # -- 802.1Q tag handling -------------------------------------------------
    #
    # A tagged ``pkt`` carries TPID (2) + TCI (2) between the source address
    # and the real EtherType, exactly as on the wire.

    @staticmethod
    def is_tagged(pkt):
        """Whether the frame bytes carry an 802.1Q tag."""
        return int.from_bytes(bytes(pkt[12:14]), "big") == FrameFmt.VLAN_TPID

    @staticmethod
    def vlan_id(pkt):
        """The 12-bit VLAN id, or ``None`` for untagged frames."""
        if not FrameFmt.is_tagged(pkt):
            return None
        return int.from_bytes(bytes(pkt[14:16]), "big") & 0x0FFF

    @staticmethod
    def vlan_priority(pkt):
        """The 3-bit priority code point, or ``None`` for untagged frames."""
        if not FrameFmt.is_tagged(pkt):
            return None
        return int.from_bytes(bytes(pkt[14:16]), "big") >> 13

    @staticmethod
    def add_vlan(pkt, vid, priority=0):
        """Insert an 802.1Q tag into untagged frame bytes."""
        if FrameFmt.is_tagged(pkt):
            raise ValueError("frame is already 802.1Q-tagged")
        data = bytes(pkt)
        tci = ((int(priority) & 0x7) << 13) | (int(vid) & 0x0FFF)
        return (
            data[0:12]
            + FrameFmt.VLAN_TPID.to_bytes(2, "big")
            + tci.to_bytes(2, "big")
            + data[12:]
        )

    @staticmethod
    def strip_vlan(pkt):
        """Remove the 802.1Q tag from tagged frame bytes (no-op if untagged)."""
        data = bytes(pkt)
        if not FrameFmt.is_tagged(data):
            return data
        return data[0:12] + data[16:]
