"""Experiment records: paper value versus measured value.

Every benchmark produces :class:`ExperimentRecord` entries; an
:class:`ExperimentReport` renders them in the same "paper vs. measured" form
that ``EXPERIMENTS.md`` documents, so regenerating the numbers and updating
the documentation stay in lock-step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.tables import render_counters, render_table


@dataclass(frozen=True)
class ExperimentRecord:
    """One compared quantity.

    Attributes:
        experiment: identifier (e.g. ``"Figure 10"``).
        quantity: what is being compared (e.g. ``"bridged ttcp throughput"``).
        paper_value: the value reported in the paper (as text, units included).
        measured_value: the value this reproduction measured.
        comment: free-form note (e.g. why the absolute numbers differ).
    """

    experiment: str
    quantity: str
    paper_value: str
    measured_value: str
    comment: str = ""


@dataclass
class ExperimentReport:
    """A collection of records with a plain-text rendering."""

    title: str
    records: List[ExperimentRecord] = field(default_factory=list)

    def add(
        self,
        experiment: str,
        quantity: str,
        paper_value: str,
        measured_value: str,
        comment: str = "",
    ) -> ExperimentRecord:
        """Append a record and return it."""
        record = ExperimentRecord(
            experiment=experiment,
            quantity=quantity,
            paper_value=paper_value,
            measured_value=measured_value,
            comment=comment,
        )
        self.records.append(record)
        return record

    def render(self) -> str:
        """Render the report as an aligned table."""
        headers = ["experiment", "quantity", "paper", "measured", "comment"]
        rows = [
            [r.experiment, r.quantity, r.paper_value, r.measured_value, r.comment]
            for r in self.records
        ]
        return render_table(headers, rows, title=self.title)

    def find(self, experiment: str, quantity: Optional[str] = None) -> List[ExperimentRecord]:
        """Records matching an experiment id (and optionally a quantity)."""
        matches = [record for record in self.records if record.experiment == experiment]
        if quantity is not None:
            matches = [record for record in matches if record.quantity == quantity]
        return matches


def trace_summary(trace, title: str = "Trace activity") -> str:
    """Render an experiment's trace activity from the hub's live counters.

    Args:
        trace: a :class:`~repro.sim.trace.TraceRecorder`.
        title: table title.

    The summary costs O(categories), not O(records): it reads the hub's
    always-on :class:`~repro.sim.trace.CountingSink`, so it works unchanged
    with a bounded :class:`~repro.sim.trace.RingBufferSink` or even a
    :class:`~repro.sim.trace.NullSink` installed.
    """
    return render_counters(trace.counters.snapshot(), title=title)
