"""The second switchlet: self-learning.

Section 5.3: "The second switchlet adds learning to the bridge.  This
switchlet replaces the switching function from the dumb bridge with one that
learns the locations of the hosts on the network.  For each packet received,
the triple (source address, current time, input port) is placed into a hash
table keyed by the source address, replacing any previous entry.  Next, the
hash table is searched for the destination address of the packet.  If a match
is found and is current, the packet is sent out on the port indicated unless
that was the port on which the packet was received.  If no match is found,
this bridge has not yet learned the destination address and the packet is
sent out on all ports except the one on which it arrived."

Footnote 3: "if the source address is a multicast or broadcast address, this
step is bypassed.  Similarly, if the destination address is a broadcast or
multicast address, the packet is sent out on all ports except the one on
which it arrived."

:class:`LearningBridgeApp` is exactly that switching function.  It requires
the dumb bridge to be loaded first (it uses its ``"bridge.send_out"`` /
``"bridge.ports"`` access points and replaces its ``"bridge.switch"``
registration), mirroring the incremental build-up of the paper.
"""

from __future__ import annotations

from repro.switchlets.framefmt import FrameFmt


class LearningTable:
    """The host-location table: source MAC -> (time learned, input port).

    Entries older than ``aging_time`` are treated as absent (the paper's
    "if a match is found and is current").
    """

    DEFAULT_AGING_TIME = 300.0

    def __init__(self, hashtbl_module, aging_time=DEFAULT_AGING_TIME):
        # hashtbl_module is Safestd.Hashtbl -- the Caml-style hash table the
        # paper's learning switchlet keys by source address.
        self._table = hashtbl_module.create(64)
        self.aging_time = float(aging_time)
        self.learned = 0
        self.refreshed = 0

    def learn(self, source_mac, now, in_port):
        """Record (source address, current time, input port), replacing any entry."""
        existing = self._table.find_opt(source_mac)
        if existing is None:
            self.learned += 1
        else:
            self.refreshed += 1
        self._table.replace(source_mac, (float(now), in_port))

    def lookup(self, destination_mac, now):
        """Return the learned port for ``destination_mac`` if current, else ``None``."""
        entry = self._table.find_opt(destination_mac)
        if entry is None:
            return None
        learned_at, port = entry
        if float(now) - learned_at > self.aging_time:
            return None
        return port

    def forget(self, mac):
        """Remove a learned entry (used when a port goes down)."""
        self._table.remove(mac)

    def size(self):
        """Number of addresses currently in the table (including stale ones)."""
        return len(self._table.keys())

    def snapshot(self, now):
        """A dict of address -> (age, port) for every *current* entry."""
        result = {}
        for mac, entry in self._table.items():
            learned_at, port = entry
            age = float(now) - learned_at
            if age <= self.aging_time:
                result[mac] = (age, port)
        return result


class LearningBridgeApp:
    """The self-learning switching function.

    Args:
        unixnet: the thinned ``Unixnet`` module (unused on the hot path but
            kept so the app could bind ports directly if loaded standalone).
        func: the thinned ``Func`` registry.
        log: the thinned ``Log`` module.
        safeunix: the thinned ``Safeunix`` module (for ``gettimeofday``).
        safestd: the thinned ``Safestd`` module (for ``Hashtbl``).
        aging_time: seconds after which a learned entry is no longer current.
    """

    #: Express-lane safety declaration consumed by the scenario compiler
    #: (see repro.scenario.compile): the learning bridge reaches the wire only
    #: through unixnet writes, which ride the node's CPU queue — its
    #: reactions never escape a segment synchronously, so the node's ports
    #: keep their ``segment_local`` declaration with this switchlet loaded.
    SEGMENT_LOCAL_SAFE = True

    SWITCH_KEY = "bridge.switch"
    SEND_OUT_KEY = "bridge.send_out"
    PORTS_KEY = "bridge.ports"
    LOOKUP_KEY = "bridge.learning.lookup"
    SNAPSHOT_KEY = "bridge.learning.snapshot"
    STATS_KEY = "bridge.learning.stats"
    FILTER_KEY = "bridge.learning.set_port_filter"

    def __init__(self, unixnet, func, log, safeunix, safestd,
                 aging_time=LearningTable.DEFAULT_AGING_TIME):
        self.unixnet = unixnet
        self.func = func
        self.log = log
        self.safeunix = safeunix
        self.table = LearningTable(safestd.Hashtbl, aging_time)
        self.port_filter = None
        self.running = False
        self.frames_handled = 0
        self.frames_forwarded = 0
        self.frames_flooded = 0
        self.frames_filtered = 0
        self.frames_suppressed = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        """Replace the dumb bridge's switching function with the learning one."""
        if self.running:
            return
        if not self.func.registered(self.SEND_OUT_KEY):
            raise RuntimeError(
                "learning bridge requires the dumb bridge switchlet to be loaded first"
            )
        self.func.register(self.SWITCH_KEY, self.switch)
        self.func.register(self.LOOKUP_KEY, self.lookup)
        self.func.register(self.SNAPSHOT_KEY, self.snapshot)
        self.func.register(self.STATS_KEY, self.stats)
        self.func.register(self.FILTER_KEY, self.set_port_filter)
        # Keep the canonical filter access point pointing at this switchlet
        # so the spanning tree talks to whichever switching function is live.
        self.func.register("bridge.set_port_filter", self.set_port_filter)
        self.running = True
        self.log.log("learning bridge switching function installed")

    # ------------------------------------------------------------------
    # The switching function
    # ------------------------------------------------------------------

    def switch(self, in_port, pkt_bytes):
        """Learn from the source address, then forward or flood."""
        self.frames_handled += 1
        now = self.safeunix.gettimeofday()
        src = FrameFmt.src_bytes(pkt_bytes)
        dst = FrameFmt.dst_bytes(pkt_bytes)
        src_str = FrameFmt.mac_to_str(src)
        dst_str = FrameFmt.mac_to_str(dst)

        if self._allowed(in_port, None) is False:
            # The input port is suppressed (not on the spanning tree): the
            # frame is neither learned from nor forwarded.
            self.frames_suppressed += 1
            return

        # Footnote 3: never learn from group source addresses.
        if not FrameFmt.is_group(src):
            self.table.learn(src_str, now, in_port)

        # Footnote 3: group destinations are always flooded.
        if FrameFmt.is_group(dst):
            self._flood(in_port, pkt_bytes)
            return

        out_port = self.table.lookup(dst_str, now)
        if out_port is None:
            self._flood(in_port, pkt_bytes)
            return
        if out_port == in_port:
            # The destination lies on the LAN the frame came from: filtering
            # it is the whole point of a learning bridge.
            self.frames_filtered += 1
            return
        if not self._allowed(in_port, out_port):
            self.frames_suppressed += 1
            return
        self.func.call(self.SEND_OUT_KEY, out_port, pkt_bytes)
        self.frames_forwarded += 1

    def _flood(self, in_port, pkt_bytes):
        ports = self.func.call(self.PORTS_KEY)
        sent = 0
        for out_port in ports:
            if out_port == in_port:
                continue
            if not self._allowed(in_port, out_port):
                self.frames_suppressed += 1
                continue
            self.func.call(self.SEND_OUT_KEY, out_port, pkt_bytes)
            sent += 1
        if sent:
            self.frames_flooded += 1

    def _allowed(self, in_port, out_port):
        if self.port_filter is None:
            return True
        return bool(self.port_filter(in_port, out_port))

    # ------------------------------------------------------------------
    # Access points
    # ------------------------------------------------------------------

    def set_port_filter(self, predicate):
        """Install (or clear) the spanning-tree forwarding filter."""
        self.port_filter = predicate

    def lookup(self, mac_str):
        """The learned port for a MAC string, if the entry is current."""
        return self.table.lookup(mac_str, self.safeunix.gettimeofday())

    def snapshot(self):
        """The current host-location table as address -> (age, port)."""
        return self.table.snapshot(self.safeunix.gettimeofday())

    def stats(self):
        """Forwarding and learning counters."""
        return {
            "frames_handled": self.frames_handled,
            "frames_forwarded": self.frames_forwarded,
            "frames_flooded": self.frames_flooded,
            "frames_filtered": self.frames_filtered,
            "frames_suppressed": self.frames_suppressed,
            "addresses_learned": self.table.learned,
            "table_size": self.table.size(),
        }


#: Source epilogue executed when this switchlet is loaded into a node.
REGISTRATION_SOURCE = """
_app = LearningBridgeApp(Unixnet, Func, Log, Safeunix, Safestd)
_app.start()
Func.register("switchlet.learning-bridge", _app)
"""

#: The classes whose source is shipped inside the learning-bridge switchlet.
PACKAGED_COMPONENTS = (FrameFmt, LearningTable, LearningBridgeApp)
