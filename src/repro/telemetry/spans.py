"""Out-of-band wall-clock spans: phase timers and span profiles.

Everything in this module measures *wall* time and lives strictly outside
the simulated world: no simulated timestamp, event, or RNG ever observes a
span.  The determinism contract is structural — the executors consult
``perf_counter`` only on code paths guarded by a telemetry check, so the
overhead smoke test can patch :data:`perf_counter` here to raise and prove
the default-off path never calls it.

Phases are attributed *contiguously*: :class:`PhaseTimer` laps from one
transition to the next with no unattributed gaps, which is what lets the
wall-report assert that per-phase seconds sum to the total dispatch wall
time within 5%.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional

#: The phase names the executors attribute dispatch wall time to.
#: ``compute`` — shard window drains (worker-side for the process backend);
#: ``barrier`` — waiting on mail flushes and control-ring barriers;
#: ``pipe``    — process-backend round-trip time net of worker compute;
#: ``plan``    — parent-side window planning (top scans, bound folding).
PHASES = ("compute", "barrier", "pipe", "plan")


class SpanProfiler:
    """Accumulates wall seconds per phase across a whole dispatch.

    One profiler lives on the fabric's :class:`~repro.telemetry.Telemetry`
    state and survives across dispatch calls; ``total`` is recorded
    independently of the phases so a breakdown consumer can check that the
    attribution actually covers the wall it claims to.
    """

    def __init__(self) -> None:
        self.phase_seconds: Dict[str, float] = {}
        self.total_seconds = 0.0
        self.windows = 0

    def add(self, phase: str, seconds: float) -> None:
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    def add_total(self, seconds: float) -> None:
        self.total_seconds += seconds

    def breakdown(self) -> dict:
        """Plain-data phase breakdown for reports and the wall sweep."""
        out = {f"{phase}_s": self.phase_seconds.get(phase, 0.0) for phase in PHASES}
        out["total_s"] = self.total_seconds
        out["windows"] = self.windows
        attributed = sum(self.phase_seconds.get(phase, 0.0) for phase in PHASES)
        out["attributed_s"] = attributed
        return out


class PhaseTimer:
    """Contiguous phase attribution for one dispatch call.

    Usage::

        timer = PhaseTimer()
        ...plan a window...
        timer.lap("plan")
        ...drain shard windows...
        timer.lap("compute")
        ...flush mail / run control barrier...
        timer.lap("barrier")
        timer.finish(profiler)

    Every wall second between construction and :meth:`finish` lands in
    exactly one phase — laps measure *since the previous lap*, so there are
    no gaps and no double counting.
    """

    __slots__ = ("_start", "_mark", "_seconds")

    def __init__(self) -> None:
        now = perf_counter()
        self._start = now
        self._mark = now
        self._seconds: Dict[str, float] = {}

    def lap(self, phase: str) -> float:
        """Attribute the time since the last lap to ``phase``."""
        now = perf_counter()
        elapsed = now - self._mark
        self._mark = now
        self._seconds[phase] = self._seconds.get(phase, 0.0) + elapsed
        return elapsed

    def split(self) -> float:
        """Seconds since the last lap, without attributing them."""
        return perf_counter() - self._mark

    def shift(self, source: str, target: str, seconds: float) -> None:
        """Re-attribute ``seconds`` from one phase to another.

        The process backend laps a whole pipe round into one phase, then
        moves the worker-reported compute share out of it — keeping the
        no-gaps invariant while splitting a round that interleaves both.
        """
        if seconds <= 0.0:
            return
        self._seconds[source] = self._seconds.get(source, 0.0) - seconds
        self._seconds[target] = self._seconds.get(target, 0.0) + seconds

    def finish(self, profiler: Optional[SpanProfiler]) -> float:
        """Close the timer, folding phases and total into ``profiler``."""
        now = perf_counter()
        tail = now - self._mark
        total = now - self._start
        if profiler is not None:
            for phase, seconds in self._seconds.items():
                profiler.add(phase, seconds)
            if tail > 0.0:
                # Anything after the final lap is bookkeeping on the way
                # out of dispatch; attribute it to planning.
                profiler.add("plan", tail)
            profiler.add_total(total)
        return total
