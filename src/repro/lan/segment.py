"""A shared broadcast LAN segment.

The segment models classic shared Ethernet: one transmission at a time, every
attached station sees every frame, and a frame occupies the wire for
``wire_length * 8 / bandwidth`` seconds plus a small propagation delay.
Stations that want to transmit while the medium is busy are queued in FIFO
order (an idealized, collision-free CSMA — adequate because the paper's
experiments are not collision-bound, they are bridge-CPU-bound).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional, Tuple

from repro.ethernet.frame import EthernetFrame
from repro.exceptions import TopologyError
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking only
    from repro.lan.nic import NetworkInterface

#: 100 Mb/s, the LAN speed used throughout the paper's evaluation.
DEFAULT_BANDWIDTH_BPS = 100_000_000

#: A few microseconds of propagation/repeater latency per segment.
DEFAULT_PROPAGATION_DELAY = 2e-6


class Segment:
    """A shared, half-duplex broadcast Ethernet segment.

    Args:
        sim: the owning simulator.
        name: segment name used in traces (e.g. ``"lan1"``).
        bandwidth_bps: wire speed in bits per second.
        propagation_delay: one-way propagation delay in seconds.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        propagation_delay: float = DEFAULT_PROPAGATION_DELAY,
    ) -> None:
        if bandwidth_bps <= 0:
            raise TopologyError("segment bandwidth must be positive")
        if propagation_delay < 0:
            raise TopologyError("propagation delay cannot be negative")
        self.sim = sim
        self.name = name
        self.bandwidth_bps = float(bandwidth_bps)
        self.propagation_delay = float(propagation_delay)
        self._interfaces: list["NetworkInterface"] = []
        self._busy_until = 0.0
        self._pending: Deque[Tuple["NetworkInterface", EthernetFrame]] = deque()
        self._in_service = False
        # Event labels are fixed per segment; building them per frame shows
        # up on the hot path.
        self._deliver_label = f"{name}:deliver"
        self._next_label = f"{name}:next"
        # Statistics
        self.frames_carried = 0
        self.bytes_carried = 0

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------

    @property
    def interfaces(self) -> tuple:
        """The NICs currently attached to this segment."""
        return tuple(self._interfaces)

    def attach(self, interface: "NetworkInterface") -> None:
        """Attach a NIC.  A NIC may be attached to at most one segment."""
        if interface in self._interfaces:
            raise TopologyError(
                f"interface {interface.name} is already attached to {self.name}"
            )
        self._interfaces.append(interface)

    def detach(self, interface: "NetworkInterface") -> None:
        """Detach a NIC (frames already queued from it still complete)."""
        if interface not in self._interfaces:
            raise TopologyError(
                f"interface {interface.name} is not attached to {self.name}"
            )
        self._interfaces.remove(interface)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------

    def serialization_delay(self, frame: EthernetFrame) -> float:
        """Time the frame occupies the wire, in seconds."""
        return frame.wire_length * 8.0 / self.bandwidth_bps

    def transmit(self, sender: "NetworkInterface", frame: EthernetFrame) -> None:
        """Queue ``frame`` from ``sender`` for transmission on this segment.

        Delivery to every other attached NIC happens after the medium becomes
        free, the frame serializes, and the propagation delay elapses.
        """
        if sender not in self._interfaces:
            raise TopologyError(
                f"interface {sender.name} transmitted on {self.name} "
                "without being attached"
            )
        self._pending.append((sender, frame))
        trace = self.sim.trace
        if trace.wants("segment.enqueue"):
            trace.emit(
                self.name,
                "segment.enqueue",
                lambda: {"sender": sender.name, "frame": frame.describe()},
            )
        if not self._in_service:
            self._service_next()

    def _service_next(self) -> None:
        if not self._pending:
            self._in_service = False
            return
        self._in_service = True
        sender, frame = self._pending.popleft()
        now = self.sim.now
        start = max(now, self._busy_until)
        serialization = self.serialization_delay(frame)
        finish = start + serialization
        self._busy_until = finish
        deliver_at = finish + self.propagation_delay
        self.frames_carried += 1
        # Wire occupancy, consistent with serialization_delay(): the frame
        # plus preamble/SFD/inter-frame gap, not just header+payload+FCS.
        self.bytes_carried += frame.wire_length

        def deliver() -> None:
            self._deliver(sender, frame)

        self.sim.schedule_at(deliver_at, deliver, label=self._deliver_label)
        self.sim.schedule_at(finish, self._service_next, label=self._next_label)

    def _deliver(self, sender: "NetworkInterface", frame: EthernetFrame) -> None:
        trace = self.sim.trace
        if trace.wants("segment.deliver"):
            trace.emit(
                self.name,
                "segment.deliver",
                lambda: {"sender": sender.name, "frame": frame.describe()},
            )
        # Snapshot the list: receivers may attach/detach during delivery.
        for interface in list(self._interfaces):
            if interface is sender:
                continue
            interface.deliver(frame)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def utilization(self, elapsed_seconds: Optional[float] = None) -> float:
        """Fraction of wire capacity used since time zero (or over ``elapsed_seconds``)."""
        elapsed = self.sim.now if elapsed_seconds is None else elapsed_seconds
        if elapsed <= 0:
            return 0.0
        bits = self.bytes_carried * 8.0
        return min(1.0, bits / (self.bandwidth_bps * elapsed))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Segment({self.name!r}, {self.bandwidth_bps/1e6:.0f} Mb/s, "
            f"{len(self._interfaces)} stations)"
        )
