"""Failover benchmark: spanning-tree reconvergence on the closed bridge ring.

Drives the ``ring/failover`` catalog scenario — a physical loop of active
bridges running the IEEE 802.1D spanning tree with the standard 2/20/15 s
timers — through a complete failure episode: warm-up to a converged tree, a
scripted ``link-down`` on a forwarding segment (the :mod:`repro.faults`
subsystem), a ping train crossing the outage, and the reconvergence measured
externally by the :class:`~repro.measurement.convergence.ConvergenceProbe`:

* **detection time** — max-age expiry on the bridges that lose the root's
  hellos (~``max_age`` after the failure);
* **reconvergence time** — the blocked port walking listening → learning →
  forwarding (two forward delays more), after which traffic reroutes the
  long way around the ring;
* **frames lost** — everything the dead segment swallowed meanwhile.

Each engine configuration (single engine, strict shards, relaxed shards)
replays the *same* fault timeline; the benchmark asserts the live counters
and the convergence report are identical across configurations before
reporting — the fault subsystem's engine-mode-invariance contract, enforced
at benchmark time exactly as the sharded-fabric sweeps do.

The committed ``BENCH_trace.json`` entry records the simulated convergence
figures plus each configuration's trace-records-per-CPU-second execution
rate; ``perf_gate.py`` tracks the ``failover/*`` records/s metrics against
their previous occurrences (the convergence times are *results*, pinned by
tests, not throughput — they are recorded but not gated).

Run directly::

    PYTHONPATH=src python benchmarks/bench_failover.py [--bridges N]
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import time
from pathlib import Path

from repro.measurement.convergence import ConvergenceProbe
from repro.measurement.ping import PingRunner
from repro.scenario import run_scenario

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_trace.json"

#: Engine configurations measured: (sync, shards).
CONFIGS = (("strict", 1), ("strict", 4), ("relaxed", 4))

#: Standard 802.1D timers — the paper's timescales.
TIMERS = {"hello_time": 2.0, "max_age": 20.0, "forward_delay": 15.0}

#: When the scripted link failure fires — 5 s after the tree is ready
#: (ready_time is 35 s with the standard timers), so the ping train records
#: a healthy pre-fault baseline before the outage.
FAIL_AT = 40.0

#: Ping cadence across the outage (one echo per quarter second).
PING_INTERVAL = 0.25


def config_key(sync: str, shards: int) -> str:
    return f"shards={shards}" if sync == "strict" else f"shards={shards}/{sync}"


#: Episode repetitions per configuration; the fastest CPU time is kept, the
#: same hygiene as ``bench_sharded_fabric.wire_blast`` — a single ~0.1 s
#: sample would hand the 20 % perf gate to scheduler noise.
PASSES = 3


def run_episode(bridges: int, shards: int, sync: str) -> dict:
    """One full failure episode on one engine configuration."""
    run = run_scenario(
        "ring/failover",
        params={"n_bridges": bridges, "fail_at": FAIL_AT, "recover_at": 0.0,
                **TIMERS},
        shards=shards,
        sync=sync if shards > 1 else None,
    )
    # Ride through warm-up, outage, detection (max_age) and both forward
    # delays, plus settle margin.
    horizon = FAIL_AT + TIMERS["max_age"] + 2 * TIMERS["forward_delay"] + 5.0
    count = int((horizon - run.ready_time) / PING_INTERVAL) - 4
    gc.collect()
    gc.disable()
    cpu_start = time.process_time()
    wall_start = time.perf_counter()
    run.warm_up()
    probe = ConvergenceProbe(run.sim, network=run.network, fault_time=FAIL_AT)
    probe.start()
    ping = PingRunner(
        run.sim, run.host("left"), run.host("right").ip,
        payload_size=64, count=count, interval=PING_INTERVAL, identifier=0xFA11,
    )
    ping.start(run.sim.now + 0.01)
    run.sim.run_until(horizon)
    cpu_elapsed = time.process_time() - cpu_start
    wall_elapsed = time.perf_counter() - wall_start
    gc.enable()
    report = probe.report()
    records = len(run.sim.trace)
    return {
        "shards": shards,
        "sync": sync if shards > 1 else "single",
        "records": records,
        "seconds_cpu": round(cpu_elapsed, 3),
        "seconds_wall": round(wall_elapsed, 3),
        "records_per_second": round(records / cpu_elapsed) if cpu_elapsed else 0,
        "events_dispatched": run.sim.events_dispatched,
        "convergence": report.summary(),
        "ping": {"sent": ping.result.sent, "received": ping.result.received},
        "counters": dict(run.sim.trace.counters.by_category_source),
    }


def best_episode(bridges: int, shards: int, sync: str) -> dict:
    """Run the episode ``PASSES`` times; keep the fastest CPU-time sample.

    Every pass must reproduce the same counters and convergence report —
    the episode is fully deterministic — so only the timing varies.
    """
    best = None
    for _ in range(PASSES):
        sample = run_episode(bridges, shards, sync)
        if best is None:
            best = sample
        else:
            assert sample["counters"] == best["counters"], "episode not deterministic"
            assert sample["convergence"] == best["convergence"]
            if sample["records_per_second"] > best["records_per_second"]:
                sample["counters"] = best["counters"]
                best = sample
    return best


def run_sweep(bridges: int) -> dict:
    results = {}
    baseline_counters = None
    baseline_convergence = None
    for sync, shards in CONFIGS:
        result = best_episode(bridges, shards, sync)
        counters = result.pop("counters")
        if baseline_counters is None:
            baseline_counters = counters
            baseline_convergence = result["convergence"]
        else:
            # Same timeline, same episode, every engine mode: the fault
            # subsystem's invariance contract, asserted before reporting.
            assert counters == baseline_counters, (
                f"{sync} shards={shards} diverged from the single engine"
            )
            assert result["convergence"] == baseline_convergence, (
                f"{sync} shards={shards} convergence report diverged"
            )
        key = config_key(sync, shards)
        results[key] = result
        conv = result["convergence"]
        print(
            f"{bridges}-bridge ring {key}: detection {conv['detection_s']:.1f}s, "
            f"reconvergence {conv['reconvergence_s']:.1f}s, "
            f"{conv['frames_lost']} frames lost; "
            f"{result['records']} records in {result['seconds_cpu']:.2f} cpu-s "
            f"= {result['records_per_second']:,} records/s"
        )
    return {
        "bridges": bridges,
        "fail_at": FAIL_AT,
        "timers": TIMERS,
        "detection_s": baseline_convergence["detection_s"],
        "reconvergence_s": baseline_convergence["reconvergence_s"],
        "frames_lost": baseline_convergence["frames_lost"],
        "configs": results,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bridges", type=int, default=8,
        help="ring size (bridges = LAN segments in the loop)",
    )
    parser.add_argument(
        "--no-append", action="store_true",
        help="print results without touching BENCH_trace.json",
    )
    args = parser.parse_args()
    if args.bridges < 3:
        parser.error("--bridges must be at least 3")

    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "failover": run_sweep(args.bridges),
    }
    if args.no_append:
        return
    history = []
    if RESULTS_PATH.exists():
        try:
            history = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            history = []
    history.append(entry)
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n")
    print(f"results appended to {RESULTS_PATH}")


if __name__ == "__main__":
    main()
