"""The scenario interchange format: lossless round trips, strict parsing.

The contract under test is the one the fuzzer leans on::

    spec == dict_to_spec(spec_to_dict(spec))
    spec == load_scenario(dump_scenario(spec)).spec

over the *entire* registry, plus bit-identical runs driven from
round-tripped specs, plus loud rejection of malformed documents (unknown
keys, missing keys, wrong shapes, wrong schema) — a typo'd topology file
must never silently compile a different network.
"""

import pytest

from repro.exceptions import ReproError
from repro.measurement.ping import PingRunner
from repro.scenario import (
    PartitionSpec,
    get_scenario,
    interchange,
    list_scenarios,
    run_scenario,
)
from repro.scenario.interchange import (
    SCHEMA,
    InterchangeError,
    dict_to_document,
    dict_to_partition,
    dict_to_spec,
    document_to_dict,
    dump_scenario,
    load_scenario,
    load_scenario_file,
    partition_to_dict,
    save_scenario,
    spec_to_dict,
)

ALL_SCENARIOS = sorted(entry.name for entry in list_scenarios())
FORMATS = ("json",) + (("yaml",) if interchange.yaml is not None else ())


class TestRoundTrip:
    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_dict_round_trip_is_lossless_over_the_registry(self, name):
        spec = get_scenario(name)
        assert dict_to_spec(spec_to_dict(spec)) == spec

    @pytest.mark.parametrize("fmt", FORMATS)
    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_text_round_trip_is_lossless_over_the_registry(self, name, fmt):
        spec = get_scenario(name)
        assert load_scenario(dump_scenario(spec, fmt=fmt), fmt=fmt).spec == spec

    def test_partition_round_trip_is_lossless(self):
        partition = PartitionSpec(
            shards=3,
            assignments={"lan1": 0, "host2": 2},
            sync="relaxed",
            workers=2,
            backend="process",
        )
        assert dict_to_partition(partition_to_dict(partition)) == partition

    @pytest.mark.parametrize("suffix", [".json"] + (
        [".yaml", ".yml"] if interchange.yaml is not None else []
    ))
    def test_file_round_trip_carries_partition_and_run(self, tmp_path, suffix):
        spec = get_scenario("ring/failover")
        partition = PartitionSpec(shards=2, sync="relaxed", workers=1)
        run = {"purpose": "regression", "case": 7}
        path = save_scenario(tmp_path / f"doc{suffix}", spec, partition=partition,
                             run=run)
        document = load_scenario_file(path)
        assert document.spec == spec
        assert document.partition == partition
        assert document.run == run

    def test_document_without_extras_loads_with_defaults(self):
        spec = get_scenario("pair/direct")
        document = dict_to_document({"schema": SCHEMA, "spec": spec_to_dict(spec)})
        assert document.spec == spec
        assert document.partition is None
        assert document.run == {}

    @pytest.mark.parametrize("name", ["pair/active-bridge", "ring/failover",
                                      "gen/mesh"])
    def test_round_tripped_spec_drives_a_bit_identical_run(self, name):
        spec = get_scenario(name)
        loaded = load_scenario(dump_scenario(spec, fmt="json"), fmt="json").spec
        assert _drive_trace(spec) == _drive_trace(loaded)


def _drive_trace(spec):
    run = run_scenario(spec)
    run.warm_up()
    hosts = run.hosts
    if len(hosts) >= 2:
        PingRunner(run.sim, hosts[0], hosts[-1].ip, payload_size=64, count=2,
                   interval=0.05).run(start_time=run.sim.now)
    horizon = max([spec.ready_time] + [fault.at for fault in spec.faults]) + 0.5
    if run.sim.now < horizon:
        run.sim.run_until(horizon)
    return list(run.sim.trace)


class TestStrictRejection:
    def _document(self, name="pair/direct"):
        return document_to_dict(get_scenario(name))

    def test_unknown_document_key_is_rejected(self):
        document = self._document()
        document["topologee"] = {}
        with pytest.raises(InterchangeError, match=r"document.*topologee"):
            dict_to_document(document)

    def test_unknown_spec_key_is_rejected(self):
        document = self._document()
        document["spec"]["colour"] = "blue"
        with pytest.raises(InterchangeError, match=r"spec.*colour"):
            dict_to_document(document)

    def test_unknown_nested_key_names_its_location(self):
        document = self._document()
        document["spec"]["segments"][0]["flux"] = 1
        with pytest.raises(InterchangeError, match=r"spec\.segments\[0\].*flux"):
            dict_to_document(document)

    def test_missing_required_key_is_rejected(self):
        document = self._document()
        del document["spec"]["segments"][0]["name"]
        with pytest.raises(InterchangeError, match=r"missing required.*name"):
            dict_to_document(document)

    def test_wrong_collection_shape_is_rejected(self):
        document = self._document()
        document["spec"]["hosts"] = "host1"
        with pytest.raises(InterchangeError, match=r"spec\.hosts.*expected a list"):
            dict_to_document(document)

    def test_wrong_schema_version_is_rejected(self):
        document = self._document()
        document["schema"] = "repro/scenario/v0"
        with pytest.raises(InterchangeError, match="unsupported schema"):
            dict_to_document(document)

    def test_semantically_broken_topology_still_fails_loudly(self):
        document = self._document()
        document["spec"]["hosts"][0]["segment"] = "no-such-lan"
        with pytest.raises(ReproError):
            dict_to_document(document)

    def test_invalid_json_text_is_rejected(self):
        with pytest.raises(InterchangeError, match="invalid JSON"):
            load_scenario("{not json", fmt="json")

    @pytest.mark.skipif(interchange.yaml is None, reason="PyYAML not installed")
    def test_invalid_yaml_text_is_rejected(self):
        with pytest.raises(InterchangeError, match="invalid YAML"):
            load_scenario("{ [unbalanced", fmt="yaml")

    def test_unknown_format_is_rejected(self):
        spec = get_scenario("pair/direct")
        with pytest.raises(InterchangeError, match="unknown interchange format"):
            dump_scenario(spec, fmt="toml")
        with pytest.raises(InterchangeError, match="unknown interchange format"):
            load_scenario("{}", fmt="toml")

    def test_unrecognized_file_extension_is_rejected(self, tmp_path):
        spec = get_scenario("pair/direct")
        with pytest.raises(InterchangeError, match="cannot infer"):
            save_scenario(tmp_path / "doc.txt", spec)
