"""Tests for switchlet packages, the loader, and the name-space security model."""

from __future__ import annotations

import pytest

from repro.core.environment import ENVIRONMENT_MODULE_NAMES
from repro.core.loader import SwitchletLoader
from repro.core.node import ActiveNode
from repro.core.switchlet import SwitchletPackage
from repro.exceptions import LoadError, SignatureMismatch
from repro.lan.segment import Segment
from repro.sim.engine import Simulator


def _node(sim):
    node = ActiveNode(sim, "node-under-test")
    node.add_interface("eth0", Segment(sim, "lan-a"))
    node.add_interface("eth1", Segment(sim, "lan-b"))
    return node


@pytest.fixture
def node(sim):
    return _node(sim)


# ---------------------------------------------------------------------------
# SwitchletPackage
# ---------------------------------------------------------------------------


class TestSwitchletPackage:
    def test_digest_computed_automatically(self):
        package = SwitchletPackage(name="p", source="x = 1")
        assert package.source_digest
        assert package.verify_source()

    def test_serialization_roundtrip(self):
        package = SwitchletPackage(
            name="p",
            source="Func.register('k', lambda: 1)",
            requires={"Func": "abc"},
            metadata={"description": "test"},
        )
        rebuilt = SwitchletPackage.from_bytes(package.to_bytes())
        assert rebuilt == package

    def test_build_records_environment_digests(self, node):
        package = SwitchletPackage.build(
            "p", "x = 1", node.environment.modules, required_modules=["Func", "Log"]
        )
        assert set(package.requires) == {"Func", "Log"}

    def test_build_with_unknown_requirement(self, node):
        with pytest.raises(LoadError):
            SwitchletPackage.build("p", "x = 1", node.environment.modules,
                                   required_modules=["NotAModule"])

    def test_from_bytes_rejects_garbage(self):
        with pytest.raises(LoadError):
            SwitchletPackage.from_bytes(b"not json at all \xff")
        with pytest.raises(LoadError):
            SwitchletPackage.from_bytes(b'{"format": "something-else"}')

    def test_name_required(self):
        with pytest.raises(LoadError):
            SwitchletPackage(name="", source="x = 1")

    def test_tampering_helper_keeps_old_digest(self):
        package = SwitchletPackage(name="p", source="x = 1")
        tampered = package.with_tampered_source("x = 2")
        assert not tampered.verify_source()

    def test_describe(self):
        package = SwitchletPackage(name="p", source="x = 1")
        assert "p" in package.describe()


# ---------------------------------------------------------------------------
# Loader basics
# ---------------------------------------------------------------------------


class TestLoader:
    def test_environment_has_the_eight_modules(self, node):
        assert set(node.environment.modules) == set(ENVIRONMENT_MODULE_NAMES)
        assert set(node.loader.available_units()) == set(ENVIRONMENT_MODULE_NAMES)

    def test_load_executes_top_level_registration(self, node):
        package = SwitchletPackage.build(
            "hello",
            "Func.register('greeting', lambda: 'hi from a switchlet')",
            node.environment.modules,
        )
        node.loader.load(package)
        assert node.func.call("greeting") == "hi from a switchlet"
        assert node.loader.is_loaded("hello")
        assert node.loader.loaded_names() == ["hello"]

    def test_load_bytes(self, node):
        package = SwitchletPackage.build(
            "from-bytes", "Func.register('k', 42)", node.environment.modules
        )
        node.loader.load_bytes(package.to_bytes())
        assert node.func.lookup("k") == 42

    def test_syntax_error_rejected(self, node):
        package = SwitchletPackage.build("bad", "def broken(:\n  pass", node.environment.modules)
        with pytest.raises(LoadError):
            node.loader.load(package)
        assert node.loader.loads_rejected == 1

    def test_runtime_error_in_top_level_rejected(self, node):
        package = SwitchletPackage.build(
            "boom", "raise ValueError('top level failure')", node.environment.modules
        )
        with pytest.raises(LoadError):
            node.loader.load(package)

    def test_counters(self, node):
        good = SwitchletPackage.build("ok", "x = 1", node.environment.modules)
        node.loader.load(good)
        assert node.loader.loads_attempted == 1
        assert node.loader.loads_succeeded == 1

    def test_load_traced(self, node):
        package = SwitchletPackage.build("traced", "x = 1", node.environment.modules)
        node.loader.load(package)
        assert node.sim.trace.count(category="switchlet.load", source="node-under-test") == 1


# ---------------------------------------------------------------------------
# Link-time checks (the Caml MD5 interface analogue)
# ---------------------------------------------------------------------------


class TestSignatureChecks:
    def test_tampered_source_rejected(self, node):
        package = SwitchletPackage.build("victim", "x = 1", node.environment.modules)
        tampered = package.with_tampered_source("Func.register('evil', lambda: 'pwned')")
        with pytest.raises(SignatureMismatch):
            node.loader.load(tampered)
        assert not node.func.registered("evil")

    def test_missing_required_module_rejected(self, node):
        package = SwitchletPackage(
            name="needs-missing",
            source="x = 1",
            requires={"SomethingElse": "0" * 32},
        )
        with pytest.raises(SignatureMismatch):
            node.loader.load(package)

    def test_wrong_interface_digest_rejected(self, node):
        # Built against an attacker's wider interface for Func.
        package = SwitchletPackage(
            name="wrong-interface",
            source="x = 1",
            requires={"Func": "0" * 32},
        )
        with pytest.raises(SignatureMismatch):
            node.loader.load(package)

    def test_package_built_on_one_node_loads_on_another(self, sim):
        node_a = _node(sim)
        node_b = ActiveNode(sim, "other-node")
        node_b.add_interface("eth0", Segment(sim, "lan-c"))
        package = SwitchletPackage.build(
            "portable", "Func.register('k', 1)", node_a.environment.modules
        )
        node_b.loader.load(package)
        assert node_b.func.lookup("k") == 1


# ---------------------------------------------------------------------------
# Name-space security: what loaded code cannot do
# ---------------------------------------------------------------------------


class TestSecurityModel:
    def _load(self, node, name, source):
        package = SwitchletPackage.build(name, source, node.environment.modules)
        return node.loader.load(package)

    def test_switchlet_cannot_open_files(self, node):
        source = (
            "try:\n"
            "    open('/etc/passwd')\n"
            "    Func.register('escaped', True)\n"
            "except NameError:\n"
            "    Func.register('blocked', True)\n"
        )
        self._load(node, "file-test", source)
        assert node.func.registered("blocked")
        assert not node.func.registered("escaped")

    def test_switchlet_cannot_import(self, node):
        source = (
            "try:\n"
            "    import os\n"
            "    Func.register('escaped', True)\n"
            "except ImportError:\n"
            "    Func.register('blocked', True)\n"
        )
        self._load(node, "import-test", source)
        assert node.func.registered("blocked")

    def test_switchlet_cannot_use_eval_or_exec(self, node):
        source = (
            "blocked = 0\n"
            "try:\n"
            "    eval('1+1')\n"
            "except NameError:\n"
            "    blocked += 1\n"
            "try:\n"
            "    exec('x = 1')\n"
            "except NameError:\n"
            "    blocked += 1\n"
            "Func.register('blocked_count', blocked)\n"
        )
        self._load(node, "eval-test", source)
        assert node.func.lookup("blocked_count") == 2

    def test_switchlet_cannot_reach_excluded_module_members(self, node):
        # Log exposes only log(); set_method/messages are loader-side.
        source = (
            "result = {}\n"
            "try:\n"
            "    Log.set_method('off')\n"
            "    result['reached'] = True\n"
            "except Exception as exc:\n"
            "    result['error'] = type(exc).__name__\n"
            "Func.register('thinning-result', result)\n"
        )
        self._load(node, "thinning-test", source)
        result = node.func.lookup("thinning-result")
        assert "reached" not in result
        assert result["error"] == "ThinningViolation"

    def test_switchlet_cannot_see_python_globals(self, node):
        source = (
            "names = []\n"
            "for name in ('globals', 'locals', 'vars', '__import__', 'compile', 'open'):\n"
            "    try:\n"
            "        eval  # placeholder; direct name check below\n"
            "    except NameError:\n"
            "        pass\n"
            "missing = 0\n"
            "try:\n"
            "    globals\n"
            "except NameError:\n"
            "    missing += 1\n"
            "try:\n"
            "    __import__\n"
            "except NameError:\n"
            "    missing += 1\n"
            "Func.register('missing-count', missing)\n"
        )
        self._load(node, "globals-test", source)
        assert node.func.lookup("missing-count") == 2

    def test_two_switchlets_share_only_registered_names(self, node):
        self._load(node, "first", "secret_value = 12345\nFunc.register('shared', 99)\n")
        source = (
            "result = {}\n"
            "try:\n"
            "    result['stolen'] = secret_value\n"
            "except NameError:\n"
            "    result['isolated'] = True\n"
            "result['shared'] = Func.lookup('shared')\n"
            "Func.register('second-result', result)\n"
        )
        self._load(node, "second", source)
        result = node.func.lookup("second-result")
        assert result.get("isolated") is True
        assert result["shared"] == 99
        assert "stolen" not in result

    def test_switchlet_cannot_mutate_environment_modules(self, node):
        source = (
            "result = {}\n"
            "try:\n"
            "    Func.register = None\n"
            "    result['mutated'] = True\n"
            "except Exception as exc:\n"
            "    result['error'] = type(exc).__name__\n"
            "Func.register('mutation-result', result)\n"
        )
        self._load(node, "mutate-test", source)
        result = node.func.lookup("mutation-result")
        assert "mutated" not in result
        assert result["error"] == "ThinningViolation"
