"""Automatic protocol transition with validation and fallback (Section 5.4).

Three active bridges in a chain run the DEC-style spanning tree (the "old"
protocol) with the IEEE 802.1D switchlet loaded but idle and the control
switchlet armed.  Injecting a single 802.1D BPDU makes the whole network
transition on its own; the control switchlets validate the new spanning tree
against the state captured from the old protocol.  A second run ships a
deliberately faulty 802.1D implementation and shows the automatic fallback.

Run with:  python examples/protocol_transition.py
"""

from __future__ import annotations

from repro.ethernet.ethertype import EtherType
from repro.ethernet.frame import EthernetFrame
from repro.ethernet.mac import ALL_BRIDGES_MULTICAST, MacAddress
from repro.lan.nic import NetworkInterface
from repro.measurement.setups import build_ring
from repro.switchlets.bpdu import ConfigBpdu

ADMIN_MAC = MacAddress.from_string("02:aa:aa:aa:aa:01")


def trigger_frame() -> EthernetFrame:
    """An (inferior) 802.1D BPDU: enough to start the transition everywhere."""
    bpdu = ConfigBpdu(0xFFFF, ADMIN_MAC.octets, 0, 0xFFFF, ADMIN_MAC.octets, 1)
    return EthernetFrame(
        destination=ALL_BRIDGES_MULTICAST,
        source=ADMIN_MAC,
        ethertype=int(EtherType.STP_8021D),
        payload=bpdu.encode(),
    )


def run_transition(buggy: bool) -> None:
    title = "faulty new protocol (fallback expected)" if buggy else "correct new protocol"
    print(f"\n=== Transition run: {title} ===")
    ring = build_ring(n_bridges=3, seed=5, buggy_new_protocol=buggy)
    sim = ring.network.sim
    injector = NetworkInterface(sim, "admin", ADMIN_MAC)
    injector.attach(ring.left_segment)

    sim.run_until(40.0)  # let the DEC protocol converge and start forwarding
    print("old (DEC) spanning tree after convergence:")
    for bridge in ring.bridges:
        snapshot = bridge.func.lookup("stp.dec").snapshot()
        print(f"  {bridge.name}: root={snapshot['root_mac']} roles={snapshot['port_roles']}")

    print("injecting one 802.1D BPDU on the first segment...")
    sim.schedule(0.1, lambda: injector.send(trigger_frame()))
    sim.run_until(sim.now + 150.0)

    for bridge in ring.bridges:
        control = bridge.func.lookup("switchlet.control")
        print(f"\n  {bridge.name}: control state = {control.state}, "
              f"validation = {control.validation_result}")
        start = control.transition_log[0]["time"]
        for entry in control.transition_log:
            print(f"    t={entry['time'] - start:7.2f}s  {entry['action']:<22} "
                  f"DEC={entry['dec']:<10} IEEE={entry['ieee']:<20} {entry['control']}")


def main() -> None:
    run_transition(buggy=False)
    run_transition(buggy=True)


if __name__ == "__main__":
    main()
