"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.node import ActiveNode
from repro.lan.topology import NetworkBuilder
from repro.sim.engine import Simulator
from repro.switchlets.packaging import (
    dumb_bridge_package,
    learning_bridge_package,
    spanning_tree_package,
)


@pytest.fixture
def sim():
    """A fresh simulator."""
    return Simulator(seed=42)


@pytest.fixture
def two_lan_bridge():
    """A two-LAN topology with an unprogrammed active bridge and two hosts.

    Returns a dict with the network, the bridge node, and both hosts.
    """
    builder = NetworkBuilder(seed=7)
    builder.add_segment("lan1")
    builder.add_segment("lan2")
    host1 = builder.add_host("host1", "lan1")
    host2 = builder.add_host("host2", "lan2")
    builder.populate_static_arp()
    network = builder.build()
    bridge = ActiveNode(network.sim, "bridge")
    bridge.add_interface("eth0", network.segment("lan1"))
    bridge.add_interface("eth1", network.segment("lan2"))
    builder.register_station("bridge", bridge)
    return {
        "network": network,
        "sim": network.sim,
        "bridge": bridge,
        "host1": host1,
        "host2": host2,
    }


def load_standard_bridge(bridge, include_spanning_tree=False):
    """Load the dumb + learning (+ optionally spanning tree) switchlets."""
    environment = bridge.environment.modules
    bridge.load_switchlet(dumb_bridge_package(environment))
    bridge.load_switchlet(learning_bridge_package(environment))
    if include_spanning_tree:
        bridge.load_switchlet(spanning_tree_package(environment, autostart=True))
    return bridge


@pytest.fixture
def programmed_bridge(two_lan_bridge):
    """The two-LAN topology with the dumb + learning switchlets loaded."""
    load_standard_bridge(two_lan_bridge["bridge"], include_spanning_tree=False)
    return two_lan_bridge
