"""Sharded-fabric benchmark: wire-speed multi-LAN ring sweeps, strict vs relaxed.

Measures the :class:`~repro.sim.fabric.ShardedSimulator` against the
single-engine path on the catalog ``ring`` scenario populated with end hosts,
at two sizes: the classic 64-LAN ring and the 256-LAN ring (two hosts per
segment, N-1 active bridges running the DEC spanning tree).  Two phases per
engine configuration:

* **warm-up** — compile plus spanning-tree convergence to the scenario's
  ready time: the control plane crosses shard boundaries, exercising the
  inter-shard channel and the conservative synchronizer;
* **wire blast** — every segment's host pair exchanges raw frames
  back-to-back, all LANs concurrently.  Bridge ports are administratively
  down for this phase so the sweep measures the event fabric at wire speed
  rather than the bridge CPU model (the paper's bridge tops out near 2100
  frames/second — three orders of magnitude below the wire).

Each size sweeps engine configurations across both synchronization modes:

* ``shards=1`` — the single engine baseline;
* ``shards=N`` — the strict fabric (exact global event order, bit-identical);
* ``shards=N/relaxed`` — relaxed sync (:mod:`repro.sim.relaxed`): concurrent
  lookahead windows plus segment express lanes, equivalent to strict under
  the canonical merge.  The blast handlers are declared ``inline_safe`` so
  eligible segments take the express lane — that is the production pattern
  the relaxed mode exists for.  ``relaxed_speedup`` (relaxed over strict
  records/sec at the same shard count) is the headline metric; the 256-LAN
  ring at shards=4 is the perf-gated configuration.

A relaxed configuration run on worker threads is also recorded (under
``threaded``, informational, not perf-gated): on GIL builds the threads only
add synchronization overhead — the benchmarked pick is the sequential window
executor — while on free-threaded builds the same numbers show the wall-clock
win.  Every sharded run, strict or relaxed, must reproduce the single-engine
counters exactly — the benchmark asserts this before reporting.

Measurement hygiene: every engine configuration is measured in its own fresh
interpreter (a subprocess), so one configuration's allocator/heap state never
contaminates another's numbers; rates are computed from process CPU time
(``time.process_time``) so noisy-neighbor stalls in CI containers do not
masquerade as regressions (wall seconds are recorded alongside); the blast
runs three passes per configuration and the fastest is reported; garbage
collection is disabled inside the measured windows (and re-enabled after) so
the comparison measures engine mechanics, not collector cadence against
retained-record volume.

Besides the CPU-time sweep, each size carries a **wall-clock sweep** (the
``wall`` block): the single engine versus relaxed worker threads versus the
relaxed **process backend** (:mod:`repro.sim.procpool`, one worker process
per shard) at shards 2 and 4, each configuration measured as one blast pass
per fresh interpreter with the fastest of the invocations kept.  Wall-clock
and CPU-time numbers are distinct metric families — the wall sweep reports
``seconds_wall`` and the ``fabric/wall-speedup`` ratios only, never mixed
with the CPU-time rates above.  On runners with fewer than four CPU cores
the speedup measurements are skipped with an explicit log line (parallel
wall-clock gains cannot be measured honestly there) and the skip is recorded
in the entry; the **canonical-merge identity** check — the relaxed-process
run at shards=4 must produce records bit-identical to a fresh strict fabric
replaying the same workload — runs regardless of core count.

Results are appended to ``BENCH_trace.json`` as one entry holding both size
sweeps (``sharded_fabric`` = 64 LANs, ``sharded_fabric_256`` = 256 LANs);
``perf_gate.py`` tracks the throughput and speedup metrics against the
committed baseline.  Run directly::

    PYTHONPATH=src python benchmarks/bench_sharded_fabric.py [--frames N]

CI additionally runs ``--wall-only --segments 64`` to publish the
multiprocess wall sweep as its own artifact (``--wall-report``).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

from repro.ethernet.frame import EthernetFrame
from repro.scenario import run_scenario

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_trace.json"

#: Experimental ethertype used by the blast frames (never parsed by a stack).
BLAST_ETHERTYPE = 0x88B5

#: Payload bytes per blast frame.
BLAST_PAYLOAD = 256

#: Upper bound on simulated seconds per exchanged frame (sizing the window).
BLAST_FRAME_BUDGET = 40e-6

#: The two ring sizes swept, and the BENCH entry key each one records under.
SWEEPS = ((64, "sharded_fabric"), (256, "sharded_fabric_256"))

#: Engine configurations per sweep: (sync, shards).  ``shards=1`` is always
#: the single-engine baseline; the relaxed configurations carry their own
#: config-key suffix.
CONFIGS = (("strict", 1), ("strict", 2), ("strict", 4), ("relaxed", 4))

#: The relaxed configuration re-run on worker threads (informational).
THREADED_SHARDS = 4

#: Wall-clock sweep configurations: (config key, backend, shards).
WALL_CONFIGS = (
    ("single", "single", 1),
    ("shards=2/threads", "threads", 2),
    ("shards=4/threads", "threads", 4),
    ("shards=2/process", "process", 2),
    ("shards=4/process", "process", 4),
)

#: Minimum CPU cores for the wall-clock speedup measurements to be honest.
WALL_MIN_CORES = 4


def cpu_cores() -> int:
    """CPU cores actually available to this process."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def config_key(sync: str, shards: int) -> str:
    return f"shards={shards}" if sync == "strict" else f"shards={shards}/{sync}"


def build(segments: int, shards: int, sync: str, workers: int = 0, backend=None):
    """Compile and warm up the host-populated ring on ``shards`` engines."""
    compile_start = time.perf_counter()
    run = run_scenario(
        "ring",
        params={"n_bridges": segments - 1, "hosts_per_segment": 2},
        shards=shards,
        sync=sync if shards > 1 else None,
        workers=workers,
        backend=backend if shards > 1 else None,
    )
    compiled = time.perf_counter()
    run.warm_up()
    warmed = time.perf_counter()
    return run, compiled - compile_start, warmed - compiled


def _arm_blast(run, frames_per_pair: int, inline_safe: bool):
    """Install blast handlers on every host pair; return (pairs, states)."""
    pairs = []
    states = []
    for segment_spec in run.spec.segments:
        left = run.host(f"{segment_spec.name}h1")
        right = run.host(f"{segment_spec.name}h2")
        forward = EthernetFrame(
            destination=right.mac,
            source=left.mac,
            ethertype=BLAST_ETHERTYPE,
            payload=b"\x00" * BLAST_PAYLOAD,
        )
        backward = EthernetFrame(
            destination=left.mac,
            source=right.mac,
            ethertype=BLAST_ETHERTYPE,
            payload=b"\x00" * BLAST_PAYLOAD,
        )
        state = [frames_per_pair]
        states.append(state)

        def bounce(nic, reply, state=state):
            def handler(_nic, _frame) -> None:
                state[0] -= 1
                if state[0] > 0:
                    nic.send(reply)

            return handler

        # inline_safe declares the handlers reactive-only, which is what
        # makes relaxed segments express-eligible; the strict engine and the
        # single engine ignore the flag entirely.
        left.nic.set_handler(bounce(left.nic, forward), inline_safe=inline_safe)
        right.nic.set_handler(bounce(right.nic, backward), inline_safe=inline_safe)
        pairs.append((left, forward))
    return pairs, states


def _blast_pass(run, frames_per_pair: int, inline_safe: bool = False) -> dict:
    """One concurrent ping-pong exchange on every segment; return one sample."""
    sim = run.sim
    pairs, states = _arm_blast(run, frames_per_pair, inline_safe)
    frames_before = sum(s.frames_carried for s in run.network.segments.values())
    records_before = len(sim.trace)
    horizon = sim.now + frames_per_pair * BLAST_FRAME_BUDGET
    gc.collect()
    gc.disable()
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    for left, forward in pairs:
        left.nic.send(forward)
    sim.run_until(horizon)
    cpu_elapsed = time.process_time() - cpu_start
    wall_elapsed = time.perf_counter() - wall_start
    gc.enable()
    if not all(state[0] <= 0 for state in states):
        raise RuntimeError("wire blast did not complete inside its window")
    frames = (
        sum(s.frames_carried for s in run.network.segments.values()) - frames_before
    )
    records = len(sim.trace) - records_before
    return {
        "frames": frames,
        "records": records,
        "seconds_cpu": round(cpu_elapsed, 3),
        "seconds_wall": round(wall_elapsed, 3),
        "frames_per_second": round(frames / cpu_elapsed),
        "records_per_second": round(records / cpu_elapsed),
    }


def wire_blast(run, frames_per_pair: int, inline_safe: bool, passes: int = 3) -> dict:
    """Run ``passes`` blast exchanges and keep the fastest sample.

    The retained trace is cleared between passes: a steadily growing
    record store slows *any* engine's allocation path over time, and the
    benchmark measures the engines, not the store's growth curve.
    """
    best = None
    for _ in range(passes):
        run.sim.trace.clear()
        sample = _blast_pass(run, frames_per_pair, inline_safe)
        if best is None or sample["records_per_second"] > best["records_per_second"]:
            best = sample
    return best


#: Frames per pair for the determinism-verification exchange.
VERIFY_FRAMES = 50


def _down_bridge_ports(run) -> None:
    """Administratively down every bridge port so the blast sees pure wire."""
    for device in run.devices:
        for nic in device.interfaces.values():
            nic.set_up(False)


def bench_configuration(
    segments: int, shards: int, frames_per_pair: int, sync: str, workers: int = 0
) -> dict:
    run, compile_seconds, warm_seconds = build(segments, shards, sync, workers)
    _down_bridge_ports(run)
    inline_safe = sync == "relaxed"
    # Verification exchange: runs before any trace clearing so the counters
    # snapshot covers compile, warm-up and a full blast round-trip.
    _blast_pass(run, VERIFY_FRAMES, inline_safe)
    counters = dict(run.sim.trace.counters.by_category_source)
    blast = wire_blast(run, frames_per_pair, inline_safe)
    result = {
        "shards": shards,
        "sync": sync if shards > 1 else "single",
        "compile_seconds": round(compile_seconds, 3),
        "warmup_seconds": round(warm_seconds, 3),
        "blast": blast,
        "counters": counters,
        "events_dispatched": run.sim.events_dispatched,
    }
    if shards > 1:
        result["cut_segments"] = len(run.partition.cut_segments)
        result["lookahead_ns"] = run.partition.lookahead_ns
        result["shard_stats"] = [
            {k: v for k, v in stats.items() if k != "records"}
            for stats in run.network.sim.shard_stats()
        ]
        if sync == "relaxed":
            result["workers"] = workers
            result["relaxed_stats"] = run.network.sim.relaxed_stats
    return result


def measure_in_subprocess(
    segments: int, shards: int, frames: int, sync: str, workers: int = 0
) -> dict:
    """Run one configuration in a fresh interpreter and return its JSON."""
    process = subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            "--measure-one",
            f"--segments={segments}",
            f"--frames={frames}",
            f"--sync={sync}",
            f"--workers={workers}",
            "--shards",
            str(shards),
        ],
        capture_output=True,
        text=True,
        check=False,
    )
    if process.returncode != 0:
        raise RuntimeError(
            f"measurement subprocess (segments={segments}, shards={shards}, "
            f"sync={sync}) failed:\n{process.stderr}"
        )
    return json.loads(process.stdout)


def _record_count(sim) -> int:
    """Retained record count, fetching pending process-backend traces first."""
    fetch = getattr(sim, "_proc_fetch", None)
    if fetch is not None:
        fetch()
    return len(sim.trace)


def _wall_blast(run, frames_per_pair: int, inline_safe: bool, check_states: bool) -> dict:
    """One wall-clock-timed blast pass (single dispatch, trace fetch outside).

    The process backend allows exactly one measured dispatch per run, and its
    handler closures fire in the worker processes — the parent's ``state``
    cells never move — so completion is checked through the shipped record
    stream instead (``check_states=False``); cross-configuration counter
    identity and the strict-replay identity check carry the real proof.
    Trace materialization is excluded from the timed window for every
    backend so the comparison stays like-for-like.
    """
    sim = run.sim
    pairs, states = _arm_blast(run, frames_per_pair, inline_safe)
    records_before = _record_count(sim)
    horizon = sim.now + frames_per_pair * BLAST_FRAME_BUDGET
    gc.collect()
    gc.disable()
    wall_start = time.perf_counter()
    for left, forward in pairs:
        left.nic.send(forward)
    sim.run_until(horizon)
    wall_elapsed = time.perf_counter() - wall_start
    gc.enable()
    records = _record_count(sim) - records_before
    if check_states:
        if not all(state[0] <= 0 for state in states):
            raise RuntimeError("wall blast did not complete inside its window")
    elif records <= 0:
        raise RuntimeError("process-backend wall blast shipped no records")
    return {
        "frames_per_pair": frames_per_pair,
        "records": records,
        "seconds_wall": round(wall_elapsed, 3),
        "records_per_second_wall": round(records / wall_elapsed) if wall_elapsed else 0,
    }


def _verify_process_identity(process_run, segments: int, shards: int, frames: int) -> dict:
    """Assert the process run's canonical merge is bit-identical to strict.

    Builds a fresh strict fabric at the same shard count in this interpreter,
    replays the same warm-up + blast workload, and compares the two canonical
    record streams element by element.
    """
    process_records = process_run.sim.trace.canonical_records()
    strict_run, _, _ = build(segments, shards, "strict")
    _down_bridge_ports(strict_run)
    _wall_blast(strict_run, frames, inline_safe=True, check_states=True)
    strict_records = strict_run.sim.trace.canonical_records()
    if process_records != strict_records:
        raise RuntimeError(
            f"relaxed-process canonical merge diverged from strict at "
            f"shards={shards}: {len(process_records)} vs "
            f"{len(strict_records)} records"
        )
    return {
        "verified": True,
        "records": len(process_records),
        "against": f"strict shards={shards}",
    }


def bench_wall_configuration(
    segments: int,
    shards: int,
    frames_per_pair: int,
    backend: str,
    verify_identity: bool = False,
    breakdown: bool = False,
) -> dict:
    """Measure one wall-sweep configuration (one pass; fresh interpreter).

    With ``breakdown=True`` the run enables telemetry after warm-up, so the
    blast dispatch carries the per-window compute/barrier/pipe/plan phase
    attribution.  Breakdown passes are kept out of the timed speedup
    samples — telemetry costs a little, and the sweep's ``seconds_wall``
    numbers must stay like-for-like with the default-off runs.
    """
    run, _, _ = build(
        segments,
        shards,
        "relaxed",
        workers=shards if backend == "threads" else 0,
        backend="process" if backend == "process" else None,
    )
    _down_bridge_ports(run)
    if breakdown:
        run.sim.enable_telemetry()
    blast = _wall_blast(
        run, frames_per_pair, inline_safe=shards > 1,
        check_states=backend != "process",
    )
    result = {
        "backend": backend,
        "shards": shards,
        **blast,
        "counters": dict(run.sim.trace.counters.by_category_source),
    }
    if breakdown:
        phases = run.sim._telemetry.profiler.breakdown()
        gap = abs(phases["attributed_s"] - phases["total_s"])
        if phases["total_s"] > 0 and gap > 0.05 * phases["total_s"]:
            raise RuntimeError(
                f"phase attribution gap {gap:.6f}s exceeds 5% of the "
                f"{phases['total_s']:.6f}s dispatch wall total"
            )
        result["breakdown"] = phases
    if verify_identity:
        result["identity"] = _verify_process_identity(
            run, segments, shards, frames_per_pair
        )
    return result


def measure_wall_in_subprocess(
    segments: int, shards: int, frames: int, backend: str,
    verify_identity: bool = False, breakdown: bool = False,
) -> dict:
    """Run one wall configuration in a fresh interpreter and return its JSON."""
    command = [
        sys.executable,
        str(Path(__file__).resolve()),
        "--measure-wall",
        f"--segments={segments}",
        f"--frames={frames}",
        f"--backend={backend}",
        "--shards",
        str(shards),
    ]
    if verify_identity:
        command.append("--verify-identity")
    if breakdown:
        command.append("--breakdown")
    process = subprocess.run(command, capture_output=True, text=True, check=False)
    if process.returncode != 0:
        raise RuntimeError(
            f"wall measurement subprocess (segments={segments}, shards={shards}, "
            f"backend={backend}) failed:\n{process.stderr}"
        )
    return json.loads(process.stdout)


def run_wall_sweep(
    segments: int, frames: int, identity_frames: int, passes: int = 2
) -> dict:
    """Wall-clock sweep at one ring size; identity check runs regardless.

    On runners with fewer than :data:`WALL_MIN_CORES` CPU cores the speedup
    measurements are skipped (recorded in the block, with an explicit log
    line) — a single core serializes the worker processes, so any "speedup"
    measured there would be noise, not signal.
    """
    cores = cpu_cores()
    wall = {"segments": segments, "frames_per_pair": frames, "cpu_cores": cores}
    if cores < WALL_MIN_CORES:
        print(
            f"wall sweep ({segments} LANs): SKIPPED wall-speedup measurements — "
            f"only {cores} CPU core(s) available (< {WALL_MIN_CORES}); "
            "parallel wall-clock speedup cannot be measured honestly on this "
            "runner (canonical-merge identity is still verified below)"
        )
        wall["skipped"] = True
        wall["reason"] = f"{cores} CPU core(s) < {WALL_MIN_CORES}"
    else:
        wall["skipped"] = False
        configs = {}
        baseline_counters = None
        for key, backend, shards in WALL_CONFIGS:
            best = None
            for _ in range(passes):
                sample = measure_wall_in_subprocess(segments, shards, frames, backend)
                if best is None or sample["seconds_wall"] < best["seconds_wall"]:
                    best = sample
            counters = best.pop("counters")
            if backend == "single":
                baseline_counters = counters
            else:
                assert counters == baseline_counters, (
                    f"wall run {key} diverged from the single engine"
                )
            configs[key] = best
            print(
                f"{segments} LANs wall {key}: {best['seconds_wall']:.3f}s wall, "
                f"{best['records_per_second_wall']:,} records/s"
            )
        single_wall = configs["single"]["seconds_wall"]
        speedups = {
            key: round(single_wall / configs[key]["seconds_wall"], 2)
            for key, backend, _ in WALL_CONFIGS
            if backend != "single" and configs[key]["seconds_wall"] > 0
        }
        wall["configs"] = configs
        wall["speedups"] = speedups
        print(
            f"{segments} LANs wall speedups vs single engine: "
            + ", ".join(f"{key}={value:.2f}x" for key, value in speedups.items())
        )
    # Telemetry phase breakdown: where the relaxed fabric's dispatch wall
    # actually goes (per-window compute vs barrier wait vs pipe round-trips).
    # Runs regardless of core count — attribution shares are meaningful even
    # where parallel speedups are not — and outside the timed samples above.
    # The barrier+pipe share measured here is the baseline the shared-memory
    # mailbox ROADMAP item has to beat.
    breakdown_configs = [("shards=4/threads", "threads", 4)]
    if hasattr(os, "fork"):
        breakdown_configs.append(("shards=4/process", "process", 4))
    breakdown = {}
    for key, backend, shards in breakdown_configs:
        sample = measure_wall_in_subprocess(
            segments, shards, frames, backend, breakdown=True
        )
        phases = sample["breakdown"]
        breakdown[key] = phases
        total = phases["total_s"] or 1.0
        print(
            f"{segments} LANs wall {key} breakdown: "
            f"compute {phases['compute_s'] * 1e3:.1f}ms "
            f"({phases['compute_s'] / total:.0%}), "
            f"barrier {phases['barrier_s'] * 1e3:.1f}ms "
            f"({phases['barrier_s'] / total:.0%}), "
            f"pipe {phases['pipe_s'] * 1e3:.1f}ms "
            f"({phases['pipe_s'] / total:.0%}), "
            f"plan {phases['plan_s'] * 1e3:.1f}ms over "
            f"{phases['windows']} windows "
            f"(attributed {phases['attributed_s'] / total:.1%} of "
            f"{total:.3f}s total)"
        )
    wall["breakdown"] = breakdown
    identity = measure_wall_in_subprocess(
        segments, 4, identity_frames, "process", verify_identity=True
    )
    wall["identity"] = dict(
        identity["identity"], frames_per_pair=identity_frames
    )
    print(
        f"{segments} LANs: relaxed-process canonical merge verified "
        f"bit-identical to strict at shards=4 "
        f"({wall['identity']['records']} records)\n"
    )
    return wall


def run_sweep(segments: int, frames: int) -> dict:
    """Measure every configuration at one ring size; verify and summarize."""
    configs = {}
    baseline_counters = None
    for sync, shards in CONFIGS:
        result = measure_in_subprocess(segments, shards, frames, sync)
        counters = result.pop("counters")
        if shards == 1:
            baseline_counters = counters
        else:
            # The fabric's contract — strict runs are bit-identical, relaxed
            # runs canonical-merge-equivalent — means the live counters over
            # compile, warm-up and a blast round-trip must match the single
            # engine exactly in every mode.
            assert counters == baseline_counters, (
                f"{sync} run (shards={shards}) diverged from the single engine"
            )
        key = config_key(sync, shards)
        configs[key] = result
        blast = result["blast"]
        print(
            f"{segments} LANs {key}: warm {result['warmup_seconds']:.2f}s, blast "
            f"{blast['frames']} frames in {blast['seconds_cpu']:.3f} cpu-s = "
            f"{blast['frames_per_second']:,} frames/s, "
            f"{blast['records_per_second']:,} records/s"
        )

    threaded = measure_in_subprocess(
        segments, THREADED_SHARDS, frames, "relaxed", workers=THREADED_SHARDS
    )
    threaded_counters = threaded.pop("counters")
    assert threaded_counters == baseline_counters, (
        "threaded relaxed run diverged from the single engine"
    )
    print(
        f"{segments} LANs shards={THREADED_SHARDS}/relaxed+threads: "
        f"{threaded['blast']['records_per_second']:,} records/s cpu-based "
        f"({threaded['blast']['seconds_wall']:.3f}s wall)"
    )

    base_rate = configs["shards=1"]["blast"]["records_per_second"]
    best_shards, best_speedup = 1, 1.0
    for result in configs.values():
        speedup = result["blast"]["records_per_second"] / base_rate
        if speedup > best_speedup:
            best_shards = result["shards"]
            best_speedup = speedup

    strict_key = config_key("strict", THREADED_SHARDS)
    relaxed_key = config_key("relaxed", THREADED_SHARDS)
    relaxed_speedup = (
        configs[relaxed_key]["blast"]["records_per_second"]
        / configs[strict_key]["blast"]["records_per_second"]
    )
    print(
        f"{segments} LANs: relaxed is {relaxed_speedup:.2f}x strict records/s "
        f"at shards={THREADED_SHARDS}; best vs single engine: "
        f"shards={best_shards} at {best_speedup:.2f}x "
        "(all engine modes verified counter-identical)\n"
    )
    return {
        "segments": segments,
        "frames_per_pair": frames,
        "configs": configs,
        "threaded": threaded,
        "best_shards": best_shards,
        "best_speedup": round(best_speedup, 2),
        "relaxed_speedup": round(relaxed_speedup, 2),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--segments", type=int, default=None,
        help="ring LAN count (default: run the standard 64- and 256-LAN sweeps)",
    )
    parser.add_argument(
        "--frames", type=int, default=600, help="blast frames per host pair"
    )
    parser.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=None,
        help="shard count for --measure-one (sweep configurations are fixed)",
    )
    parser.add_argument(
        "--sync", choices=("strict", "relaxed"), default="strict",
        help="fabric synchronization mode for --measure-one",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="relaxed worker threads for --measure-one (0 = sequential)",
    )
    parser.add_argument(
        "--measure-one",
        action="store_true",
        help="internal: measure the single given configuration and print JSON",
    )
    parser.add_argument(
        "--measure-wall",
        action="store_true",
        help="internal: wall-time one configuration (one pass) and print JSON",
    )
    parser.add_argument(
        "--backend", choices=("single", "threads", "process"), default=None,
        help="engine backend for --measure-wall",
    )
    parser.add_argument(
        "--verify-identity",
        action="store_true",
        help="with --measure-wall: assert canonical-merge identity vs strict",
    )
    parser.add_argument(
        "--breakdown",
        action="store_true",
        help="with --measure-wall: enable telemetry and report the "
        "compute/barrier/pipe/plan phase breakdown",
    )
    parser.add_argument(
        "--wall-frames", type=int, default=400,
        help="blast frames per host pair for the wall-clock sweep",
    )
    parser.add_argument(
        "--identity-frames", type=int, default=50,
        help="blast frames per pair for the process-vs-strict identity check",
    )
    parser.add_argument(
        "--wall-only",
        action="store_true",
        help="run only the wall-clock sweep (one ring size) and append it",
    )
    parser.add_argument(
        "--wall-report", type=Path, default=None,
        help="with --wall-only: also write the wall block to this JSON file",
    )
    args = parser.parse_args()
    if args.frames <= 0:
        parser.error("--frames must be positive")
    if args.segments is not None and args.segments < 2:
        parser.error("--segments must be >= 2")
    if args.shards is not None and not (args.measure_one or args.measure_wall):
        parser.error(
            "--shards only applies with --measure-one/--measure-wall; the "
            "sweep configurations are fixed (see CONFIGS)"
        )

    if args.measure_wall:
        if args.segments is None or args.backend is None:
            parser.error("--measure-wall needs --segments and --backend")
        result = bench_wall_configuration(
            args.segments,
            args.shards[0] if args.shards else 4,
            args.frames,
            args.backend,
            verify_identity=args.verify_identity,
            breakdown=args.breakdown,
        )
        result["counters"] = {
            f"{category}|{source}": count
            for (category, source), count in result["counters"].items()
        }
        json.dump(result, sys.stdout)
        return

    if args.wall_only:
        segments = args.segments or 64
        wall = run_wall_sweep(segments, args.wall_frames, args.identity_frames)
        key = dict((size, name) for size, name in SWEEPS).get(
            segments, "sharded_fabric"
        )
        entry = {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "python": platform.python_version(),
            key: {"segments": segments, "wall": wall},
        }
        history = []
        if RESULTS_PATH.exists():
            try:
                history = json.loads(RESULTS_PATH.read_text())
            except ValueError:
                history = []
        history.append(entry)
        RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n")
        print(f"wall sweep appended to {RESULTS_PATH}")
        if args.wall_report is not None:
            args.wall_report.write_text(json.dumps(wall, indent=2) + "\n")
            print(f"wall sweep report written to {args.wall_report}")
        return

    if args.measure_one:
        if args.segments is None:
            parser.error("--measure-one needs --segments")
        result = bench_configuration(
            args.segments,
            args.shards[0] if args.shards else 4,
            args.frames,
            args.sync,
            args.workers,
        )
        # Counter keys are (category, source) tuples; make them JSON-safe.
        result["counters"] = {
            f"{category}|{source}": count
            for (category, source), count in result["counters"].items()
        }
        json.dump(result, sys.stdout)
        return

    sweeps = SWEEPS if args.segments is None else ((args.segments, "sharded_fabric"),)
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
    }
    for segments, key in sweeps:
        entry[key] = run_sweep(segments, args.frames)
        entry[key]["wall"] = run_wall_sweep(
            segments, args.wall_frames, args.identity_frames
        )

    history = []
    if RESULTS_PATH.exists():
        try:
            history = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            history = []
    history.append(entry)
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n")
    print(f"results appended to {RESULTS_PATH}")


if __name__ == "__main__":
    main()
