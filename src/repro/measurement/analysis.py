"""Latency analysis helpers: percentile summaries and fixed histograms.

The single home for the p50/p95/p99 math that the population benchmark,
the telemetry :class:`~repro.telemetry.report.RunReport`, and any future
latency consumer share — so "p99" always means the same linear-interpolated
estimator (:func:`repro.measurement.stats.percentile`) everywhere.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from .stats import mean, percentile

#: The percentiles a latency summary reports, as (key, fraction) pairs.
LATENCY_PERCENTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def latency_summary(samples: Iterable[float]) -> Dict[str, float]:
    """Count/min/max/mean plus p50/p95/p99 for a latency sample.

    Returns all-zero fields for an empty sample rather than raising, so
    callers can attach the summary unconditionally.  Units are whatever the
    samples are in (the benchmarks pass nanoseconds).
    """
    data: List[float] = sorted(samples)
    out: Dict[str, float] = {
        "count": len(data),
        "min": data[0] if data else 0.0,
        "max": data[-1] if data else 0.0,
        "mean": mean(data),
    }
    for key, fraction in LATENCY_PERCENTILES:
        out[key] = percentile(data, fraction)
    return out


def fixed_histogram(
    samples: Iterable[float], bounds: Sequence[float]
) -> Dict[str, object]:
    """Bucket a sample into fixed bounds (inclusive upper edges + overflow).

    The bucket layout matches :class:`repro.telemetry.metrics.Histogram`
    (``len(bounds) + 1`` counts, the last one catching overflow), so a
    summary built here merges cleanly with registry histograms.
    """
    edges = list(bounds)
    if edges != sorted(edges):
        raise ValueError("histogram bounds must be sorted ascending")
    counts = [0] * (len(edges) + 1)
    total = 0.0
    n = 0
    for value in samples:
        index = 0
        for bound in edges:
            if value <= bound:
                break
            index += 1
        counts[index] += 1
        total += value
        n += 1
    return {"bounds": edges, "counts": counts, "sum": total, "count": n}
