"""The scenario fuzzer is itself under test.

Three contracts, in increasing order of teeth:

* the case stream is deterministic (same master seed, same cases), so a
  failing seed printed by CI reproduces locally, always;
* a short sweep of the real oracle is green in the regular test lane (the
  nightly job runs the long budgeted sweep);
* the harness *catches bugs*: injecting a determinism violation through the
  ``mutate`` hook must flip the oracle to ``failed``, shrinking must reduce
  the case, and the written reproducer must reload losslessly.  A fuzzer
  whose oracle cannot fail tests nothing.

Plus the regression the fuzzer earned: the shrunk reproducer for the
process-backend replica-lockstep bug (cut-segment service completions fired
owner-only, desyncing fault-model RNG across engine replicas) is committed
under ``tests/data/`` and re-checked here.
"""

import sys
from dataclasses import replace
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "tools") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "tools"))

import fuzz_scenarios as fuzz_tool  # noqa: E402

from repro.scenario import (  # noqa: E402
    FUZZ_PARAM_SPACE,
    GENERATORS,
    PartitionSpec,
    get_scenario,
    interchange,
)

DATA_DIR = Path(__file__).resolve().parent / "data"


def _tree_case(case_id: int = 0, shards: int = 2) -> fuzz_tool.FuzzCase:
    """A small, tie-free case: gen/tree admits no same-instant wire ties,
    so *any* relaxed divergence must register as a failure, never as
    tie-excused."""
    params = {"depth": 1, "fanout": 2, "hosts_per_leaf": 1, "seed": 7}
    return fuzz_tool.FuzzCase(
        case_id=case_id,
        generator="gen/tree",
        params=params,
        spec=get_scenario("gen/tree", **params),
        shards=shards,
        workers=0,
        check_process=False,
    )


class TestCaseStream:
    def test_draw_case_is_deterministic(self):
        first = fuzz_tool.draw_case(2026, 3)
        second = fuzz_tool.draw_case(2026, 3)
        assert first == second

    def test_distinct_case_ids_draw_distinct_cases(self):
        cases = [fuzz_tool.draw_case(2026, case_id) for case_id in range(8)]
        assert len({case.spec.name for case in cases}) > 1

    def test_param_space_covers_every_generator(self):
        assert set(FUZZ_PARAM_SPACE) == set(GENERATORS)

    def test_drawn_parameters_respect_the_declared_space(self):
        for case_id in range(16):
            case = fuzz_tool.draw_case(99, case_id)
            assert case.generator in GENERATORS
            space = FUZZ_PARAM_SPACE[case.generator]
            for name, (low, high) in space.items():
                assert low <= case.params[name] <= high
            assert 2 <= case.shards <= 4
            for fault in case.spec.faults:
                assert fault.at < case.spec.ready_time + 0.5


class TestGeneratorDeterminism:
    @pytest.mark.parametrize("generator", GENERATORS)
    def test_same_seed_same_spec(self, generator):
        params = {name: low for name, (low, _) in FUZZ_PARAM_SPACE[generator].items()}
        assert get_scenario(generator, seed=11, **params) == get_scenario(
            generator, seed=11, **params
        )

    @pytest.mark.parametrize("generator", GENERATORS)
    def test_seed_varies_the_topology(self, generator):
        params = {
            name: high for name, (_, high) in FUZZ_PARAM_SPACE[generator].items()
        }
        specs = {
            repr(get_scenario(generator, seed=seed, **params)) for seed in range(6)
        }
        assert len(specs) > 1

    @pytest.mark.parametrize("generator", GENERATORS)
    def test_generated_specs_survive_interchange(self, generator):
        spec = get_scenario(generator, seed=3)
        text = interchange.dump_scenario(spec, fmt=fuzz_tool.FMT)
        assert interchange.load_scenario(text, fmt=fuzz_tool.FMT).spec == spec


class TestSmokeSweep:
    def test_ten_case_sweep_is_green(self, tmp_path):
        lines = []
        assert fuzz_tool.fuzz(10, 2026, out_dir=tmp_path, log=lines.append) == 0
        # Green run: no reproducer documents were written.
        assert not list(tmp_path.iterdir())
        assert lines[-1].startswith("ok: 10 case(s)")


class TestInjectedBug:
    """The acceptance gate: a seeded determinism bug is caught and shrunk."""

    @staticmethod
    def _drop_last_relaxed(mode, records):
        return records[:-1] if mode == "relaxed" else records

    def test_unmutated_case_is_exact(self):
        result = fuzz_tool.run_case(_tree_case())
        assert result.status == "exact"
        assert result.tie_horizon is None

    def test_injected_relaxed_divergence_is_caught(self):
        result = fuzz_tool.run_case(_tree_case(), mutate=self._drop_last_relaxed)
        assert result.status == "failed"
        assert result.failing_mode == "relaxed"
        assert result.divergence_time is not None

    def test_injected_strict_divergence_is_caught(self):
        def perturb(mode, records):
            return records[::-1] if mode == "strict" else records

        result = fuzz_tool.run_case(_tree_case(), mutate=perturb)
        assert result.status == "failed"
        assert result.failing_mode == "strict"

    def test_shrinking_reduces_the_case_and_keeps_it_failing(self, tmp_path):
        case = _tree_case(case_id=41, shards=3)
        result = fuzz_tool.run_case(case, mutate=self._drop_last_relaxed)
        assert result.status == "failed"

        shrunk, shrunk_result = fuzz_tool.shrink_case(
            case, result, mutate=self._drop_last_relaxed
        )
        assert shrunk_result.status == "failed"
        assert shrunk_result.failing_mode == "relaxed"
        # The engine config simplifies and the topology only ever loses parts.
        assert shrunk.shards <= case.shards
        assert len(shrunk.spec.segments) <= len(case.spec.segments)
        assert len(shrunk.spec.hosts) < len(case.spec.hosts)

        path = fuzz_tool.write_reproducer(tmp_path, 2026, shrunk, shrunk_result)
        assert path.name == f"case-0041.{fuzz_tool.FMT}"
        document = interchange.load_scenario_file(path)
        assert document.spec == shrunk.spec
        assert document.partition == PartitionSpec(shards=shrunk.shards, sync="relaxed")
        assert document.run["failing_mode"] == "relaxed"
        assert document.run["fuzz_seed"] == 2026

    def test_invalid_reductions_are_skipped_not_fatal(self):
        """Shrinking a single-segment case tries un-compilable reductions
        (dropping the last segment strands the hosts); those must be skipped,
        leaving a still-failing minimal case."""
        case = _tree_case()
        minimal = replace(
            case, spec=fuzz_tool._without_segment(case.spec, case.spec.segments[-1].name)
        )
        result = fuzz_tool.run_case(minimal, mutate=self._drop_last_relaxed)
        assert result.status == "failed"
        shrunk, shrunk_result = fuzz_tool.shrink_case(
            minimal, result, mutate=self._drop_last_relaxed
        )
        assert shrunk_result.status == "failed"
        assert len(shrunk.spec.segments) >= 1


class TestCommittedReproducers:
    """Every shrunk reproducer under tests/data/ stays fixed."""

    def test_process_replica_lockstep_case_stays_fixed(self):
        pytest.importorskip("yaml")
        document = interchange.load_scenario_file(
            DATA_DIR / "process_replica_lockstep.yaml"
        )
        partition = document.partition
        assert partition is not None and partition.backend == "process"

        sequential = fuzz_tool._drive(document.spec, partition.shards, sync="relaxed")
        process = fuzz_tool._drive(
            document.spec,
            partition.shards,
            sync="relaxed",
            workers=partition.workers,
            backend="process",
        )
        assert fuzz_tool._canonical(process) == fuzz_tool._canonical(sequential)
