"""Switchlet packages — the shippable unit of code.

A :class:`SwitchletPackage` corresponds to a Caml byte-code file in the
paper: it carries the module's code, the digest of that code, and the digests
of the interfaces it was compiled against.  Packages serialize to bytes so
they can be shipped over the network-loading path (TFTP write requests,
Section 5.2) or carried in-band inside a capsule frame.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.core.signature import digest_module, digest_source
from repro.exceptions import LoadError

#: Format tag embedded in every serialized package.
PACKAGE_FORMAT = "repro-switchlet-v1"


@dataclass(frozen=True)
class SwitchletPackage:
    """A loadable switchlet.

    Attributes:
        name: the switchlet's name (e.g. ``"learning-bridge"``).
        source: Python source text executed by the loader in the thinned
            environment.
        requires: mapping of environment module name to the MD5 interface
            digest the switchlet was built against.  The loader verifies
            these before linking — the analogue of Caml's interface MD5
            check.
        source_digest: MD5 of the source text, checked after transport.
        metadata: free-form descriptive fields (version, description, ...).
    """

    name: str
    source: str
    requires: Dict[str, str] = field(default_factory=dict)
    source_digest: str = ""
    metadata: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise LoadError("switchlet package must have a name")
        if self.source_digest == "":
            object.__setattr__(self, "source_digest", digest_source(self.source))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        name: str,
        source: str,
        environment: Mapping[str, object],
        required_modules: Optional[list] = None,
        metadata: Optional[Mapping[str, str]] = None,
    ) -> "SwitchletPackage":
        """Build a package "compiled against" the given environment.

        Args:
            name: package name.
            source: source text.
            environment: the environment the package is intended to run in;
                its module digests are recorded as requirements.
            required_modules: restrict the recorded requirements to this
                subset of environment modules (default: all of them).
            metadata: optional descriptive fields.
        """
        names = (
            list(required_modules)
            if required_modules is not None
            else sorted(environment)
        )
        requires = {}
        for module_name in names:
            if module_name not in environment:
                raise LoadError(
                    f"package {name!r} requires unknown environment module "
                    f"{module_name!r}"
                )
            requires[module_name] = digest_module(environment[module_name])
        return cls(
            name=name,
            source=source,
            requires=requires,
            metadata=dict(metadata or {}),
        )

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def verify_source(self) -> bool:
        """Whether the source text still matches its recorded digest."""
        return digest_source(self.source) == self.source_digest

    def with_tampered_source(self, source: str) -> "SwitchletPackage":
        """Return a copy whose source was replaced *without* updating the digest.

        Exists for the security test-suite: a package altered in transit must
        be rejected by the loader.
        """
        return SwitchletPackage(
            name=self.name,
            source=source,
            requires=dict(self.requires),
            source_digest=self.source_digest,
            metadata=dict(self.metadata),
        )

    # ------------------------------------------------------------------
    # Serialization (for TFTP / capsules)
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize the package for transport."""
        document = {
            "format": PACKAGE_FORMAT,
            "name": self.name,
            "source": self.source,
            "requires": self.requires,
            "source_digest": self.source_digest,
            "metadata": self.metadata,
        }
        return json.dumps(document, sort_keys=True).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "SwitchletPackage":
        """Deserialize a package received over the network.

        Raises:
            LoadError: if the data is not a valid serialized package.
        """
        try:
            document = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise LoadError(f"malformed switchlet package: {exc}") from exc
        if not isinstance(document, dict) or document.get("format") != PACKAGE_FORMAT:
            raise LoadError("malformed switchlet package: bad format tag")
        try:
            return cls(
                name=document["name"],
                source=document["source"],
                requires=dict(document.get("requires", {})),
                source_digest=document.get("source_digest", ""),
                metadata=dict(document.get("metadata", {})),
            )
        except (KeyError, TypeError) as exc:
            raise LoadError(f"malformed switchlet package: {exc}") from exc

    def describe(self) -> str:
        """One-line summary used in logs."""
        return (
            f"switchlet {self.name!r} ({len(self.source)} bytes of source, "
            f"{len(self.requires)} required interfaces)"
        )
