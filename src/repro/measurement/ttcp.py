"""The ttcp-style bulk-throughput measurement tool (Section 7.3, Figure 10).

"Throughput for various packet sizes was measured with repeated ttcp trials."

:class:`TtcpSession` moves a configurable number of bytes from a sender host
to a receiver host in ``buffer_size``-byte application writes, each write
carried in one or more UDP segments, with a fixed window of unacknowledged
segments providing the self-clocking a TCP transfer would have.  The
throughput it reports is receiver-side goodput, and it also reports the frame
rate, which is the quantity the paper's Section 7.3 discusses (360-1790
frames/second through the active bridge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.lan.host import Host
from repro.measurement.stats import megabits_per_second
from repro.netstack.ip import IPv4Address
from repro.netstack.stack import MAX_UDP_PAYLOAD
from repro.sim.engine import Simulator
from repro.sim.trace import CounterWindow

#: UDP port the receiver listens on (ttcp's traditional port).
RECEIVER_PORT = 5001

#: UDP port the sender uses for acknowledgements.
SENDER_PORT = 5002

#: Bytes of sequencing header carried in every data segment.
SEGMENT_HEADER = 8

#: Acknowledge every Nth data segment (a delayed-ACK policy, as a real TCP
#: receiver would use); the final segment is always acknowledged.
ACK_INTERVAL = 4


@dataclass
class TtcpResult:
    """The outcome of one ttcp trial.

    Attributes:
        buffer_size: application write size in bytes.
        bytes_received: goodput bytes delivered to the receiver.
        segments_sent / segments_received: data segment counts.
        elapsed: seconds from the first send to the last delivery.
        completed: whether every byte arrived before the deadline.
        bridge_forwards: frames forwarded by active nodes during the trial,
            read from the trace hub's live counters (0 on unbridged paths,
            and also 0 if tracing is disabled or the ``node.forward``
            category is gated off — the counters only see captured records).
        gc_pauses: garbage-collection pauses taken by active nodes during
            the trial (also from the live counters, same caveat).
    """

    buffer_size: int
    bytes_received: int = 0
    segments_sent: int = 0
    segments_received: int = 0
    elapsed: float = 0.0
    completed: bool = False
    bridge_forwards: int = 0
    gc_pauses: int = 0

    @property
    def throughput_mbps(self) -> float:
        """Receiver goodput in megabits per second."""
        return megabits_per_second(self.bytes_received, self.elapsed)

    @property
    def frames_per_second(self) -> float:
        """Data frames delivered per second."""
        if self.elapsed <= 0:
            return 0.0
        return self.segments_received / self.elapsed


class TtcpSession:
    """A windowed bulk transfer between two hosts.

    Args:
        sim: the simulator.
        sender / receiver: the two hosts.
        buffer_size: application write size in bytes (the paper's x-axis).
        total_bytes: how many bytes to move.
        window: maximum unacknowledged data segments.
        receiver_port / sender_port: UDP ports used by the trial (distinct
            ports allow several trials to share a pair of hosts).
    """

    def __init__(
        self,
        sim: Simulator,
        sender: Host,
        receiver: Host,
        buffer_size: int,
        total_bytes: int,
        window: int = 8,
        receiver_port: int = RECEIVER_PORT,
        sender_port: int = SENDER_PORT,
    ) -> None:
        if buffer_size <= 0:
            raise ValueError("buffer_size must be positive")
        if total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        self.sim = sim
        self.sender = sender
        self.receiver = receiver
        self.buffer_size = int(buffer_size)
        self.total_bytes = int(total_bytes)
        # The window must exceed the delayed-ACK interval or the sender would
        # stall waiting for an acknowledgement the receiver is withholding.
        self.window = max(ACK_INTERVAL + 1, int(window))
        self.receiver_port = receiver_port
        self.sender_port = sender_port
        self.result = TtcpResult(buffer_size=self.buffer_size)
        self._segment_data = min(self.buffer_size, MAX_UDP_PAYLOAD - SEGMENT_HEADER)
        self._segments: Dict[int, int] = {}
        self._plan_segments()
        self._next_to_send = 0
        self._outstanding = 0
        self._received_segments = 0
        self._unacked_count = 0
        self._start_time: Optional[float] = None
        self._end_time: Optional[float] = None
        self._installed = False

    def _plan_segments(self) -> None:
        """Pre-compute the byte length of every data segment of the transfer."""
        sequence = 0
        remaining = self.total_bytes
        while remaining > 0:
            write = min(self.buffer_size, remaining)
            offset = 0
            while offset < write:
                chunk = min(self._segment_data, write - offset)
                self._segments[sequence] = chunk
                sequence += 1
                offset += chunk
            remaining -= write

    @property
    def total_segments(self) -> int:
        """Number of data segments the transfer consists of."""
        return len(self._segments)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def start(self, at_time: float) -> None:
        """Install the endpoints and schedule the transfer to start."""
        if not self._installed:
            self.receiver.bind_udp(self.receiver_port, self._on_data)
            self.sender.bind_udp(self.sender_port, self._on_ack)
            self._installed = True
        self.sim.schedule_at(at_time, self._begin, label="ttcp.start")

    def run(self, start_time: float, deadline: float = 120.0) -> TtcpResult:
        """Start at ``start_time`` and run until completion or ``deadline`` seconds pass."""
        self.start(start_time)
        # Live-counter window: O(1) reads at the end of the trial instead of
        # a post-hoc scan over the whole trace.
        window = CounterWindow(self.sim.trace)
        self.sim.run_until(start_time + deadline)
        self.result.bridge_forwards = window.count(category="node.forward")
        self.result.gc_pauses = window.count(category="node.gc_pause")
        if not self.result.completed and self._start_time is not None:
            # Report partial progress with the elapsed time observed so far.
            last = self._end_time if self._end_time is not None else self.sim.now
            self.result.elapsed = max(0.0, last - self._start_time)
        return self.result

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------

    def _begin(self) -> None:
        self._start_time = self.sim.now
        self._fill_window()

    def _fill_window(self) -> None:
        while self._outstanding < self.window and self._next_to_send < self.total_segments:
            self._send_segment(self._next_to_send)
            self._next_to_send += 1
            self._outstanding += 1

    def _send_segment(self, sequence: int) -> None:
        length = self._segments[sequence]
        # Charge the per-write system-call overhead on the first segment of
        # each application write; this is what keeps small-buffer trials
        # sender-limited, as in the paper's low small-frame rates.
        segments_per_write = max(
            1, (min(self.buffer_size, self.total_bytes) + self._segment_data - 1) // self._segment_data
        )
        if sequence % segments_per_write == 0:
            self.sender.cpu.submit(self.sender.costs.host_syscall_cost, lambda: None)
        header = sequence.to_bytes(4, "big") + length.to_bytes(4, "big")
        payload = header + bytes(length)
        self.result.segments_sent += 1
        self.sender.send_udp(self.receiver.ip, self.receiver_port, self.sender_port, payload)

    def _on_ack(self, payload: bytes, _remote: Tuple[IPv4Address, int]) -> None:
        if len(payload) < 4:
            return
        acked = int.from_bytes(payload[0:4], "big")
        self._outstanding = max(0, self._outstanding - acked)
        if self.result.completed:
            return
        self._fill_window()

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------

    def _on_data(self, payload: bytes, remote: Tuple[IPv4Address, int]) -> None:
        if len(payload) < SEGMENT_HEADER:
            return
        length = int.from_bytes(payload[4:8], "big")
        self.result.segments_received += 1
        self.result.bytes_received += length
        self._received_segments += 1
        self._unacked_count += 1
        finished = self._received_segments >= self.total_segments
        if self._unacked_count >= ACK_INTERVAL or finished:
            remote_ip, remote_port = remote
            ack = self._unacked_count.to_bytes(4, "big")
            self._unacked_count = 0
            self.receiver.send_udp(remote_ip, remote_port, self.receiver_port, ack)
        if finished and not self.result.completed:
            self.result.completed = True
            self._end_time = self.sim.now
            if self._start_time is not None:
                self.result.elapsed = self._end_time - self._start_time


def ttcp_sweep(
    sim: Simulator,
    sender: Host,
    receiver: Host,
    buffer_sizes: list,
    start_time: float,
    total_bytes: int = 400_000,
    window: int = 16,
    deadline_per_trial: float = 120.0,
) -> Dict[int, TtcpResult]:
    """Run one ttcp trial per buffer size, back to back, and return results by size."""
    results: Dict[int, TtcpResult] = {}
    when = start_time
    for index, size in enumerate(buffer_sizes):
        session = TtcpSession(
            sim,
            sender,
            receiver,
            buffer_size=size,
            total_bytes=total_bytes,
            window=window,
            receiver_port=RECEIVER_PORT + 2 * index,
            sender_port=SENDER_PORT + 2 * index + 1,
        )
        results[size] = session.run(start_time=when, deadline=deadline_per_trial)
        when = sim.now + 0.5
    return results
