"""Wall-clock relaxed speedup: sequential windows vs worker threads.

The relaxed executor is deterministic with or without worker threads; on GIL
builds the threads only add synchronization overhead, so the standard
sharded-fabric benchmark reports CPU-time rates and picks the sequential
window executor.  On a **free-threaded** (PEP 703 / ``3.13t``) interpreter
the same worker-per-shard code can actually run windows in parallel — and
the honest metric there is *wall clock*, not CPU time.

This benchmark measures exactly that: the wire-speed ring blast (same
workload as ``bench_sharded_fabric.py``) under relaxed sync with ``workers=0``
versus ``workers=shards``, reporting wall seconds and the threaded-over-
sequential wall speedup, plus whether the GIL was actually disabled.  It is
run by the **gated** free-threaded CI lane (see ``ci.yml``) and appends one
``freethreaded_wall`` entry to ``BENCH_trace.json`` so the lane's wall
numbers live next to the other benchmark history.  The entry is
informational — ``perf_gate.py`` does not collect it (wall seconds across
interpreter builds are not comparable, and the gated wall family is the
process-backend sweep in ``bench_sharded_fabric.py``) — but the record keeps
the free-threaded trajectory auditable: ``gil_disabled`` says whether the
numbers mean anything, and on GIL builds the speedup hovers at or below 1.0x
by construction.

Run directly::

    PYTHONPATH=src python benchmarks/bench_freethreaded_wall.py [--segments N]

Pass ``--no-record`` to print the summary without touching
``BENCH_trace.json``.
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import sys
import sysconfig
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_sharded_fabric import RESULTS_PATH, build, wire_blast  # noqa: E402


def gil_disabled() -> bool:
    """True when this interpreter is actually running without a GIL."""
    if not sysconfig.get_config_var("Py_GIL_DISABLED"):
        return False
    return not getattr(sys, "_is_gil_enabled", lambda: True)()


def gil_status() -> str:
    """A human-readable account of this interpreter's GIL situation."""
    if not sysconfig.get_config_var("Py_GIL_DISABLED"):
        return "GIL build (threads cannot scale wall clock)"
    return (
        "free-threaded build, GIL disabled"
        if gil_disabled()
        else "free-threaded build, GIL re-enabled at runtime"
    )


def measure(segments: int, shards: int, frames: int, workers: int) -> dict:
    run, compile_s, warm_s = build(segments, shards, "relaxed", workers)
    for device in run.devices:
        for nic in device.interfaces.values():
            nic.set_up(False)
    blast = wire_blast(run, frames, inline_safe=True)
    counters = dict(run.sim.trace.counters.by_category_source)
    del run
    gc.collect()
    return {"blast": blast, "counters": counters}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--segments", type=int, default=64)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--frames", type=int, default=400)
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="print the summary without appending to BENCH_trace.json",
    )
    args = parser.parse_args()

    print(f"interpreter: Python {sys.version.split()[0]} — {gil_status()}")
    t0 = time.perf_counter()
    sequential = measure(args.segments, args.shards, args.frames, workers=0)
    threaded = measure(args.segments, args.shards, args.frames, args.shards)
    assert sequential["counters"] == threaded["counters"], (
        "threaded relaxed run diverged from the sequential executor"
    )
    seq_wall = sequential["blast"]["seconds_wall"]
    thr_wall = threaded["blast"]["seconds_wall"]
    speedup = seq_wall / thr_wall if thr_wall else float("nan")
    print(
        f"{args.segments}-LAN ring, shards={args.shards}, relaxed: "
        f"sequential {seq_wall:.3f}s wall, "
        f"threaded {thr_wall:.3f}s wall -> {speedup:.2f}x wall speedup "
        f"({time.perf_counter() - t0:.1f}s total, results counter-identical)"
    )

    if args.no_record:
        return
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "freethreaded_wall": {
            "gil_disabled": gil_disabled(),
            "segments": args.segments,
            "shards": args.shards,
            "frames_per_pair": args.frames,
            "sequential_seconds_wall": seq_wall,
            "threaded_seconds_wall": thr_wall,
            "wall_speedup": round(speedup, 2),
            "counters_identical": True,
        },
    }
    history = []
    if RESULTS_PATH.exists():
        try:
            history = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            history = []
    history.append(entry)
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n")
    print(f"freethreaded wall entry appended to {RESULTS_PATH}")


if __name__ == "__main__":
    main()
