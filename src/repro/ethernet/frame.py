"""The Ethernet II frame wire format.

Frames are represented as an immutable dataclass and can be serialized to and
parsed from bytes.  The paper represents packets as ``{len; addr; pkt}``
records whose data the switchlet must unmarshal itself; our
:class:`EthernetFrame` plays the role of that record, and the switchlets
still do their own unmarshalling of the payloads they care about (BPDUs, IP
headers, ...).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from functools import cached_property

from repro.ethernet.crc import crc32_ethernet
from repro.ethernet.ethertype import EtherType
from repro.ethernet.mac import MacAddress
from repro.exceptions import FrameError

#: Minimum Ethernet payload (frames shorter than this are padded on the wire).
MIN_PAYLOAD = 46

#: Maximum Ethernet payload (the classic 1500-byte MTU).
MAX_PAYLOAD = 1500

#: Header: destination (6) + source (6) + type (2).
HEADER_LENGTH = 14

#: Trailer: the 4-byte frame check sequence.
FCS_LENGTH = 4

#: Preamble + SFD + inter-frame gap, counted when computing wire occupancy.
WIRE_OVERHEAD = 8 + 12

#: The 802.1Q tag inserted after the source address: TPID (2) + TCI (2).
VLAN_TAG_LENGTH = 4

#: The smallest possible wire occupancy of any frame (minimum frame plus
#: preamble, SFD and inter-frame gap) — a hard lower bound on serialization
#: time that the sharded fabric's partitioner folds into its cut-segment
#: lookahead.
MIN_WIRE_LENGTH = HEADER_LENGTH + MIN_PAYLOAD + FCS_LENGTH + WIRE_OVERHEAD


@dataclass(frozen=True)
class VlanTag:
    """An IEEE 802.1Q tag: VLAN identifier plus priority code point.

    Attributes:
        vid: the 12-bit VLAN identifier (1–4094 for real VLANs; 0 means
            "priority tag only" and 4095 is reserved, both rejected here).
        priority: the 3-bit priority code point (0 by default).
    """

    vid: int
    priority: int = 0

    def __post_init__(self) -> None:
        if not 1 <= int(self.vid) <= 0xFFE:
            raise FrameError(f"VLAN id out of range: {self.vid}")
        if not 0 <= int(self.priority) <= 7:
            raise FrameError(f"VLAN priority out of range: {self.priority}")

    @property
    def tci(self) -> int:
        """The 16-bit tag control information word (priority | DEI=0 | vid)."""
        return (int(self.priority) << 13) | int(self.vid)

    @classmethod
    def from_tci(cls, tci: int) -> "VlanTag":
        """Parse a tag control information word."""
        return cls(vid=tci & 0x0FFF, priority=(tci >> 13) & 0x7)

    def __str__(self) -> str:
        if self.priority:
            return f"{self.vid}(p{self.priority})"
        return str(self.vid)


@dataclass(frozen=True)
class EthernetFrame:
    """An Ethernet II frame, optionally 802.1Q-tagged.

    Attributes:
        destination: destination MAC address.
        source: source MAC address.
        ethertype: 16-bit protocol identifier (see :class:`EtherType`); for
            tagged frames this is the *inner* type, after the tag.
        payload: the payload bytes (not yet padded to the 46-byte minimum).
        vlan: optional 802.1Q tag; tagged frames carry 4 extra header bytes
            on the wire, reflected in both length properties.
        frame_length: length on the wire excluding preamble/IFG
            (header + tag + padded payload + FCS); precomputed in
            ``__post_init__``.
        wire_length: total wire occupancy including preamble, SFD and
            inter-frame gap; precomputed in ``__post_init__``.
    """

    destination: MacAddress
    source: MacAddress
    ethertype: int
    payload: bytes = field(default=b"")
    vlan: "VlanTag | None" = None

    def __post_init__(self) -> None:
        payload_length = len(self.payload)
        if payload_length > MAX_PAYLOAD:
            raise FrameError(
                f"payload of {payload_length} bytes exceeds the "
                f"{MAX_PAYLOAD}-byte Ethernet MTU"
            )
        if not 0 <= int(self.ethertype) <= 0xFFFF:
            raise FrameError(f"ethertype out of range: {self.ethertype}")
        # The size accounting is read several times per hop (NIC counters,
        # serialization delay, cost model); precompute it once.  Plain
        # attributes, not fields: they never enter __eq__/__repr__.
        padded = payload_length if payload_length >= MIN_PAYLOAD else MIN_PAYLOAD
        tag = 0 if self.vlan is None else VLAN_TAG_LENGTH
        object.__setattr__(
            self, "frame_length", HEADER_LENGTH + tag + padded + FCS_LENGTH
        )
        object.__setattr__(
            self,
            "wire_length",
            HEADER_LENGTH + tag + padded + FCS_LENGTH + WIRE_OVERHEAD,
        )

    # -- size accounting -----------------------------------------------------

    @cached_property
    def padded_payload(self) -> bytes:
        """The payload padded with zero bytes up to the 46-byte minimum.

        Cached: the frame is immutable and the LAN substrate reads the size
        properties several times per hop.
        """
        if len(self.payload) >= MIN_PAYLOAD:
            return self.payload
        return self.payload + b"\x00" * (MIN_PAYLOAD - len(self.payload))

    @property
    def is_multicast(self) -> bool:
        """True if addressed to a multicast group (including broadcast)."""
        return self.destination.is_multicast

    @property
    def is_broadcast(self) -> bool:
        """True if addressed to the broadcast address."""
        return self.destination.is_broadcast

    # -- serialization -------------------------------------------------------

    def encode(self) -> bytes:
        """Serialize to wire bytes (header, optional 802.1Q tag, padded payload, FCS)."""
        header = self.destination.octets + self.source.octets
        if self.vlan is not None:
            header += struct.pack(
                "!HH", int(EtherType.VLAN_8021Q), self.vlan.tci
            )
        header += struct.pack("!H", int(self.ethertype))
        body = header + self.padded_payload
        fcs = struct.pack("!I", crc32_ethernet(body))
        return body + fcs

    @classmethod
    def decode(cls, data: bytes, verify_fcs: bool = True) -> "EthernetFrame":
        """Parse wire bytes back into a frame.

        An outer type field of 0x8100 is recognized as an 802.1Q tag: the
        following TCI word becomes :attr:`vlan` and the real EtherType is
        read after it.

        Args:
            data: encoded frame bytes.
            verify_fcs: if true (default), a bad frame check sequence raises
                :class:`FrameError` — this is how the simulated NIC drops
                corrupted frames.

        Note:
            Padding cannot be distinguished from genuine payload at this
            layer (exactly as on real Ethernet); higher layers carry their
            own length fields.
        """
        if len(data) < HEADER_LENGTH + MIN_PAYLOAD + FCS_LENGTH:
            raise FrameError(f"frame too short: {len(data)} bytes")
        destination = MacAddress(data[0:6])
        source = MacAddress(data[6:12])
        (outer_type,) = struct.unpack("!H", data[12:14])
        vlan = None
        body_start = HEADER_LENGTH
        if outer_type == int(EtherType.VLAN_8021Q):
            (tci,) = struct.unpack("!H", data[14:16])
            vlan = VlanTag.from_tci(tci)
            (ethertype,) = struct.unpack("!H", data[16:18])
            body_start = HEADER_LENGTH + VLAN_TAG_LENGTH
        else:
            ethertype = outer_type
        payload = data[body_start:-FCS_LENGTH]
        (fcs,) = struct.unpack("!I", data[-FCS_LENGTH:])
        if verify_fcs and crc32_ethernet(data[:-FCS_LENGTH]) != fcs:
            raise FrameError("frame check sequence mismatch")
        return cls(
            destination=destination,
            source=source,
            ethertype=ethertype,
            payload=payload,
            vlan=vlan,
        )

    # -- convenience ---------------------------------------------------------

    def with_payload(self, payload: bytes) -> "EthernetFrame":
        """Return a copy of this frame carrying a different payload."""
        return replace(self, payload=payload)

    def tagged(self, vid: int, priority: int = 0) -> "EthernetFrame":
        """Return a copy of this frame carrying an 802.1Q tag."""
        return replace(self, vlan=VlanTag(vid=vid, priority=priority))

    def untagged(self) -> "EthernetFrame":
        """Return a copy of this frame with any 802.1Q tag removed."""
        if self.vlan is None:
            return self
        return replace(self, vlan=None)

    def describe(self) -> str:
        """One-line human-readable summary used by logs and debug output."""
        vlan = "" if self.vlan is None else f"vlan={self.vlan} "
        return (
            f"{self.source} -> {self.destination} "
            f"{vlan}type={EtherType.describe(int(self.ethertype))} "
            f"len={len(self.payload)}"
        )
