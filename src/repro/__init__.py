"""Reproduction of *Active Bridging* (Alexander, Shaw, Nettles, Smith, 1997).

This package implements the complete system described in the paper:

* a discrete-event simulation kernel (:mod:`repro.sim`),
* an Ethernet / shared-LAN substrate (:mod:`repro.ethernet`, :mod:`repro.lan`),
* a minimal IP / UDP / ICMP / TFTP stack used as the network loading path
  (:mod:`repro.netstack`),
* the active node itself -- switchlet loader, module thinning, safe
  environment, and the ``Unixnet`` port API (:mod:`repro.core`),
* the bridge switchlets: dumb bridge, learning bridge, IEEE 802.1D spanning
  tree, a DEC-style spanning tree, and the protocol-transition control
  switchlet (:mod:`repro.switchlets`),
* baselines, a calibrated cost model, measurement tools (ping / ttcp /
  agility), and analysis helpers used by the benchmark harness.

The most convenient entry points are re-exported at the top level:

>>> from repro import Simulator, NetworkBuilder, ActiveNode, run_scenario
>>> from repro.switchlets import learning_bridge_package
"""

from repro._version import __version__
from repro.sim.engine import Simulator
from repro.lan.topology import NetworkBuilder
from repro.core.node import ActiveNode
from repro.core.loader import SwitchletLoader
from repro.core.switchlet import SwitchletPackage
from repro.costs.model import CostModel
from repro.scenario import ScenarioSpec, run_scenario

__all__ = [
    "__version__",
    "Simulator",
    "NetworkBuilder",
    "ActiveNode",
    "SwitchletLoader",
    "SwitchletPackage",
    "CostModel",
    "ScenarioSpec",
    "run_scenario",
]
