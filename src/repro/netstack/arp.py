"""ARP (address resolution) for the host substrate.

The paper's hosts are ordinary Linux machines; they resolve each other's MAC
addresses with ARP before ping/ttcp traffic flows.  Bridges are transparent
to ARP (they just forward the broadcasts), so implementing it keeps the host
substrate faithful and gives the learning bridge realistic broadcast traffic
to learn from.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum

from repro.ethernet.mac import MacAddress
from repro.exceptions import PacketError
from repro.netstack.ip import IPv4Address

ARP_PACKET_LENGTH = 28
HARDWARE_TYPE_ETHERNET = 1
PROTOCOL_TYPE_IPV4 = 0x0800


class ArpOperation(IntEnum):
    """ARP operation codes."""

    REQUEST = 1
    REPLY = 2


@dataclass(frozen=True)
class ArpPacket:
    """An ARP request or reply for IPv4 over Ethernet."""

    operation: int
    sender_mac: MacAddress
    sender_ip: IPv4Address
    target_mac: MacAddress
    target_ip: IPv4Address

    def encode(self) -> bytes:
        """Serialize to the standard 28-byte ARP payload."""
        return (
            struct.pack(
                "!HHBBH",
                HARDWARE_TYPE_ETHERNET,
                PROTOCOL_TYPE_IPV4,
                6,
                4,
                int(self.operation),
            )
            + self.sender_mac.octets
            + self.sender_ip.to_bytes()
            + self.target_mac.octets
            + self.target_ip.to_bytes()
        )

    @classmethod
    def decode(cls, data: bytes) -> "ArpPacket":
        """Parse the 28-byte ARP payload (trailing Ethernet padding is ignored)."""
        if len(data) < ARP_PACKET_LENGTH:
            raise PacketError(f"ARP packet too short: {len(data)} bytes")
        hardware_type, protocol_type, hlen, plen, operation = struct.unpack(
            "!HHBBH", data[:8]
        )
        if hardware_type != HARDWARE_TYPE_ETHERNET or protocol_type != PROTOCOL_TYPE_IPV4:
            raise PacketError("unsupported ARP hardware/protocol type")
        if hlen != 6 or plen != 4:
            raise PacketError("unsupported ARP address lengths")
        if operation not in (int(ArpOperation.REQUEST), int(ArpOperation.REPLY)):
            raise PacketError(f"unsupported ARP operation: {operation}")
        sender_mac = MacAddress(data[8:14])
        sender_ip = IPv4Address.from_bytes(data[14:18])
        target_mac = MacAddress(data[18:24])
        target_ip = IPv4Address.from_bytes(data[24:28])
        return cls(
            operation=operation,
            sender_mac=sender_mac,
            sender_ip=sender_ip,
            target_mac=target_mac,
            target_ip=target_ip,
        )

    @classmethod
    def request(
        cls, sender_mac: MacAddress, sender_ip: IPv4Address, target_ip: IPv4Address
    ) -> "ArpPacket":
        """Build a who-has request for ``target_ip``."""
        return cls(
            operation=int(ArpOperation.REQUEST),
            sender_mac=sender_mac,
            sender_ip=sender_ip,
            target_mac=MacAddress(b"\x00" * 6),
            target_ip=target_ip,
        )

    def make_reply(self, responder_mac: MacAddress) -> "ArpPacket":
        """Build the reply to this request, claiming ``target_ip`` is at ``responder_mac``."""
        if self.operation != int(ArpOperation.REQUEST):
            raise PacketError("make_reply() called on a non-request ARP packet")
        return ArpPacket(
            operation=int(ArpOperation.REPLY),
            sender_mac=responder_mac,
            sender_ip=self.target_ip,
            target_mac=self.sender_mac,
            target_ip=self.sender_ip,
        )
