"""``Safestd`` — the thinned standard library for switchlets.

The paper (Section 5.2.1): "The most basic of the modules provided is
``Safestd``.  This is a slightly modified version of the Safestd module from
the MMM browser.  It provides a set of standard Caml functions ranging from
integer operations to an implementation of hash tables.  As the name implies,
it has been thinned to only allow 'safe' operations."

The reproduction provides the same categories of functionality:

* ``Hashtbl`` — a small hash-table class with the Caml-flavoured API the
  paper's example code uses (``create``/``add``/``find``/``mem``/...),
  because the learning bridge keys its host-location table with it;
* byte/string packing helpers (``pack_be``/``unpack_be``/...) that switchlets
  use to marshal BPDUs and other wire formats without needing ``struct``;
* a handful of numeric and sequence helpers.

Nothing here can touch the file system, the Python import machinery, or the
process.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional


class Hashtbl:
    """A Caml-``Hashtbl``-flavoured hash table.

    Unlike a plain dict, ``add`` keeps previous bindings hidden underneath
    (Caml semantics): ``find`` returns the most recent binding and ``remove``
    pops it, re-exposing the previous one.  ``replace`` behaves like plain
    assignment.  The learning bridge only needs ``replace``/``find``, but the
    full semantics are provided (and tested) for fidelity with the paper's
    example code.
    """

    def __init__(self, size_hint: int = 16) -> None:
        # size_hint mirrors Hashtbl.create's argument; Python dicts size
        # themselves, so it is accepted and ignored.
        self._size_hint = size_hint
        self._table: Dict[object, List[object]] = {}

    @classmethod
    def create(cls, size_hint: int = 16) -> "Hashtbl":
        """Create an empty table (Caml's ``Hashtbl.create``)."""
        return cls(size_hint)

    def add(self, key: object, value: object) -> None:
        """Bind ``key`` to ``value``, shadowing (not destroying) prior bindings."""
        self._table.setdefault(key, []).append(value)

    def replace(self, key: object, value: object) -> None:
        """Replace the current binding of ``key`` (or create it)."""
        bindings = self._table.setdefault(key, [])
        if bindings:
            bindings[-1] = value
        else:
            bindings.append(value)

    def find(self, key: object) -> object:
        """Return the most recent binding of ``key``.

        Raises:
            KeyError: if ``key`` has no binding (Caml raises ``Not_found``).
        """
        bindings = self._table.get(key)
        if not bindings:
            raise KeyError(key)
        return bindings[-1]

    def find_opt(self, key: object) -> Optional[object]:
        """Return the most recent binding of ``key`` or ``None``."""
        bindings = self._table.get(key)
        if not bindings:
            return None
        return bindings[-1]

    def mem(self, key: object) -> bool:
        """Whether ``key`` has at least one binding."""
        return bool(self._table.get(key))

    def remove(self, key: object) -> None:
        """Remove the most recent binding of ``key`` (no-op if absent)."""
        bindings = self._table.get(key)
        if not bindings:
            return
        bindings.pop()
        if not bindings:
            del self._table[key]

    def length(self) -> int:
        """Total number of bindings (shadowed bindings included)."""
        return sum(len(bindings) for bindings in self._table.values())

    def keys(self) -> list:
        """The distinct keys currently bound."""
        return list(self._table)

    def items(self) -> list:
        """``(key, current_value)`` pairs."""
        return [(key, bindings[-1]) for key, bindings in self._table.items()]

    def iter(self, visit) -> None:
        """Apply ``visit(key, value)`` to every (current) binding."""
        for key, bindings in list(self._table.items()):
            visit(key, bindings[-1])

    def clear(self) -> None:
        """Remove every binding."""
        self._table.clear()


class SafestdImplementation:
    """Implementation object behind the thinned ``Safestd`` module."""

    #: The class itself is exported so switchlets can call ``Safestd.Hashtbl.create``.
    Hashtbl = Hashtbl

    # -- byte packing helpers (switchlets have no ``struct`` module) ---------

    @staticmethod
    def pack_be(value: int, width: int) -> bytes:
        """Encode ``value`` as ``width`` big-endian bytes."""
        return int(value).to_bytes(width, "big")

    @staticmethod
    def unpack_be(data: bytes, offset: int = 0, width: int = 1) -> int:
        """Decode ``width`` big-endian bytes starting at ``offset``."""
        return int.from_bytes(bytes(data[offset : offset + width]), "big")

    @staticmethod
    def bytes_concat(parts: Iterable[bytes]) -> bytes:
        """Concatenate an iterable of byte strings."""
        return b"".join(bytes(part) for part in parts)

    @staticmethod
    def bytes_slice(data: bytes, start: int, length: int) -> bytes:
        """Return ``length`` bytes of ``data`` starting at ``start``."""
        return bytes(data[start : start + length])

    # -- numeric / sequence helpers ------------------------------------------

    @staticmethod
    def minimum(a, b):
        """The smaller of two values."""
        return a if a <= b else b

    @staticmethod
    def maximum(a, b):
        """The larger of two values."""
        return a if a >= b else b

    @staticmethod
    def string_of_int(value: int) -> str:
        """Render an integer as a string (Caml's ``string_of_int``)."""
        return str(int(value))

    @staticmethod
    def int_of_string(text: str) -> int:
        """Parse an integer from a string (Caml's ``int_of_string``)."""
        return int(text)

    #: Names exported when this implementation is thinned into ``Safestd``.
    THINNED_EXPORTS = (
        "Hashtbl",
        "pack_be",
        "unpack_be",
        "bytes_concat",
        "bytes_slice",
        "minimum",
        "maximum",
        "string_of_int",
        "int_of_string",
    )
