"""802.1Q VLAN support: frame tagging, switchlet semantics, isolation.

Three layers are covered:

* the **wire format** — :class:`VlanTag` and the tagged
  :class:`EthernetFrame` (lengths, encode/decode, pkt-bytes round trip,
  the ``FrameFmt`` helpers shipped inside switchlets);
* the **VLAN-aware learning bridge switchlet** — access/trunk discipline,
  per-VLAN learning tables, drop counters;
* the **trunked scenario family** — tagged frames never cross VLANs and
  trunk flooding stays scoped per VLAN, across the matrix expansion.
"""

from __future__ import annotations

import pytest

from repro.core.unixnet import frame_to_packet_bytes, packet_bytes_to_frame
from repro.ethernet.ethertype import EtherType
from repro.ethernet.frame import (
    EthernetFrame,
    FCS_LENGTH,
    HEADER_LENGTH,
    MIN_PAYLOAD,
    VLAN_TAG_LENGTH,
    VlanTag,
    WIRE_OVERHEAD,
)
from repro.ethernet.mac import BROADCAST, MacAddress
from repro.exceptions import FrameError
from repro.lan.nic import NetworkInterface
from repro.measurement.ping import PingRunner
from repro.scenario import expand_matrix, run_scenario
from repro.switchlets.framefmt import FrameFmt

SRC = MacAddress.from_string("02:00:00:00:00:01")
DST = MacAddress.from_string("02:00:00:00:00:02")


def _frame(payload=b"hello", vlan=None):
    return EthernetFrame(
        destination=DST,
        source=SRC,
        ethertype=int(EtherType.IPV4),
        payload=payload,
        vlan=vlan,
    )


class TestVlanTag:
    def test_tci_round_trip(self):
        tag = VlanTag(vid=123, priority=5)
        assert VlanTag.from_tci(tag.tci) == tag

    @pytest.mark.parametrize("vid", [0, 0xFFF, 4095, -1])
    def test_reserved_vids_rejected(self, vid):
        with pytest.raises(FrameError):
            VlanTag(vid=vid)

    def test_priority_range(self):
        with pytest.raises(FrameError):
            VlanTag(vid=1, priority=8)

    def test_str(self):
        assert str(VlanTag(vid=10)) == "10"
        assert str(VlanTag(vid=10, priority=3)) == "10(p3)"


class TestTaggedFrame:
    def test_tag_adds_four_bytes_to_both_lengths(self):
        plain = _frame()
        tagged = plain.tagged(10)
        assert tagged.frame_length == plain.frame_length + VLAN_TAG_LENGTH
        assert tagged.wire_length == plain.wire_length + VLAN_TAG_LENGTH
        expected = HEADER_LENGTH + VLAN_TAG_LENGTH + MIN_PAYLOAD + FCS_LENGTH
        assert tagged.frame_length == expected
        assert tagged.wire_length == expected + WIRE_OVERHEAD

    def test_encode_decode_round_trip(self):
        tagged = _frame(payload=b"x" * 100).tagged(42, priority=6)
        decoded = EthernetFrame.decode(tagged.encode())
        assert decoded.vlan == VlanTag(vid=42, priority=6)
        assert decoded.ethertype == int(EtherType.IPV4)
        assert decoded.payload == b"x" * 100
        assert decoded == tagged

    def test_encode_places_tpid_after_source(self):
        data = _frame().tagged(7).encode()
        assert data[12:14] == b"\x81\x00"
        assert int.from_bytes(data[14:16], "big") & 0x0FFF == 7
        assert data[16:18] == int(EtherType.IPV4).to_bytes(2, "big")

    def test_untagged_decode_unchanged(self):
        plain = _frame(payload=b"y" * 60)
        decoded = EthernetFrame.decode(plain.encode())
        assert decoded.vlan is None
        assert decoded == plain

    def test_untagged_helper(self):
        tagged = _frame().tagged(9)
        assert tagged.untagged().vlan is None
        assert tagged.untagged().payload == tagged.payload
        plain = _frame()
        assert plain.untagged() is plain

    def test_describe_mentions_vlan(self):
        assert "vlan=10" in _frame().tagged(10).describe()
        assert "vlan" not in _frame().describe()

    def test_packet_bytes_round_trip(self):
        tagged = _frame(payload=b"z" * 33).tagged(100)
        pkt = frame_to_packet_bytes(tagged)
        # The tag rides in-line: TPID right after the source address.
        assert pkt[12:14] == b"\x81\x00"
        rebuilt = packet_bytes_to_frame(pkt)
        assert rebuilt == tagged

    def test_truncated_tagged_packet_bytes_rejected(self):
        with pytest.raises(FrameError):
            packet_bytes_to_frame(SRC.octets + DST.octets + b"\x81\x00\x00")


class TestFrameFmtVlanHelpers:
    def test_add_strip_round_trip(self):
        pkt = FrameFmt.build(DST.octets, SRC.octets, int(EtherType.IPV4), b"data")
        tagged = FrameFmt.add_vlan(pkt, 20, priority=2)
        assert FrameFmt.is_tagged(tagged)
        assert FrameFmt.vlan_id(tagged) == 20
        assert FrameFmt.strip_vlan(tagged) == pkt
        assert FrameFmt.vlan_id(pkt) is None
        assert FrameFmt.strip_vlan(pkt) == pkt

    def test_double_tagging_rejected(self):
        pkt = FrameFmt.build(DST.octets, SRC.octets, int(EtherType.IPV4), b"")
        tagged = FrameFmt.add_vlan(pkt, 5)
        with pytest.raises(ValueError):
            FrameFmt.add_vlan(tagged, 6)

    def test_addresses_survive_tagging(self):
        pkt = FrameFmt.build(DST.octets, SRC.octets, int(EtherType.IPV4), b"q")
        tagged = FrameFmt.add_vlan(pkt, 11)
        assert FrameFmt.dst_bytes(tagged) == DST.octets
        assert FrameFmt.src_bytes(tagged) == SRC.octets

    def test_priority_round_trip(self):
        pkt = FrameFmt.build(DST.octets, SRC.octets, int(EtherType.IPV4), b"q")
        tagged = FrameFmt.add_vlan(pkt, 11, priority=5)
        assert FrameFmt.vlan_priority(tagged) == 5
        assert FrameFmt.vlan_id(tagged) == 11
        assert FrameFmt.vlan_priority(pkt) is None


def _segment_rx(run, name):
    """Total frames delivered onto a segment."""
    return run.segment(name).frames_carried


class TestVlanTrunkScenario:
    def test_same_vlan_ping_crosses_the_trunk(self):
        run = run_scenario("vlan/trunk", seed=5)
        near, far = run.host("h1v10n1"), run.host("h2v10n1")
        result = PingRunner(
            run.sim, near, far.ip, payload_size=256, count=3, interval=0.1
        ).run(start_time=run.ready_time)
        assert result.received == result.sent == 3

    def test_cross_vlan_ping_never_arrives(self):
        run = run_scenario("vlan/trunk", seed=5)
        near, wrong = run.host("h1v10n1"), run.host("h2v20n1")
        # Static ARP is VLAN-scoped; install an entry manually so the echo
        # request is genuinely transmitted and must be dropped at L2.
        near.stack.add_static_arp(wrong.ip, wrong.mac)
        result = PingRunner(
            run.sim, near, wrong.ip, payload_size=256, count=3, interval=0.1
        ).run(start_time=run.ready_time)
        assert result.sent == 3
        assert result.received == 0
        # The frames died inside the VLAN discipline, not in transit: the
        # destination host's NIC never saw them.
        assert run.host("h2v20n1").nic.frames_received == 0

    def test_trunk_flooding_is_scoped_per_vlan(self):
        run = run_scenario("vlan/trunk", seed=6)
        run.warm_up()
        # An unknown-destination broadcast from a VLAN-10 host floods through
        # both switches — but only VLAN-10 segments ever carry it.
        sender = run.host("h1v10n1")
        probe = NetworkInterface(run.sim, "probe", MacAddress.from_string("02:aa:00:00:00:01"))
        probe.attach(run.segment("sw1-v10"))
        probe.send(
            EthernetFrame(
                destination=BROADCAST,
                source=probe.mac,
                ethertype=int(EtherType.MEASUREMENT),
                payload=b"flood",
            )
        )
        run.run_until(run.sim.now + 1.0)
        assert _segment_rx(run, "trunk") >= 1  # crossed the trunk, tagged
        assert _segment_rx(run, "sw2-v10") >= 1  # delivered to the far VLAN-10 LAN
        assert _segment_rx(run, "sw1-v20") == 0  # never leaked into VLAN 20
        assert _segment_rx(run, "sw2-v20") == 0
        assert sender.nic.frames_received >= 1  # fellow VLAN-10 station got it

    def test_frames_on_trunk_are_tagged(self):
        run = run_scenario("vlan/trunk", seed=7)
        seen = []
        spy = NetworkInterface(run.sim, "spy", MacAddress.from_string("02:aa:00:00:00:02"))
        spy.attach(run.segment("trunk"))
        spy.set_promiscuous(True)
        spy.set_handler(lambda _nic, frame: seen.append(frame))
        near, far = run.host("h1v10n1"), run.host("h2v10n1")
        PingRunner(run.sim, near, far.ip, payload_size=64, count=2, interval=0.1).run(
            start_time=run.ready_time
        )
        assert seen, "trunk carried no frames"
        assert all(frame.vlan is not None for frame in seen)
        assert {frame.vlan.vid for frame in seen} == {10}

    def test_access_port_drops_tagged_frames(self):
        run = run_scenario("vlan/trunk", seed=8)
        run.warm_up()
        app = run.device("switch1").func.lookup("switchlet.vlan-bridge")
        rogue = NetworkInterface(run.sim, "rogue", MacAddress.from_string("02:aa:00:00:00:03"))
        rogue.attach(run.segment("sw1-v10"))
        rogue.send(
            EthernetFrame(
                destination=BROADCAST,
                source=rogue.mac,
                ethertype=int(EtherType.MEASUREMENT),
                payload=b"tagged-on-access",
                vlan=VlanTag(vid=10),
            )
        )
        run.run_until(run.sim.now + 0.5)
        assert app.stats()["dropped_tagged_on_access"] == 1
        assert _segment_rx(run, "trunk") == 0

    def test_trunk_port_drops_untagged_and_disallowed_vlans(self):
        run = run_scenario("vlan/trunk", seed=9)
        run.warm_up()
        app = run.device("switch1").func.lookup("switchlet.vlan-bridge")
        rogue = NetworkInterface(run.sim, "rogue", MacAddress.from_string("02:aa:00:00:00:04"))
        rogue.attach(run.segment("trunk"))
        base = dict(
            destination=BROADCAST,
            source=rogue.mac,
            ethertype=int(EtherType.MEASUREMENT),
            payload=b"x",
        )
        rogue.send(EthernetFrame(**base))  # untagged on trunk
        rogue.send(EthernetFrame(**base, vlan=VlanTag(vid=999)))  # not allowed
        run.run_until(run.sim.now + 0.5)
        stats = app.stats()
        assert stats["dropped_untagged_on_trunk"] == 1
        assert stats["dropped_vlan_not_allowed"] == 1
        assert _segment_rx(run, "sw1-v10") == 0
        assert _segment_rx(run, "sw1-v20") == 0

    def test_learning_tables_are_per_vlan(self):
        run = run_scenario("vlan/trunk", seed=10)
        for near, far in (("h1v10n1", "h2v10n1"), ("h1v20n1", "h2v20n1")):
            PingRunner(
                run.sim,
                run.host(near),
                run.host(far).ip,
                payload_size=64,
                count=2,
                interval=0.05,
            ).run(start_time=run.sim.now + 0.1)
        snapshot = run.device("switch1").func.lookup("switchlet.vlan-bridge").snapshot()
        assert set(snapshot) == {10, 20}
        v10_macs = set(snapshot[10])
        v20_macs = set(snapshot[20])
        assert str(run.host("h1v10n1").mac) in v10_macs
        assert str(run.host("h1v20n1").mac) in v20_macs
        # No address appears in both VLANs' tables.
        assert not (v10_macs & v20_macs)

    def test_reserved_vlan_ids_rejected_at_configuration(self):
        run = run_scenario("vlan/trunk", seed=12)
        app = run.device("switch1").func.lookup("switchlet.vlan-bridge")
        with pytest.raises(ValueError, match="VLAN id out of range"):
            app.configure_ports({"eth0": {"mode": "access", "vlan": 0}})
        with pytest.raises(ValueError, match="VLAN id out of range"):
            app.configure_ports({"eth0": {"mode": "trunk", "allowed": [10, 4095]}})

    def test_priority_preserved_across_trunk_to_trunk_forwarding(self):
        from repro.scenario import DeviceSpec, PortSpec, ScenarioSpec, SegmentSpec, SwitchletSpec

        spec = ScenarioSpec(
            name="t/dual-trunk",
            segments=(SegmentSpec("trunkA"), SegmentSpec("trunkB")),
            devices=(
                DeviceSpec(
                    "sw",
                    ports=(
                        PortSpec("eth0", "trunkA", mode="trunk", allowed_vlans=(10,)),
                        PortSpec("eth1", "trunkB", mode="trunk", allowed_vlans=(10,)),
                    ),
                    switchlets=(
                        SwitchletSpec("dumb-bridge"),
                        SwitchletSpec("vlan-bridge"),
                    ),
                ),
            ),
        )
        run = run_scenario(spec, seed=13)
        run.warm_up()
        seen = []
        spy = NetworkInterface(run.sim, "spy", MacAddress.from_string("02:aa:00:00:00:05"))
        spy.attach(run.segment("trunkB"))
        spy.set_promiscuous(True)
        spy.set_handler(lambda _nic, frame: seen.append(frame))
        sender = NetworkInterface(run.sim, "tx", MacAddress.from_string("02:aa:00:00:00:06"))
        sender.attach(run.segment("trunkA"))
        sender.send(
            EthernetFrame(
                destination=BROADCAST,
                source=sender.mac,
                ethertype=int(EtherType.MEASUREMENT),
                payload=b"qos",
                vlan=VlanTag(vid=10, priority=5),
            )
        )
        run.run_until(run.sim.now + 0.5)
        assert seen, "frame never crossed the dual-trunk switch"
        assert seen[0].vlan == VlanTag(vid=10, priority=5)

    def test_isolation_holds_across_the_matrix(self):
        for spec in expand_matrix(
            "vlan/trunk", {"n_vlans": [2, 3], "hosts_per_vlan": [1, 2]}
        ):
            assert len(spec.segments) >= 3
            assert spec.params["n_vlans"] * spec.params["hosts_per_vlan"] * 2 == len(
                spec.hosts
            )
        # Compile one of the larger points and spot-check isolation.
        run = run_scenario("vlan/trunk", seed=11, params={"n_vlans": 3, "hosts_per_vlan": 2})
        near, far = run.host("h1v30n1"), run.host("h2v30n2")
        result = PingRunner(
            run.sim, near, far.ip, payload_size=64, count=2, interval=0.05
        ).run(start_time=run.ready_time)
        assert result.received == 2
        wrong = run.host("h2v10n1")
        near.stack.add_static_arp(wrong.ip, wrong.mac)
        result = PingRunner(
            run.sim, near, wrong.ip, payload_size=64, count=2, interval=0.05
        ).run(start_time=run.sim.now + 0.1)
        assert result.received == 0


class TestNativeVlanTrunk:
    """Native-VLAN trunks: untagged trunk traffic maps to the native VLAN."""

    def _native_run(self, seed=20):
        return run_scenario("vlan/trunk", seed=seed, params={"native_vlan": 10})

    def test_native_vlan_ping_crosses_the_trunk(self):
        run = self._native_run()
        near, far = run.host("h1v10n1"), run.host("h2v10n1")
        result = PingRunner(
            run.sim, near, far.ip, payload_size=128, count=3, interval=0.1
        ).run(start_time=run.ready_time)
        assert result.received == result.sent == 3

    def test_native_vlan_egresses_untagged_others_stay_tagged(self):
        run = self._native_run(seed=21)
        seen = []
        spy = NetworkInterface(run.sim, "spy", MacAddress.from_string("02:aa:00:00:00:05"))
        spy.attach(run.segment("trunk"))
        spy.set_promiscuous(True)
        spy.set_handler(lambda _nic, frame: seen.append(frame))
        near10, far10 = run.host("h1v10n1"), run.host("h2v10n1")
        near20, far20 = run.host("h1v20n1"), run.host("h2v20n1")
        PingRunner(
            run.sim, near10, far10.ip, payload_size=64, count=2, interval=0.1
        ).run(start_time=run.ready_time)
        PingRunner(
            run.sim, near20, far20.ip, payload_size=64, count=2, interval=0.1,
            identifier=0x4321,
        ).run(start_time=run.sim.now + 0.1)
        native_frames = [frame for frame in seen if frame.vlan is None]
        tagged_frames = [frame for frame in seen if frame.vlan is not None]
        assert native_frames, "native VLAN traffic should cross the trunk untagged"
        assert {frame.vlan.vid for frame in tagged_frames} == {20}

    def test_isolation_holds_with_a_native_vlan(self):
        run = self._native_run(seed=22)
        near, wrong = run.host("h1v10n1"), run.host("h2v20n1")
        near.stack.add_static_arp(wrong.ip, wrong.mac)
        result = PingRunner(
            run.sim, near, wrong.ip, payload_size=64, count=2, interval=0.1
        ).run(start_time=run.ready_time)
        assert result.sent == 2
        assert result.received == 0
        assert run.host("h2v20n1").nic.frames_received == 0

    def test_tagged_native_frames_are_dropped_and_counted(self):
        run = self._native_run(seed=23)
        run.warm_up()
        app = run.device("switch1").func.lookup("switchlet.vlan-bridge")
        rogue = NetworkInterface(run.sim, "rogue", MacAddress.from_string("02:aa:00:00:00:06"))
        rogue.attach(run.segment("trunk"))
        rogue.send(
            EthernetFrame(
                destination=BROADCAST,
                source=rogue.mac,
                ethertype=int(EtherType.MEASUREMENT),
                payload=b"tagged-native",
                vlan=VlanTag(vid=10),
            )
        )
        run.run_until(run.sim.now + 0.5)
        stats = app.stats()
        assert stats["dropped_tagged_on_native"] == 1
        # The mismatch frame never reached either VLAN's access segments.
        assert _segment_rx(run, "sw1-v10") == 0
        assert _segment_rx(run, "sw1-v20") == 0

    def test_untagged_trunk_frames_without_native_still_drop(self):
        run = run_scenario("vlan/trunk", seed=24)
        run.warm_up()
        app = run.device("switch1").func.lookup("switchlet.vlan-bridge")
        rogue = NetworkInterface(run.sim, "rogue", MacAddress.from_string("02:aa:00:00:00:07"))
        rogue.attach(run.segment("trunk"))
        rogue.send(
            EthernetFrame(
                destination=BROADCAST,
                source=rogue.mac,
                ethertype=int(EtherType.MEASUREMENT),
                payload=b"untagged",
            )
        )
        run.run_until(run.sim.now + 0.5)
        stats = app.stats()
        assert stats["dropped_untagged_on_trunk"] == 1
        assert stats["dropped_tagged_on_native"] == 0

    def test_native_trunk_scenario_is_shard_deterministic(self):
        single = self._native_run(seed=25)
        single.warm_up()
        sharded = run_scenario(
            "vlan/trunk", seed=25, params={"native_vlan": 10}, shards=3
        )
        sharded.warm_up()
        assert list(single.sim.trace) == list(sharded.sim.trace)
