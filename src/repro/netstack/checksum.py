"""The Internet checksum (RFC 1071).

Used by the minimal IP, UDP and ICMP implementations.  The algorithm is the
classic ones'-complement sum of 16-bit words with end-around carry.

The sum is computed without a per-word Python loop: concatenating big-endian
16-bit words is positional base-65536 notation, and since 65536 ≡ 1
(mod 65535) the ones'-complement sum of the words is the whole integer
reduced mod 65535 — so one C-speed ``int.from_bytes`` plus one modulo
replaces the word loop.  The single ambiguous residue (0 versus 0xFFFF, which
are the same value in ones'-complement) is resolved exactly as the
fold-as-you-go loop does: an all-zero input sums to 0, any other input whose
sum is a multiple of 65535 folds to 0xFFFF.
"""

from __future__ import annotations


def _ones_complement_sum(data: bytes) -> int:
    """The RFC 1071 ones'-complement sum of ``data`` as 16-bit words.

    Odd-length input is padded with a trailing zero byte, per RFC 1071.
    """
    if len(data) % 2:
        data = data + b"\x00"
    value = int.from_bytes(data, "big")
    total = value % 0xFFFF
    if total == 0 and value != 0:
        total = 0xFFFF
    return total


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit Internet checksum of ``data``.

    Returns:
        The checksum as an unsigned 16-bit integer.  A packet whose checksum
        field is included in ``data`` sums to zero when intact.
    """
    return (~_ones_complement_sum(data)) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """Return True if ``data`` (which includes its checksum field) verifies."""
    return _ones_complement_sum(data) == 0xFFFF
