"""Seeded host-fleet factories: stamping typed stations onto segment graphs.

:class:`HostFactory` generates the two population shapes the catalog
registers (:mod:`repro.population.catalog`):

* **office** — per-floor access segments joined to one shared backbone by
  a learning bridge per floor; every floor holds one application server
  and a fleet of workstations (with a seeded sprinkling of extra
  servers), while the backbone carries the shared core: a gateway and
  the databases.
* **datacenter** — per-rack access segments joined to a spine; racks are
  server-heavy with a rack-local database and a few load-generator
  seats, the spine carries shared databases and the gateway.

Both shapes are loop-free stars, so bridges run the dumb+learning stack
with no spanning tree and populations are forwarding after
``BASIC_WARMUP``.  All randomness (role sprinkling) comes from one
``random.Random`` seeded from the factory seed and the shape, so a seed
pins the entire fleet — the determinism contract the scenario tests
assert across every engine mode.

Per-segment propagation delays are staggered by one nanosecond per
access segment (the ``ring/failover`` precedent): with thousands of
quantized traffic timers landing on shared tick boundaries, unequal
cable lengths keep same-instant cross-shard wire arrivals out of the
canonical-merge tie space — and are also simply the physical truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.lan.segment import DEFAULT_BANDWIDTH_BPS, DEFAULT_PROPAGATION_DELAY
from repro.scenario.spec import (
    DeviceSpec,
    HostSpec,
    PortSpec,
    SegmentSpec,
    SwitchletSpec,
)

#: Fraction of office floor seats promoted from workstation to an extra
#: application server by the seeded role stream.
OFFICE_EXTRA_SERVER_RATE = 0.04

#: Fraction of datacenter rack slots that are load-generator seats rather
#: than servers (each rack also always gets one rack-local database).
DATACENTER_SEAT_RATE = 0.3

_BRIDGE_STACK = (
    SwitchletSpec("dumb-bridge"),
    SwitchletSpec("learning-bridge"),
)


@dataclass(frozen=True)
class StationPlan:
    """One planned station: a typed host bound to its access segment."""

    name: str
    role: str
    segment: str


@dataclass(frozen=True)
class PopulationPlan:
    """A generated fleet: segments, typed stations and the joining bridges."""

    label: str
    core_segment: str
    segments: Tuple[SegmentSpec, ...]
    stations: Tuple[StationPlan, ...]
    devices: Tuple[DeviceSpec, ...]

    @property
    def hosts(self) -> Tuple[HostSpec, ...]:
        """The stations as compiler-ready :class:`HostSpec` entries."""
        return tuple(
            HostSpec(station.name, station.segment) for station in self.stations
        )

    def role_counts(self) -> Dict[str, int]:
        """Station tally per role name (diagnostics and tests)."""
        counts: Dict[str, int] = {}
        for station in self.stations:
            counts[station.role] = counts.get(station.role, 0) + 1
        return counts


class HostFactory:
    """Stamps seeded station fleets onto generated segment graphs."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def _rng(self, shape: str) -> random.Random:
        # String seeding hashes the bytes (seed version 2), so the stream is
        # stable across processes regardless of PYTHONHASHSEED.
        return random.Random(f"population:{shape}:{self.seed}")

    def office(
        self,
        floors: int = 4,
        hosts_per_floor: int = 24,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    ) -> PopulationPlan:
        """An office building: floor LANs star-joined to a shared backbone."""
        if floors < 1:
            raise ValueError("an office needs at least one floor")
        if hosts_per_floor < 2:
            raise ValueError("each floor needs a server and at least one seat")
        rng = self._rng("office")
        segments = [
            SegmentSpec(
                "backbone",
                bandwidth_bps=bandwidth_bps,
                propagation_delay=DEFAULT_PROPAGATION_DELAY,
            )
        ]
        stations = [
            StationPlan("gw-core", "gateway", "backbone"),
            StationPlan("db-core1", "database", "backbone"),
            StationPlan("db-core2", "database", "backbone"),
        ]
        devices = []
        for floor in range(floors):
            segment = f"floor{floor}"
            segments.append(
                SegmentSpec(
                    segment,
                    bandwidth_bps=bandwidth_bps,
                    propagation_delay=(
                        DEFAULT_PROPAGATION_DELAY + (floor + 1) * 1e-9
                    ),
                )
            )
            devices.append(
                DeviceSpec(
                    f"br-floor{floor}",
                    kind="active-node",
                    ports=(
                        PortSpec("eth0", segment),
                        PortSpec("eth1", "backbone"),
                    ),
                    switchlets=_BRIDGE_STACK,
                )
            )
            stations.append(StationPlan(f"srv-f{floor}", "server", segment))
            for seat in range(1, hosts_per_floor):
                if rng.random() < OFFICE_EXTRA_SERVER_RATE:
                    stations.append(
                        StationPlan(f"srv-f{floor}n{seat}", "server", segment)
                    )
                else:
                    stations.append(
                        StationPlan(f"ws-f{floor}n{seat}", "workstation", segment)
                    )
        return PopulationPlan(
            label="office",
            core_segment="backbone",
            segments=tuple(segments),
            stations=tuple(stations),
            devices=tuple(devices),
        )

    def datacenter(
        self,
        racks: int = 4,
        hosts_per_rack: int = 24,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    ) -> PopulationPlan:
        """A datacenter row: rack LANs star-joined to a spine."""
        if racks < 1:
            raise ValueError("a datacenter needs at least one rack")
        if hosts_per_rack < 3:
            raise ValueError(
                "each rack needs a database, a server and a load-generator seat"
            )
        rng = self._rng("datacenter")
        segments = [
            SegmentSpec(
                "spine",
                bandwidth_bps=bandwidth_bps,
                propagation_delay=DEFAULT_PROPAGATION_DELAY,
            )
        ]
        stations = [
            StationPlan("gw-spine", "gateway", "spine"),
            StationPlan("db-spine1", "database", "spine"),
            StationPlan("db-spine2", "database", "spine"),
        ]
        devices = []
        for rack in range(racks):
            segment = f"rack{rack}"
            segments.append(
                SegmentSpec(
                    segment,
                    bandwidth_bps=bandwidth_bps,
                    propagation_delay=(
                        DEFAULT_PROPAGATION_DELAY + (rack + 1) * 1e-9
                    ),
                )
            )
            devices.append(
                DeviceSpec(
                    f"br-rack{rack}",
                    kind="active-node",
                    ports=(
                        PortSpec("eth0", segment),
                        PortSpec("eth1", "spine"),
                    ),
                    switchlets=_BRIDGE_STACK,
                )
            )
            stations.append(StationPlan(f"db-r{rack}", "database", segment))
            stations.append(StationPlan(f"srv-r{rack}", "server", segment))
            for slot in range(2, hosts_per_rack):
                if rng.random() < DATACENTER_SEAT_RATE:
                    stations.append(
                        StationPlan(f"ws-r{rack}n{slot}", "workstation", segment)
                    )
                else:
                    stations.append(
                        StationPlan(f"srv-r{rack}n{slot}", "server", segment)
                    )
        return PopulationPlan(
            label="datacenter",
            core_segment="spine",
            segments=tuple(segments),
            stations=tuple(stations),
            devices=tuple(devices),
        )


__all__ = [
    "DATACENTER_SEAT_RATE",
    "HostFactory",
    "OFFICE_EXTRA_SERVER_RATE",
    "PopulationPlan",
    "StationPlan",
]
