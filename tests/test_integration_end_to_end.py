"""End-to-end integration tests spanning the whole stack.

These are the "shape" properties of the paper's evaluation, asserted at test
scale: ordering of the three configurations, the value of learning, and the
determinism of whole experiments.
"""

from __future__ import annotations

from repro.measurement.ping import PingRunner
from repro.measurement.setups import (
    build_bridged_pair,
    build_direct_pair,
    build_repeater_pair,
)
from repro.measurement.ttcp import TtcpSession


def _mean_rtt(setup, size=512, count=5):
    runner = PingRunner(
        setup.network.sim, setup.left, setup.right.ip, size, count=count, interval=0.05
    )
    return runner.run(start_time=setup.ready_time).mean_rtt_ms()


class TestFigureShapes:
    def test_latency_ordering_direct_repeater_bridge(self):
        direct = _mean_rtt(build_direct_pair(seed=31))
        repeater = _mean_rtt(build_repeater_pair(seed=31))
        bridged = _mean_rtt(build_bridged_pair(seed=31, include_spanning_tree=False))
        assert direct < repeater < bridged

    def test_throughput_ordering_direct_repeater_bridge(self):
        results = {}
        for label, builder in (
            ("direct", build_direct_pair),
            ("repeater", build_repeater_pair),
            ("bridge", lambda seed: build_bridged_pair(seed=seed, include_spanning_tree=False)),
        ):
            setup = builder(seed=32)
            session = TtcpSession(
                setup.network.sim, setup.left, setup.right, buffer_size=4096, total_bytes=120_000
            )
            results[label] = session.run(start_time=setup.ready_time).throughput_mbps
        assert results["direct"] > results["repeater"] > results["bridge"]

    def test_full_bridge_forwards_after_spanning_tree_warmup(self):
        setup = build_bridged_pair(seed=33)
        runner = PingRunner(
            setup.network.sim, setup.left, setup.right.ip, 256, count=4, interval=0.1
        )
        result = runner.run(start_time=setup.ready_time)
        assert result.received == result.sent


class TestLearningValue:
    def test_learning_reduces_cross_lan_traffic(self):
        # With only the dumb bridge, local traffic on lan2 is copied onto
        # lan1; with learning it is filtered once the bridge knows better.
        flooded_counts = {}
        for label, include_learning in (("dumb", False), ("learning", True)):
            setup = build_bridged_pair(
                seed=34, include_spanning_tree=False, include_learning=include_learning
            )
            sim = setup.network.sim
            # Teach the bridge about both hosts (a ping exchange), then send
            # lan2-local traffic and count what leaks onto lan1.
            PingRunner(sim, setup.left, setup.right.ip, 64, count=2, interval=0.05).run(
                start_time=setup.ready_time
            )
            lan1 = setup.network.segment("lan1")
            carried_before = lan1.frames_carried
            from repro.ethernet.frame import EthernetFrame
            from repro.ethernet.mac import MacAddress

            for sequence in range(5):
                frame = EthernetFrame(
                    destination=setup.right.mac,  # learned to be on lan2
                    source=MacAddress.locally_administered(900 + sequence),
                    ethertype=0x88B6,
                    payload=b"local-only",
                )
                setup.right.send_raw_frame(frame)
            sim.run_until(sim.now + 1.0)
            flooded_counts[label] = lan1.frames_carried - carried_before
        assert flooded_counts["learning"] < flooded_counts["dumb"]


class TestDeterminism:
    def test_identical_seeds_give_identical_experiments(self):
        def run_once():
            setup = build_bridged_pair(seed=35, include_spanning_tree=False)
            session = TtcpSession(
                setup.network.sim, setup.left, setup.right, buffer_size=2048, total_bytes=60_000
            )
            result = session.run(start_time=setup.ready_time)
            return (
                result.throughput_mbps,
                result.segments_received,
                setup.network.sim.events_dispatched,
                len(setup.network.sim.trace),
            )

        assert run_once() == run_once()
