"""Telemetry: determinism, overhead, post-mortems and run reports.

The two contracts under test:

* **Determinism** — enabling telemetry changes no simulation outcome.
  Catalog-wide, every non-tie-prone scenario runs telemetry-on versus
  telemetry-off in every engine mode (single, strict, relaxed, process)
  and the traces must match: bit-identical for single/strict, canonical-
  merge-identical for relaxed/process.  Metric snapshots themselves are
  also deterministic: two identical runs produce identical registries.
* **Overhead** — the default-off path is the pre-telemetry code path.
  The proof is structural, not statistical: executors read the wall clock
  only through ``repro.telemetry.spans.perf_counter``, so patching that
  binding to raise and driving every mode telemetry-off proves the off
  path performs no telemetry work at all.  (CI's perf gate holds the
  measured off-path rates to the committed baseline on top of this.)

Plus the supporting machinery: registry merge semantics, contiguous phase
attribution, the bounded flight recorder and its ``FabricBackendError``
post-mortem tail, worker metric shipping, and the RunReport document and
its renderers.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.exceptions import FabricBackendError
from repro.measurement.analysis import fixed_histogram, latency_summary
from repro.measurement.ping import PingRunner
from repro.measurement.stats import mean, percentile
from repro.scenario import run_scenario
from repro.scenario.registry import list_scenarios
from repro.sim import procpool
from repro.sim.fabric import ShardedSimulator
from repro.telemetry import (
    METRIC_FAMILIES,
    PHASES,
    FlightRecorder,
    Histogram,
    MetricsRegistry,
    PhaseTimer,
    SpanProfiler,
)
from repro.telemetry import spans

REPO_ROOT = Path(__file__).resolve().parent.parent

NEEDS_FORK = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="process backend requires fork()"
)

CATALOG = sorted(
    entry.name for entry in list_scenarios() if not entry.tie_prone
)

#: Engine configurations the determinism contract covers.
MODES = {
    "single": {"shards": 1},
    "strict": {"shards": 2, "sync": "strict"},
    "relaxed": {"shards": 2, "sync": "relaxed"},
    "process": {"shards": 2, "sync": "relaxed", "backend": "process"},
}


def _drive(name, shards=1, sync="strict", backend="thread", telemetry=False):
    """The fixed workload (mirrors test_procpool): warm up, ping, settle."""
    params = {"n_bridges": 2} if name in ("ring", "chain") else None
    run = run_scenario(
        name, params=params, shards=shards, sync=sync, backend=backend,
        telemetry=telemetry,
    )
    run.warm_up()
    hosts = run.hosts
    if len(hosts) >= 2:
        count, interval = 2, 0.05
        runner = PingRunner(
            run.sim, hosts[0], hosts[1].ip, payload_size=96,
            count=count, interval=interval,
        )
        start = run.sim.now
        runner.start(start)
        run.sim.run_until(start + count * interval + 2.0)
    return run


def _canonical(run):
    trace = run.sim.trace
    if hasattr(trace, "canonical_records"):
        return trace.canonical_records()
    return list(trace)


def _observables(run):
    return (dict(run.sim.trace.counters.by_category_source), run.sim.now)


# ---------------------------------------------------------------------------
# The headline: telemetry is outcome-invisible, catalog-wide
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode", sorted(MODES))
@pytest.mark.parametrize("name", CATALOG)
def test_catalog_telemetry_on_is_identical_to_off(name, mode):
    if mode == "process" and not hasattr(os, "fork"):
        pytest.skip("process backend requires fork()")
    kwargs = MODES[mode]
    off = _drive(name, **kwargs)
    on = _drive(name, telemetry=True, **kwargs)
    assert on.sim._telemetry is not None
    if mode in ("single", "strict"):
        # Strict modes promise bit-identical emission order, so the raw
        # stream must match, not just the canonical merge.
        assert list(on.sim.trace) == list(off.sim.trace), (name, mode)
    assert _canonical(on) == _canonical(off), (name, mode)
    assert _observables(on) == _observables(off), (name, mode)


def test_metric_snapshots_are_run_deterministic():
    first = _drive("chain", shards=2, sync="relaxed", telemetry=True)
    second = _drive("chain", shards=2, sync="relaxed", telemetry=True)
    snapshot = first.sim._telemetry.registry.snapshot()
    assert snapshot == second.sim._telemetry.registry.snapshot()
    assert snapshot["counters"]["fabric_windows_total"] > 0
    assert snapshot["counters"]["engine_events_dispatched"] > 0


@NEEDS_FORK
def test_process_metric_snapshots_are_run_deterministic():
    runs = []
    for _ in range(2):
        run = _drive(
            "chain", shards=2, sync="relaxed", backend="process",
            telemetry=True,
        )
        run.sim._proc_fetch()  # absorb worker blobs into the registry
        runs.append(run.sim._telemetry.registry.snapshot())
    assert runs[0] == runs[1]


# ---------------------------------------------------------------------------
# Overhead: the default-off path is the pre-telemetry path
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode", sorted(MODES))
def test_metrics_off_path_never_reads_the_wall_clock(mode, monkeypatch):
    """Telemetry-off runs must not execute a single telemetry clock read.

    Every executor imports ``perf_counter`` through the spans module on
    telemetry-guarded paths only; with the binding replaced by a tripwire,
    a full warm-up + ping drive in each mode proves the off path carries
    zero added instrumentation.  (The process backend's always-on flight
    recorder deliberately binds ``time.perf_counter`` directly — it is a
    crash post-mortem aid, not part of the default-off contract.)
    """
    if mode == "process" and not hasattr(os, "fork"):
        pytest.skip("process backend requires fork()")

    def tripwire():
        raise AssertionError("telemetry-off path called spans.perf_counter")

    monkeypatch.setattr(spans, "perf_counter", tripwire)
    run = _drive("ring", **MODES[mode])
    assert run.sim._telemetry is None
    assert run.sim.events_dispatched > 0


# ---------------------------------------------------------------------------
# Registry semantics
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_labels_are_sorted_into_stable_keys(self):
        registry = MetricsRegistry()
        registry.counter("frames", segment="seg0", shard="1").inc(3)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {
            'frames{segment="seg0",shard="1"}': 3
        }

    def test_counter_and_gauge_are_cached_per_key(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        gauge = registry.gauge("depth")
        gauge.set_max(7)
        gauge.set_max(3)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["hits"] == 5
        assert snapshot["gauges"]["depth"] == 7

    def test_histogram_buckets_and_overflow(self):
        histogram = Histogram((1, 5, 10))
        for value in (0, 1, 2, 7, 50):
            histogram.observe(value)
        data = histogram.as_dict()
        assert data["counts"] == [2, 1, 1, 1]
        assert data["count"] == 5
        assert data["sum"] == 60.0

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram((5, 1))

    def test_merge_adds_counters_and_buckets_keeps_gauge_max(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("events", shard="0").inc(10)
        right.counter("events", shard="0").inc(5)
        left.gauge("high").set_max(3)
        right.gauge("high").set_max(9)
        left.histogram("win", bounds=(1, 2)).observe(1)
        right.histogram("win", bounds=(1, 2)).observe(2)
        left.merge_snapshot(right.snapshot())
        snapshot = left.snapshot()
        assert snapshot["counters"]['events{shard="0"}'] == 15
        assert snapshot["gauges"]["high"] == 9
        assert snapshot["histograms"]["win"]["counts"] == [1, 1, 0]
        assert snapshot["histograms"]["win"]["count"] == 2

    def test_merge_rejects_mismatched_histogram_bounds(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.histogram("win", bounds=(1, 2)).observe(1)
        right.histogram("win", bounds=(1, 3)).observe(1)
        with pytest.raises(ValueError):
            left.merge_snapshot(right.snapshot())

    def test_snapshot_keys_are_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter("alpha").inc()
        assert list(registry.snapshot()["counters"]) == ["alpha", "zeta"]


# ---------------------------------------------------------------------------
# Spans: contiguous phase attribution
# ---------------------------------------------------------------------------


class TestPhaseTimer:
    def test_laps_cover_the_total_with_no_gaps(self):
        profiler = SpanProfiler()
        timer = PhaseTimer()
        timer.lap("plan")
        sum(range(1000))  # some work
        timer.lap("compute")
        timer.lap("barrier")
        timer.finish(profiler)
        breakdown = profiler.breakdown()
        assert breakdown["attributed_s"] == pytest.approx(
            breakdown["total_s"], abs=1e-9
        )
        assert all(breakdown[f"{phase}_s"] >= 0.0 for phase in PHASES)

    def test_shift_preserves_the_attribution_sum(self):
        profiler = SpanProfiler()
        timer = PhaseTimer()
        sum(range(1000))
        elapsed = timer.lap("pipe")
        timer.shift("pipe", "compute", elapsed / 2)
        timer.finish(profiler)
        breakdown = profiler.breakdown()
        assert breakdown["attributed_s"] == pytest.approx(
            breakdown["total_s"], abs=1e-9
        )
        assert breakdown["compute_s"] == pytest.approx(elapsed / 2)

    def test_breakdown_ignores_non_phase_buckets(self):
        profiler = SpanProfiler()
        profiler.add("compute", 1.0)
        profiler.add("worker_compute", 5.0)  # informational, not a phase
        profiler.add_total(1.0)
        breakdown = profiler.breakdown()
        assert breakdown["attributed_s"] == 1.0
        assert breakdown["total_s"] == 1.0


def test_live_relaxed_breakdown_sums_to_dispatch_total():
    run = _drive("ring", shards=4, sync="relaxed", telemetry=True)
    breakdown = run.sim._telemetry.profiler.breakdown()
    assert breakdown["windows"] > 0
    assert breakdown["attributed_s"] == pytest.approx(
        breakdown["total_s"], rel=0.05
    )


# ---------------------------------------------------------------------------
# Flight recorder and the crash post-mortem
# ---------------------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_is_bounded_and_keeps_the_newest(self):
        recorder = FlightRecorder(2, limit=3)
        for index in range(5):
            recorder.record(1, "win", (index, index + 10), 0.001)
        tail = recorder.tail(1)
        assert len(tail) == 3
        assert tail[-1]["window"] == (4, 14)
        assert recorder.tail(0) == []
        assert recorder.tail() == [(1, tail)]

    def test_format_tail_renders_windows_and_walls(self):
        recorder = FlightRecorder(1, limit=4)
        recorder.record(0, "win", (100, 200), 0.0015)
        recorder.record(0, "ctrl", None, 0.0005)
        text = FlightRecorder.format_tail(recorder.tail(0))
        assert "win" in text and "[100, 200]" in text
        assert "ctrl" in text and "wall=0.500ms" in text
        assert FlightRecorder.format_tail([]) == "  (no recorded spans)"


@NEEDS_FORK
def test_worker_kill_postmortem_carries_the_flight_tail():
    fabric = ShardedSimulator(
        shards=2, sync="relaxed", backend="process", lookahead_ns=1000
    )

    def boom():
        if procpool.worker_index() == 1:
            os.kill(os.getpid(), signal.SIGKILL)

    # A few quiet windows first, so the recorder has rounds to show.
    for when in (0.001, 0.002, 0.003):
        fabric.shards[0].schedule(when, lambda: None)
        fabric.shards[1].schedule(when, lambda: None)
    fabric.shards[1].schedule(0.004, boom)
    with pytest.raises(FabricBackendError) as err:
        fabric.run_until(0.01)
    assert err.value.shard_index == 1
    assert err.value.flight, "post-mortem carried no flight tail"
    for entry in err.value.flight:
        assert set(entry) == {"kind", "window", "wall_s"}
        assert entry["wall_s"] >= 0.0
    assert "recent shard 1 spans (oldest first):" in str(err.value)


# ---------------------------------------------------------------------------
# Worker metric shipping (process backend)
# ---------------------------------------------------------------------------


@NEEDS_FORK
def test_process_workers_ship_shard_labelled_metrics():
    run = _drive(
        "chain", shards=2, sync="relaxed", backend="process", telemetry=True
    )
    report = run.report()
    counters = report.metrics["counters"]
    assert counters['engine_events_dispatched{shard="0"}'] > 0
    assert counters['engine_events_dispatched{shard="1"}'] > 0
    assert counters["proc_planner_rounds_total"] > 0
    assert counters["proc_pipe_messages_total"] > 0
    assert counters["proc_envelope_bytes_total"] > 0
    # Segment statistics come from the workers, not the parent's stale
    # replicas, and cover the whole topology.
    assert report.segments
    assert any(
        stats["frames_carried"] > 0 for stats in report.segments.values()
    )
    assert report.engine["backend"] == "process"


# ---------------------------------------------------------------------------
# Analysis helpers
# ---------------------------------------------------------------------------


class TestAnalysis:
    def test_latency_summary_matches_the_shared_estimator(self):
        samples = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0]
        summary = latency_summary(samples)
        assert summary["count"] == 6
        assert summary["min"] == 1.0
        assert summary["max"] == 9.0
        assert summary["mean"] == pytest.approx(mean(samples))
        for key, fraction in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
            assert summary[key] == pytest.approx(
                percentile(samples, fraction)
            )

    def test_latency_summary_of_nothing_is_zeros(self):
        summary = latency_summary([])
        assert summary == {
            "count": 0, "min": 0.0, "max": 0.0, "mean": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_fixed_histogram_matches_registry_histogram_layout(self):
        samples = [0.5, 1.0, 4.0, 20.0]
        bounds = (1, 5, 10)
        summary = fixed_histogram(samples, bounds)
        histogram = Histogram(bounds)
        for value in samples:
            histogram.observe(value)
        assert summary == histogram.as_dict()

    def test_fixed_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            fixed_histogram([1.0], (5, 1))


# ---------------------------------------------------------------------------
# Run reports
# ---------------------------------------------------------------------------


def _report_run():
    run = run_scenario(
        "chain", params={"n_bridges": 2}, shards=2, sync="relaxed",
        telemetry=True,
    )
    run.warm_up()
    hosts = run.hosts
    runner = PingRunner(
        run.sim, hosts[0], hosts[1].ip, payload_size=96, count=3,
        interval=0.05,
    )
    start = run.sim.now
    runner.start(start)
    run.sim.run_until(start + 3 * 0.05 + 2.0)
    rtts = [int(rtt * 1e9) for rtt in runner.result.rtts]
    return run, run.report(latency_ns=rtts)


class TestRunReport:
    def test_document_shape_and_json_round_trip(self):
        run, report = _report_run()
        assert report.scenario == run.spec.name
        assert report.telemetry_enabled
        assert report.engine == {
            "mode": "relaxed", "shards": 2, "sync": "relaxed",
            "backend": "thread",
        }
        assert report.events["dispatched"] == run.sim.events_dispatched
        assert report.events["queue_high_water"] >= 1
        assert report.metrics["counters"]["fabric_windows_total"] > 0
        assert set(report.latency_ns) == {
            "count", "min", "max", "mean", "p50", "p95", "p99",
        }
        assert report.wall["attributed_s"] == pytest.approx(
            report.wall["total_s"], rel=0.05
        )
        decoded = json.loads(report.to_json())
        assert decoded["scenario"] == report.scenario
        assert decoded["segments"] == report.segments

    def test_prometheus_exposition_format(self):
        _, report = _report_run()
        text = report.to_prometheus()
        assert "# TYPE fabric_windows_total counter" in text
        assert "# HELP fabric_windows_total" in text
        assert 'window_events_bucket{le="+Inf"}' in text
        assert "window_events_sum" in text
        # Every emitted family is a documented one.
        for line in text.splitlines():
            if line.startswith("#"):
                family = line.split()[2]
                base = family
                for suffix in ("_bucket", "_sum", "_count"):
                    if base.endswith(suffix):
                        base = base[: -len(suffix)]
                assert base in METRIC_FAMILIES, line

    def test_report_tool_renders_table_and_prometheus(self, tmp_path):
        _, report = _report_run()
        path = tmp_path / "run.json"
        path.write_text(report.to_json())
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        table = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "report.py"),
             str(path)],
            capture_output=True, text=True, env=env, check=True,
        ).stdout
        assert "wall breakdown" in table
        assert "segments" in table
        assert "latency (rtt)" in table
        prom = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "report.py"),
             str(path), "--prometheus"],
            capture_output=True, text=True, env=env, check=True,
        ).stdout
        assert "# TYPE fabric_windows_total counter" in prom
