"""Population layer: typed fleets, synthetic traffic and the pooled hot path.

Identity under test: the seeded population scenarios produce the same
canonical event history on every engine mode — single engine, strict
shards, relaxed thread windows and the process backend — and repeated
runs of the same seed are stable.  Record lists are compared under a
mode-independent canonical order (stable sort by ``(time, source)``):
each source's records are emitted sequentially on one engine, so their
per-source order is preserved by every mode, while the tie order
*between* different sources at one timestamp is a mode-dependent
artifact (single-engine execution order vs the fabric's
``(time, shard, source, seq)`` merge) that carries no semantics.
"""

from __future__ import annotations

import os

import pytest

from repro.ethernet.ethertype import EtherType
from repro.ethernet.mac import MacAddress
from repro.ethernet.pool import FILLER_BYTE, FramePool
from repro.population import (
    SERVICES,
    STATION_ROLES,
    TRAFFIC_DEFAULTS,
    TRAFFIC_KINDS,
    HostFactory,
    install_traffic,
    role_of,
)
from repro.scenario import run_scenario
from repro.sim.engine import Simulator
from repro.sim.shard import ShardQueue
from repro.sim.wheel import TimerWheel

SMALL_OFFICE = {"floors": 2, "hosts_per_floor": 6, "duration": 0.3}
SMALL_DATACENTER = {"racks": 2, "hosts_per_rack": 6, "duration": 0.3}


def _drive(name, params, **kw):
    run = run_scenario(name, params=params, **kw)
    traffic = install_traffic(run)
    run.warm_up()
    run.sim.run_until(traffic.horizon)
    return run, traffic


def _canonical(run):
    """Mode-independent canonical history (see module docstring)."""
    trace = run.sim.trace
    if hasattr(trace, "canonical_records"):
        records = trace.canonical_records()
    else:
        records = list(trace)
    return sorted(records, key=lambda record: (record.time, record.source))


def _observables(run, traffic):
    return (
        _canonical(run),
        dict(run.sim.trace.counters.by_category_source),
        run.sim.now,
        traffic.service_rtts(),
    )


class TestRolesAndFactory:
    def test_role_decoding(self):
        assert role_of("ws-f3n7").name == "workstation"
        assert role_of("srv-f0").name == "server"
        assert role_of("db-core1").name == "database"
        assert role_of("gw-spine").name == "gateway"
        assert role_of("host1") is None
        assert role_of("probe") is None

    def test_roles_declare_known_services(self):
        for role in STATION_ROLES.values():
            for key in role.serves + role.consumes:
                assert key in SERVICES

    def test_factory_is_seed_deterministic(self):
        a = HostFactory(7).office(floors=3, hosts_per_floor=10)
        b = HostFactory(7).office(floors=3, hosts_per_floor=10)
        assert a == b
        c = HostFactory(8).office(floors=3, hosts_per_floor=10)
        assert a != c

    def test_office_shape(self):
        plan = HostFactory(0).office(floors=3, hosts_per_floor=10)
        counts = plan.role_counts()
        assert counts["gateway"] == 1
        assert counts["database"] == 2
        # One server per floor plus the seeded sprinkling.
        assert counts["server"] >= 3
        assert sum(counts.values()) == 3 * 10 + 3
        assert len(plan.devices) == 3
        assert plan.core_segment == "backbone"

    def test_datacenter_shape(self):
        plan = HostFactory(0).datacenter(racks=2, hosts_per_rack=8)
        counts = plan.role_counts()
        assert counts["gateway"] == 1
        # Spine databases plus one per rack.
        assert counts["database"] == 2 + 2
        assert sum(counts.values()) == 2 * 8 + 3
        assert plan.core_segment == "spine"

    def test_propagation_delays_are_staggered(self):
        plan = HostFactory(0).office(floors=4, hosts_per_floor=4)
        delays = {s.name: s.propagation_delay for s in plan.segments}
        assert len(set(delays.values())) == len(delays)


class TestTimerWheel:
    def test_quantizes_up_to_grid(self):
        sim = Simulator()
        wheel = TimerWheel(sim, tick_ns=1000)
        assert wheel.quantize_ns(0) == 0
        assert wheel.quantize_ns(1) == 1000
        assert wheel.quantize_ns(999) == 1000
        assert wheel.quantize_ns(1000) == 1000
        assert wheel.quantize_ns(1001) == 2000

    def test_same_tick_timers_share_a_bucket(self):
        sim = Simulator()
        wheel = TimerWheel(sim, tick_ns=1_000_000)
        fired = []
        for i in range(10):
            wheel.schedule(1e-6 * (i + 1), lambda i=i: fired.append(i))
        assert wheel.scheduled == 10
        assert wheel.quantized == 10
        sim.run_until(0.01)
        # All quantized onto one tick, fired in scheduling (FIFO) order.
        assert fired == list(range(10))

    def test_cancel_via_engine_event(self):
        sim = Simulator()
        wheel = TimerWheel(sim, tick_ns=1000)
        fired = []
        event = wheel.schedule(1e-6, lambda: fired.append("a"))
        wheel.schedule(2e-6, lambda: fired.append("b"))
        event.cancel()
        sim.run_until(0.01)
        assert fired == ["b"]

    def test_rejects_bad_arguments(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            TimerWheel(sim, tick_ns=0)
        wheel = TimerWheel(sim, tick_ns=1000)
        with pytest.raises(ValueError):
            wheel.schedule(-1.0, lambda: None)


class TestFramePool:
    def test_filler_buffers_are_shared(self):
        pool = FramePool()
        a = pool.filler(64)
        b = pool.filler(64)
        assert a is b
        assert a == bytes([FILLER_BYTE]) * 64
        assert pool.hits == 1 and pool.misses == 1

    def test_frames_are_shared_by_shape(self):
        pool = FramePool()
        dest = MacAddress.locally_administered(1)
        src = MacAddress.locally_administered(2)
        f1 = pool.frame(dest, src, EtherType.MEASUREMENT, 128)
        f2 = pool.frame(dest, src, EtherType.MEASUREMENT, 128)
        assert f1 is f2
        f3 = pool.frame(dest, src, EtherType.MEASUREMENT, 256)
        assert f3 is not f1
        stats = pool.statistics()
        assert stats["frames"] == 2
        assert stats["hits"] >= 1


class TestSlotsAndFreeList:
    def test_station_chain_has_no_instance_dict(self):
        run = run_scenario("population/office", params=SMALL_OFFICE)
        host = run.hosts[0]
        bridge = run.device("br-floor0")
        for obj in (host, host.nic, host.cpu, bridge, bridge.cpu):
            with pytest.raises(AttributeError):
                obj.this_attribute_does_not_exist = 1

    def test_shard_queue_recycles_drained_buckets(self):
        import itertools

        queue = ShardQueue(itertools.count())
        queue.push_fire(100, lambda: None)
        bucket_object = queue._buckets[100]
        queue.pop()
        assert queue.top_key() is None  # drains and recycles the bucket
        assert queue._free and queue._free[0] is bucket_object
        queue.push_fire(200, lambda: None)
        assert queue._buckets[200] is bucket_object  # reused, not reallocated
        assert not queue._free


class TestPopulationTraffic:
    def test_traffic_flows_and_rtts_recorded(self):
        run, traffic = _drive("population/office", SMALL_OFFICE)
        stats = traffic.traffic_statistics()
        assert stats["requests_sent"] > 0
        assert stats["responses_received"] > 0
        rtts = traffic.service_rtts()
        assert len(rtts) == stats["responses_received"]
        assert all(rtt > 0 for rtt in rtts)
        pool = traffic.pool_statistics()
        assert pool["hits"] > 0

    def test_unknown_traffic_axis_rejected(self):
        run = run_scenario("population/office", params=SMALL_OFFICE)
        with pytest.raises(ValueError):
            install_traffic(run, not_a_real_axis=1)

    def test_traffic_kinds_contract(self):
        assert set(TRAFFIC_KINDS) == {
            "request-response",
            "onoff-burst",
            "pareto-flow",
            "diurnal",
        }
        # Every kind's knobs are sweepable scenario axes.
        for knob in ("request_rate", "burst_rate", "flow_alpha", "diurnal_period"):
            assert knob in TRAFFIC_DEFAULTS

    def test_repeated_runs_are_stable(self):
        first = _observables(*_drive("population/office", SMALL_OFFICE))
        second = _observables(*_drive("population/office", SMALL_OFFICE))
        assert first == second

    def test_coalesced_multi_source_drain_fires(self):
        # Every workstation a burst source on a coarse shared tick: many
        # same-instant transmits per floor segment under relaxed windows.
        params = dict(
            SMALL_OFFICE,
            onoff_fraction=1.0,
            wheel_tick_ns=10_000_000,
            off_mean=0.05,
        )
        run, traffic = _drive(
            "population/office", params, shards=2, sync="relaxed"
        )
        coalesced = sum(
            run.segment(spec.name).frames_coalesced for spec in run.spec.segments
        )
        assert coalesced > 0


@pytest.mark.parametrize(
    "name,params",
    [("population/office", SMALL_OFFICE), ("population/datacenter", SMALL_DATACENTER)],
)
class TestEngineModeIdentity:
    def test_strict_and_relaxed_match_single(self, name, params):
        base = _observables(*_drive(name, params))
        assert base[3], "identity test needs completed exchanges"
        for kw in (
            dict(shards=2),
            dict(shards=4),
            dict(shards=2, sync="relaxed"),
            dict(shards=4, sync="relaxed"),
        ):
            candidate = _observables(*_drive(name, params, **kw))
            assert candidate == base, kw

    @pytest.mark.skipif(
        not hasattr(os, "fork"), reason="process backend needs fork()"
    )
    def test_process_backend_matches_single(self, name, params):
        base = _observables(*_drive(name, params))
        candidate = _observables(
            *_drive(name, params, shards=4, sync="relaxed", backend="process")
        )
        assert candidate == base
