"""The function-agility experiment of Section 7.5.

Rebuilds the paper's final test: a ring of three active bridges (each running
the DEC protocol, the idle IEEE protocol and the control switchlet) closed by
a two-NIC measurement end-node.  The probe injects an 802.1D BPDU on one card
and measures how long until (a) an 802.1D BPDU appears on the other card and
(b) its once-per-second prebuilt pings start flowing again.

Paper's answers: ~0.056 s and ~30.1 s.

Run with:  python examples/agility_ring.py
"""

from __future__ import annotations

from repro.measurement.agility import AgilityProbe
from repro.scenario import run_scenario


def main() -> None:
    print("building the ring: 3 active bridges, DEC running, IEEE loaded, control armed")
    ring = run_scenario("ring", seed=6, params={"n_bridges": 3}).as_ring()
    probe = AgilityProbe.for_ring(ring, ping_interval=1.0)

    print("letting the old protocol converge (forward-delay timers)...")
    result = probe.run(start_time=40.0, deadline=90.0)

    print("\nresults:")
    print(f"  start -> 802.1D BPDU seen on the far card : {result.start_to_ieee:.4f} s "
          "(paper: 0.056 s)")
    print(f"  start -> first ping makes it through      : {result.start_to_ping:.2f} s "
          "(paper: 30.1 s; dominated by the 2 x 15 s forward delay)")
    print(f"  pings sent while waiting                  : {probe.pings_sent}")

    print("\nper-bridge outcome:")
    for bridge in ring.bridges:
        control = bridge.func.lookup("switchlet.control")
        ieee = bridge.func.lookup("stp.ieee")
        print(f"  {bridge.name}: control={control.state}, new protocol running={ieee.running}, "
              f"port states={ieee.snapshot()['port_states']}")


if __name__ == "__main__":
    main()
