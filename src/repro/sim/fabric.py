"""The sharded event fabric: partitioned simulators under conservative sync.

A :class:`ShardedSimulator` coordinates several
:class:`~repro.sim.shard.EngineShard` scheduling cores.  Every component of a
scenario (segment, host, device) is *placed* on one shard and schedules onto
that shard's event ring; the only cross-shard coupling is frame handoff on a
LAN segment whose stations live on different shards (see
:meth:`~repro.lan.segment.Segment` — the inter-shard delivery channel).

**Synchronization model.**  Shards advance under a conservative protocol:
the coordinator repeatedly picks the shard holding the globally earliest
pending event and lets it run a *batch* — every event strictly below the
earliest pending key of any other shard (the batch limit).  Cross-shard
pushes made while a batch runs shrink the limit live, so no shard ever runs
past an event another shard must fire first.  This next-event bound is at
least as tight as the classic clock-plus-lookahead bound — the lookahead
derived from inter-shard :attr:`Segment.propagation_delay` (recorded as
:attr:`ShardedSimulator.lookahead_ns`) guarantees cross-shard handoffs land
strictly in the shard's future, which is what makes batches non-trivial and
the fabric deadlock-free.

**Determinism guarantee (strict mode).**  Shard queues share one
event-sequence counter and the coordinator dispatches in the exact global
``(time_ns, sequence)`` order, so a sharded run executes the very same
callback sequence as the single :class:`~repro.sim.engine.Simulator` — every
trace record, counter and component statistic is bit-identical.  Per-shard
trace streams carry a shared emission sequence (:attr:`TraceRecord.seq`);
:class:`FabricTrace` merges them back into single-engine emission order by
that key, deterministically.

**Relaxed mode (canonical-merge equivalence).**  With ``sync="relaxed"`` the
fabric instead advances shards concurrently through conservative lookahead
windows (see :mod:`repro.sim.relaxed` for the model and
:meth:`FabricTrace.canonical_records` for the merge): the global emission
order is given up, and correctness is redefined as *canonical-merge
equivalence* — per-shard streams merged by the canonical ``(time, shard_id,
source, shard_seq)`` key must be identical to the strict engine's, as must
all counters and component statistics.  Strict stays the default; relaxed is
the throughput mode for large fan-out topologies.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.exceptions import FabricBackendError, SimulationError
from repro.sim.clock import Clock, seconds_to_ns
from repro.sim.events import Event, validate_schedule_time
from repro.sim.random_source import RandomSource
from repro.sim.relaxed import BACKENDS, RelaxedExecutor, SYNC_MODES, active_shard
from repro.sim.shard import EngineShard, ShardQueue, ShardTraceRecorder
from repro.sim.trace import (
    CountingSink,
    TraceRecord,
    TraceSink,
    last_match,
    match_records,
)

#: "No bound" sentinel for drain-style dispatch (far beyond any event time).
_NO_BOUND_NS = 2 ** 63


class FabricTrace:
    """The fabric-wide trace view: shared counters, merged record streams.

    Quacks like a :class:`~repro.sim.trace.TraceRecorder` for every existing
    consumer: ``CounterWindow`` reads the live shared :attr:`counters`,
    analysis code iterates / filters the merged stream, and gating calls
    (``disable_category`` et al.) fan out to every shard recorder so hot-path
    producers keep their one-set-lookup ``wants()`` check.
    """

    def __init__(
        self,
        recorders: List[ShardTraceRecorder],
        counters: CountingSink,
        shared_sinks: List[TraceSink],
    ) -> None:
        self._recorders = recorders
        self._counters_sink = counters
        self._shared_sinks = shared_sinks
        self._enabled = True
        self._disabled_categories: set = set()
        # Canonical-merge view: set by the fabric when it runs relaxed, where
        # the global emission seq is no longer an execution order.
        self._canonical = False
        # Deferred-result hooks installed by a process-backed fabric: fetch
        # pulls pending worker record suffixes in before a query, discard
        # drops them (clear/reset).  ``None`` on every in-process fabric.
        self._pending_fetch: Optional[Callable[[], None]] = None
        self._pending_discard: Optional[Callable[[], None]] = None
        for recorder in recorders:
            recorder._sync_all = self.sync_counters

    @property
    def counters(self) -> CountingSink:
        """The live fabric-wide counters, synced with every shard stream.

        Shard recorders defer per-record counter bookkeeping off the emit hot
        path; any read through this property (or through a recorder's
        ``counters``) folds the outstanding records in first, so consumers
        such as ``CounterWindow`` always see exact totals.
        """
        self.sync_counters()
        return self._counters_sink

    def sync_counters(self) -> None:
        """Fold every shard's unsynced records into the shared pair table."""
        if self._pending_fetch is not None:
            self._pending_fetch()
        for recorder in self._recorders:
            recorder._sync_own_counters()

    # ------------------------------------------------------------------
    # Gating (fans out so producers on any shard see the same state)
    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether records are currently being captured."""
        return self._enabled

    def disable(self) -> None:
        """Stop capturing records on every shard."""
        self._enabled = False
        for recorder in self._recorders:
            recorder.disable()

    def enable(self) -> None:
        """Resume capturing records on every shard."""
        self._enabled = True
        for recorder in self._recorders:
            recorder.enable()

    def disable_category(self, category: str) -> None:
        """Suppress one category fabric-wide."""
        self._disabled_categories.add(category)
        for recorder in self._recorders:
            recorder.disable_category(category)

    def enable_category(self, category: str) -> None:
        """Re-enable a previously disabled category fabric-wide."""
        self._disabled_categories.discard(category)
        for recorder in self._recorders:
            recorder.enable_category(category)

    @property
    def disabled_categories(self) -> frozenset:
        """The categories currently gated off."""
        return frozenset(self._disabled_categories)

    def wants(self, category: str) -> bool:
        """Whether a record in ``category`` would currently be captured."""
        return self._enabled and category not in self._disabled_categories

    # ------------------------------------------------------------------
    # Recording and listeners
    # ------------------------------------------------------------------

    def emit(self, source, category, detail=None) -> Optional[TraceRecord]:
        """Emit a record into the fabric (routed via shard 0's recorder)."""
        return self._recorders[0].emit(source, category, detail)

    def record(self, source, category, **detail) -> Optional[TraceRecord]:
        """Back-compat eager form of :meth:`emit`."""
        return self.emit(source, category, detail if detail else None)

    def add_listener(self, listener: Callable[[TraceRecord], None]) -> None:
        """Register a callback invoked for every new record, fabric-wide."""
        for recorder in self._recorders:
            recorder.add_listener(listener)

    def remove_listener(self, listener: Callable[[TraceRecord], None]) -> None:
        """Unregister a listener."""
        for recorder in self._recorders:
            recorder.remove_listener(listener)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def merged_records(self) -> List[TraceRecord]:
        """Every retained record, in the fabric's defined merge order.

        Under strict sync the merge key is the shared emission ``seq``:
        per-shard streams are already seq-ascending, so this is a k-way merge
        and the result is bit-identical to the single engine's record list.
        When shared sinks are installed (e.g. one bounded ring buffer for all
        shards) the first queryable sink already holds the merged stream.
        Under relaxed sync the defined order is the canonical merge
        (:meth:`canonical_records`).
        """
        if self._canonical:
            return self.canonical_records()
        if self._pending_fetch is not None:
            self._pending_fetch()
        for sink in self._shared_sinks:
            if hasattr(sink, "filter"):
                return list(sink)  # type: ignore[arg-type]
        streams = [recorder.records_list() for recorder in self._recorders]
        live = [s for s in streams if s]
        if len(live) == 1:
            return list(live[0])
        return list(heapq.merge(*live, key=lambda record: record.seq))

    def canonical_records(self) -> List[TraceRecord]:
        """Every retained record, merged into the canonical order.

        The canonical merge key is ``(time, shard_id, source, shard_seq)``,
        where ``shard_seq`` is the record's position in its shard's stream —
        stable under both the strict shared counter and relaxed out-of-order
        windows.  Within one source the stream order is causal and fully
        preserved; *across* sources the key only orders records that differ
        in time or shard, because two same-instant records of independent
        sources carry no causal order (their state effects commute — which
        is precisely the freedom relaxed windows exploit), so the tie falls
        back to the source name rather than to an execution accident.

        This order is the relaxed mode's correctness contract: it is
        computable from any fabric run (strict or relaxed), and a relaxed
        run's canonical records are identical to the strict engine's —
        proven catalog-wide by the test suite.
        """
        if self._pending_fetch is not None:
            self._pending_fetch()
        decorated = []
        for recorder in self._recorders:
            index = recorder.shard_index
            decorated.extend(
                (record.time, index, record.source, position, record)
                for position, record in enumerate(recorder.records_list())
            )
        decorated.sort(key=lambda item: item[:4])
        return [item[4] for item in decorated]

    def __len__(self) -> int:
        """Total records captured (live, O(pairs))."""
        return self.counters.total

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.merged_records())

    def filter(self, category=None, source=None, since=None, until=None):
        """Records matching every provided criterion, in emission order."""
        return match_records(
            self.merged_records(), category=category, source=source,
            since=since, until=until,
        )

    def count(self, category=None, source=None) -> int:
        """Number of records captured matching the criteria (O(1), live)."""
        return self.counters.count(category=category, source=source)

    def last(self, category=None, source=None) -> Optional[TraceRecord]:
        """The most recent retained record matching the criteria, if any."""
        return last_match(self.merged_records(), category=category, source=source)

    def clear(self) -> None:
        """Drop all captured records and reset the live counters."""
        if self._pending_discard is not None:
            self._pending_discard()
        self._counters_sink.clear()
        for recorder in self._recorders:
            recorder.clear()
        for sink in self._shared_sinks:
            sink.clear()


class ShardedSimulator:
    """A deterministic discrete-event fabric of cooperating shard engines.

    Drop-in compatible with :class:`~repro.sim.engine.Simulator` for
    experiment drivers (``run_until`` / ``run`` / ``step``, ``now``,
    ``schedule*``, ``trace``), while components are constructed on individual
    shards via :meth:`sim_for`.

    Args:
        seed: seed for the fabric-wide :class:`RandomSource`.
        shards: number of shard engines.
        trace_sinks: optional sinks shared by every shard (e.g. one bounded
            :class:`~repro.sim.trace.RingBufferSink`); ``None`` keeps the
            default per-shard record buffers merged on query.
        placement: component name -> shard index used by :meth:`sim_for`
            (the scenario compiler passes the partitioner's assignment).
            Unknown names fall back to shard 0.
        lookahead_ns: minimum cross-shard handoff latency (derived by the
            partitioner from inter-shard segments' minimum-frame wire time
            plus propagation delay); recorded for introspection, validated
            positive by the partitioner, and the conservative window length
            in relaxed mode.
        sync: ``"strict"`` (default) dispatches in the exact global
            ``(time_ns, sequence)`` order — bit-identical to the single
            engine; ``"relaxed"`` advances shards concurrently through
            lookahead windows under the canonical-merge contract (see
            :mod:`repro.sim.relaxed`).
        workers: worker threads for relaxed windows (``0`` = run windows
            inline on the calling thread — the benchmarked pick on GIL
            builds).  Ignored under strict sync.
        backend: relaxed-window execution backend — ``"thread"`` (default)
            runs windows in-process; ``"process"`` forks one worker process
            per shard for wall-clock multi-core speedup (see
            :mod:`repro.sim.procpool`; one measured dispatch per run, then
            ``reset()``).  Ignored under strict sync.
    """

    SYNC_MODES = SYNC_MODES
    BACKENDS = BACKENDS

    #: Telemetry state (:class:`repro.telemetry.Telemetry`), or ``None`` when
    #: telemetry is off — mirrors :attr:`Simulator._telemetry`.
    _telemetry = None

    def __init__(
        self,
        seed: int = 0,
        shards: int = 2,
        trace_sinks: Optional[Iterable[TraceSink]] = None,
        placement: Optional[Mapping[str, int]] = None,
        lookahead_ns: Optional[int] = None,
        sync: str = "strict",
        workers: int = 0,
        backend: str = "thread",
    ) -> None:
        if shards < 1:
            raise SimulationError("a sharded simulator needs at least one shard")
        self.clock = Clock()
        self.random = RandomSource(seed)
        self._event_counter = itertools.count()
        self._emit_counter = itertools.count()
        counters_sink = CountingSink()
        shared_sinks = list(trace_sinks) if trace_sinks is not None else None
        recorders = [
            ShardTraceRecorder(
                self.clock, index, counters_sink, self._emit_counter, shared_sinks
            )
            for index in range(shards)
        ]
        self._shards: List[EngineShard] = [
            EngineShard(self, index, self.clock, self.random, self._event_counter, rec)
            for index, rec in enumerate(recorders)
        ]
        self.trace = FabricTrace(recorders, counters_sink, shared_sinks or [])
        self._placement: Dict[str, int] = dict(placement or {})
        self.lookahead_ns = lookahead_ns
        self._active: Optional[EngineShard] = None
        self._batch_limit: Optional[tuple] = None
        self._tops: List[Optional[tuple]] = [None] * shards
        self._running = False
        self._auto_station_ids: Dict[int, int] = {}
        self._sync = "strict"
        # The control ring: under relaxed sync, facade-scheduled work
        # (measurement drivers, experiment scripts) runs here at window
        # barriers with every shard clock synchronized — such callbacks may
        # touch components on any shard, which mid-window shard rings must
        # never do.  Under strict sync the facade schedules on shard 0.
        self._control = ShardQueue(self._event_counter)
        self._control_dispatched = 0
        self._relaxed = RelaxedExecutor(self, workers=workers)
        # Segment registry: name -> Segment, filled by Segment.__init__ so
        # the process backend can rebind serialized mail symbolically.
        self._segments: Dict[str, object] = {}
        self._backend = "thread"
        # Process-backend bookkeeping: the pending (unfetched) executor of
        # the last process dispatch, and the "one measured dispatch consumed"
        # latch that only reset() clears.
        self._proc_pending = None
        self._proc_stale = False
        self.trace._pending_fetch = self._proc_fetch
        self.trace._pending_discard = self._proc_discard
        if backend != "thread":
            self.set_backend(backend)
        if sync != "strict":
            self.set_sync(sync, workers=workers)

    def auto_station_id(self, base: int) -> int:
        """Allocate the next automatic station id in the ``base`` namespace.

        One fabric-wide counter per namespace, mirroring
        :meth:`Simulator.auto_station_id` — components built in the same
        order draw the same ids whether the run is sharded or not.
        """
        next_id = self._auto_station_ids.get(base, base)
        self._auto_station_ids[base] = next_id + 1
        return next_id

    # ------------------------------------------------------------------
    # Synchronization mode
    # ------------------------------------------------------------------

    @property
    def sync(self) -> str:
        """The active synchronization mode: ``"strict"`` or ``"relaxed"``."""
        return self._sync

    @property
    def relaxed(self) -> bool:
        """Whether relaxed sync is active (Simulator-compatible attribute).

        Components built directly against the facade (segments included)
        consult this exactly like :attr:`Simulator.relaxed`; their callbacks
        run at control barriers, where the classic paths are safe.
        """
        return self._sync == "relaxed"

    @property
    def relaxed_workers(self) -> int:
        """Worker threads used for relaxed windows (0 = sequential)."""
        return self._relaxed.workers

    def set_sync(
        self,
        sync: str,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> None:
        """Switch the execution mode between runs.

        Modes may be switched freely while the fabric is idle — a common
        pattern is a strict warm-up followed by a relaxed measurement phase.
        Relaxed mode requires the default per-shard record buffers (caller
        sinks observe records in execution order, which relaxed mode does not
        define), so it refuses fabrics built with ``trace_sinks``.

        Pending facade work across a switch: relaxed -> strict migrates the
        control ring onto shard 0 (order-preserving).  The reverse cannot be
        migrated — facade events scheduled under strict sync are
        indistinguishable from component events on shard 0's ring — so such
        events still fire inside shard 0's windows after a switch.  Schedule
        driver callbacks *after* switching to relaxed (the usual phase
        pattern drains between phases anyway); a leftover strict-scheduled
        driver callback that touches other shards' components would read
        their mid-window private clocks.
        """
        if sync not in self.SYNC_MODES:
            raise SimulationError(
                f"unknown sync mode {sync!r}; expected one of {self.SYNC_MODES}"
            )
        if self._running:
            raise SimulationError("cannot switch sync modes during a run")
        if sync == "relaxed" and self.trace._shared_sinks:
            raise SimulationError(
                "relaxed sync requires the default per-shard trace buffers; "
                "this fabric was built with shared trace_sinks"
            )
        if sync == "strict" and self._sync == "relaxed" and self._control:
            self._migrate_control_to_shard0()
        self._sync = sync
        self.trace._canonical = sync == "relaxed"
        if workers is not None:
            self._relaxed.set_workers(workers)
        if backend is not None:
            self.set_backend(backend)

    def set_backend(self, backend: str) -> None:
        """Select the relaxed-window execution backend (see :data:`BACKENDS`).

        ``"thread"`` (default) runs windows in-process; ``"process"`` forks
        one worker process per shard at dispatch time for wall-clock speedup.
        Like :meth:`set_sync`, backends may be switched freely while the
        fabric is idle — the usual pattern is an in-process warm-up phase
        followed by one process-backed measured dispatch.
        """
        if backend not in BACKENDS:
            raise SimulationError(
                f"unknown relaxed backend {backend!r}; expected one of {BACKENDS}"
            )
        if self._running:
            raise SimulationError("cannot switch backends during a run")
        self._backend = backend

    @property
    def relaxed_backend(self) -> str:
        """The relaxed-window execution backend: ``"thread"`` or ``"process"``."""
        return self._backend

    def _proc_fetch(self) -> None:
        """Pull any pending process-backend worker results in (trace hook)."""
        pending = self._proc_pending
        if pending is not None:
            pending.fetch_traces()

    def _proc_discard(self) -> None:
        """Drop any pending process-backend worker results (clear/reset hook)."""
        pending = self._proc_pending
        if pending is not None:
            pending.discard()

    def _migrate_control_to_shard0(self) -> None:
        """Move pending control-ring events onto shard 0 (relaxed -> strict).

        Entries keep their original shared-counter sequence numbers, so the
        merged buckets are re-sorted to restore the append-order-equals-seq
        invariant the strict dispatcher relies on.
        """
        control = self._control
        target = self._shards[0]._queue
        for time_ns, bucket in control._buckets.items():
            destination = target._buckets.get(time_ns)
            if destination is None:
                target._buckets[time_ns] = list(bucket)
                heapq.heappush(target._times, time_ns)
            else:
                destination.extend(bucket)
                destination.sort(key=lambda entry: entry[0])
            for entry in bucket:
                if entry[2] is not None:
                    entry[2]._queue = target
        target._live += control._live
        target._dead += control._dead
        control._buckets.clear()
        control._times.clear()
        control._live = 0
        control._dead = 0

    @property
    def relaxed_stats(self) -> dict:
        """Window/mailbox counters from the last relaxed dispatch."""
        return {
            "windows": self._relaxed.windows,
            "mail_flushed": self._relaxed.mail_flushed,
        }

    def enable_telemetry(self):
        """Attach fabric-wide telemetry state (idempotent; returns it).

        One :class:`repro.telemetry.Telemetry` aggregate covers every shard.
        Process-backend workers inherit the enabled state through the
        dispatch fork and ship their own registries home with the trace
        suffixes.  Metrics are deterministic functions of the event stream
        and wall spans are out-of-band, so enabling this never changes a
        simulation outcome.
        """
        if self._telemetry is None:
            from repro.telemetry import Telemetry

            self._telemetry = Telemetry(shards=len(self._shards))
        return self._telemetry

    # ------------------------------------------------------------------
    # Shards and placement
    # ------------------------------------------------------------------

    @property
    def shards(self) -> Tuple[EngineShard, ...]:
        """The shard engines, in index order."""
        return tuple(self._shards)

    @property
    def n_shards(self) -> int:
        """Number of shards in the fabric."""
        return len(self._shards)

    @property
    def counters(self) -> CountingSink:
        """The live fabric-wide trace counters (synced on read)."""
        return self.trace.counters

    def sim_for(self, name: str) -> EngineShard:
        """The shard engine the named component is placed on.

        Names missing from the placement map land on shard 0 (the fabric's
        control shard, which also hosts facade-scheduled work such as
        measurement drivers).
        """
        return self._shards[self._placement.get(name, 0)]

    def shard_stats(self) -> List[dict]:
        """Per-shard progress/load counters (diagnostics and benchmarks)."""
        self._proc_fetch()
        return [
            {
                "shard": shard.index,
                "events_dispatched": shard.events_dispatched,
                "pending_events": shard.pending_events,
                "cursor_ns": shard.cursor_ns,
                "cross_pushes": shard.cross_pushes,
                "cancelled_discarded": shard._queue.cancelled_discarded,
                "records": (
                    len(shard.trace._fast) if shard.trace._fast is not None else None
                ),
            }
            for shard in self._shards
        ]

    # ------------------------------------------------------------------
    # Time (Simulator-compatible)
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds.

        Relaxed sync has no single global present mid-run: each shard sits
        at its own point inside the lookahead window.  The facade answers
        with *the asking context's* time — the executing shard's private
        clock when called from inside a window (e.g. a measurement callback
        fired by a component), the shared clock otherwise (drivers between
        runs, control barriers).  Under strict sync the shared clock is the
        global present and is always used.
        """
        if self._sync == "relaxed":
            shard = active_shard()
            if shard is not None:
                return shard.clock._now_s
        return self.clock._now_s

    @property
    def now_ns(self) -> int:
        """Current simulated time in nanoseconds (see :attr:`now`)."""
        if self._sync == "relaxed":
            shard = active_shard()
            if shard is not None:
                return shard.clock._now_ns
        return self.clock._now_ns

    @property
    def events_dispatched(self) -> int:
        """Total events dispatched across all shards and the control ring."""
        return (
            sum(shard._dispatched for shard in self._shards)
            + self._control_dispatched
        )

    @property
    def pending_events(self) -> int:
        """Live events waiting across all shards and the control ring."""
        return sum(len(shard._queue) for shard in self._shards) + len(
            self._control
        )

    @property
    def cancelled_events_discarded(self) -> int:
        """Cancelled events physically dropped across all event rings."""
        return (
            sum(shard._queue.cancelled_discarded for shard in self._shards)
            + self._control.cancelled_discarded
        )

    # ------------------------------------------------------------------
    # Scheduling (facade)
    #
    # Strict sync: facade work lands on shard 0 and participates in the
    # exact global order.  Relaxed sync: facade work lands on the control
    # ring and runs at window barriers with every shard clock synchronized,
    # because a driver callback may synchronously touch components on any
    # shard — which a mid-window shard event must never do.
    # ------------------------------------------------------------------

    def schedule(self, delay_seconds, callback, label: str = "") -> Event:
        """Schedule ``callback`` after ``delay_seconds`` (facade)."""
        if self._sync == "relaxed":
            return self._control.push(
                self.clock.now_ns + seconds_to_ns(delay_seconds), callback, label
            )
        return self._shards[0].schedule(delay_seconds, callback, label)

    def schedule_at(self, when_seconds, callback, label: str = "") -> Event:
        """Schedule ``callback`` at an absolute time (facade)."""
        if self._sync == "relaxed":
            when_ns = seconds_to_ns(when_seconds)
            if when_ns < self.clock.now_ns:
                validate_schedule_time(self.clock.now_ns, when_ns)
            return self._control.push(when_ns, callback, label)
        return self._shards[0].schedule_at(when_seconds, callback, label)

    def schedule_at_ns(self, when_ns, callback, label: str = "") -> Event:
        """Schedule ``callback`` at ``when_ns`` (facade)."""
        if self._sync == "relaxed":
            if when_ns < self.clock.now_ns:
                validate_schedule_time(self.clock.now_ns, when_ns)
            return self._control.push(when_ns, callback, label)
        return self._shards[0].schedule_at_ns(when_ns, callback, label)

    def call_soon(self, callback, label: str = "") -> Event:
        """Schedule ``callback`` at the current time (facade)."""
        if self._sync == "relaxed":
            return self._control.push(self.clock.now_ns, callback, label)
        return self._shards[0].call_soon(callback, label)

    def schedule_fire(self, when_seconds, callback, label: str = "") -> None:
        """Fire-and-forget scheduling at an absolute time (facade).

        Components constructed directly against the facade (e.g. a monitoring
        NIC built with ``run.sim``) resolve here.
        """
        if self._sync == "relaxed":
            self._control.push_fire(seconds_to_ns(when_seconds), callback)
            return
        self._shards[0].schedule_fire(when_seconds, callback, label)

    def _relaxed_push_fire(self, when_ns: int, callback) -> None:
        """Barrier-context push targeting the facade: the control ring.

        A facade-homed component (a monitoring NIC built against ``run.sim``)
        receiving cut-segment deliveries under relaxed sync gets its work at
        a control barrier, where every shard clock is synchronized — the
        facade has no ring of its own.
        """
        self._control.push_fire(when_ns, callback)

    # ------------------------------------------------------------------
    # Cross-shard bookkeeping
    # ------------------------------------------------------------------

    def _note_cross_push(self, shard: EngineShard, time_ns: int, sequence: int) -> None:
        """A batch on another shard scheduled into ``shard``'s ring.

        Refreshes the cached top key and shrinks the live batch limit so the
        running batch stops before overtaking the new event.
        """
        shard.cross_pushes += 1
        key = (time_ns, sequence)
        index = shard.index
        top = self._tops[index]
        if top is None or key < top:
            self._tops[index] = key
        limit = self._batch_limit
        if limit is None or key < limit:
            self._batch_limit = key

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _dispatch(self, until_ns: int, max_events: Optional[int] = None) -> int:
        """Dispatch events up to ``until_ns`` under the active sync mode.

        Strict mode runs the exact global ``(time, sequence)`` order below;
        relaxed mode hands the run to the :class:`RelaxedExecutor`'s
        conservative window loop (or, with ``backend="process"``, to a
        fresh :class:`~repro.sim.procpool.ProcessExecutor`).
        """
        if self._proc_stale:
            self._proc_fetch()
            raise FabricBackendError(
                "this fabric already ran a process-backed dispatch: worker "
                "processes advanced the component state, so the parent copy "
                "is stale; call reset() (and rebuild the scenario state) "
                "before dispatching again"
            )
        if self._sync == "relaxed":
            if self._backend == "process":
                from repro.sim.procpool import ProcessExecutor

                return ProcessExecutor(self).dispatch(until_ns, max_events)
            return self._relaxed.dispatch(until_ns, max_events)
        shards = self._shards
        tops = self._tops
        for shard in shards:
            tops[shard.index] = shard._queue.top_key()
        dispatched = 0
        telemetry = self._telemetry
        if telemetry is not None:
            from repro.telemetry import spans

            strict_start = spans.perf_counter()
            high_water = self.pending_events
        while True:
            # One pass finds both the globally minimal shard and the batch
            # limit (the smallest key any *other* shard holds).
            best = None
            best_key = None
            limit = None
            for index, key in enumerate(tops):
                if key is None:
                    continue
                if best_key is None or key < best_key:
                    limit = best_key
                    best_key = key
                    best = shards[index]
                elif limit is None or key < limit:
                    limit = key
            if best is None or best_key[0] > until_ns:
                break
            best_index = best.index
            self._batch_limit = limit
            self._active = best
            budget = None if max_events is None else max_events - dispatched
            if budget is not None and budget <= 0:
                self._active = None
                break
            ran = best._run_batch(until_ns, budget)
            self._active = None
            dispatched += ran
            fresh = best._queue.top_key()
            if ran == 0 and fresh == best_key:
                # The batch was eligible to run its top event but did not —
                # the caches can only be stale *smaller*, so this means no
                # further progress is possible.  Guard against a silent spin.
                raise SimulationError(
                    "sharded dispatch made no progress; shard "
                    f"{best_index} top={fresh!r} limit={limit!r}"
                )
            tops[best_index] = fresh
            if telemetry is not None:
                pending = self.pending_events
                if pending > high_water:
                    high_water = pending
            if max_events is not None and dispatched >= max_events:
                break
        if telemetry is not None:
            elapsed = spans.perf_counter() - strict_start
            registry = telemetry.registry
            registry.counter("engine_events_dispatched").inc(dispatched)
            registry.gauge("engine_queue_high_water").set_max(high_water)
            telemetry.profiler.add("compute", elapsed)
            telemetry.profiler.add_total(elapsed)
        return dispatched

    def step(self) -> bool:
        """Dispatch the single globally earliest event, if any."""
        return self._dispatch(_NO_BOUND_NS, max_events=1) == 1

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until every shard ring drains (or ``max_events`` is reached)."""
        if self._running:
            raise SimulationError("Simulator.run() called re-entrantly")
        self._running = True
        try:
            return self._dispatch(_NO_BOUND_NS, max_events)
        finally:
            self._running = False

    def run_until(self, until_seconds: float, max_events: Optional[int] = None) -> int:
        """Run events with firing times ``<= until_seconds``.

        As with the single engine, the clock is advanced to ``until_seconds``
        at the end even if the rings drained earlier.
        """
        if self._running:
            raise SimulationError("Simulator.run_until() called re-entrantly")
        until_ns = seconds_to_ns(until_seconds)
        if until_ns < self.clock.now_ns:
            raise SimulationError(
                f"run_until({until_seconds}s) is earlier than the current "
                f"time {self.clock.now}s"
            )
        self._running = True
        try:
            dispatched = self._dispatch(until_ns, max_events)
            if self.clock.now_ns < until_ns:
                self.clock.advance_to_ns(until_ns)
        finally:
            self._running = False
        return dispatched

    def run_for(self, duration_seconds: float, max_events: Optional[int] = None) -> int:
        """Run for ``duration_seconds`` of simulated time starting from now."""
        return self.run_until(self.now + duration_seconds, max_events=max_events)

    def reset(self) -> None:
        """Discard all pending events, traces and rewind the clock to zero.

        Station-id namespaces rewind too, mirroring :meth:`Simulator.reset`.

        Also the only way to unlatch a fabric after a process-backed
        dispatch: pending worker results are discarded unfetched and the
        staleness latch clears.
        """
        self._proc_discard()
        self._proc_stale = False
        for shard in self._shards:
            shard._queue.clear()
            shard._dispatched = 0
            shard.cursor_ns = 0
            shard.cross_pushes = 0
            shard.outbox.clear()
            shard._own_clock.reset()
        self._control.clear()
        self._control_dispatched = 0
        self._tops = [None] * len(self._shards)
        self.clock.reset()
        self.trace.clear()
        self._auto_station_ids.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedSimulator(shards={len(self._shards)}, now={self.now:.6f}s, "
            f"pending={self.pending_events}, dispatched={self.events_dispatched})"
        )
