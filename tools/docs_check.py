"""CI documentation check: the docs pages must track the living system.

Three coverage contracts, all cheap and exact:

* every scenario registered in :mod:`repro.scenario.registry` must be named
  in ``docs/scenario-catalog.md``;
* every BENCH metric *family* tracked anywhere in ``BENCH_trace.json`` (a
  metric name as collected by ``benchmarks/perf_gate.py``, with its
  ``@size`` suffix stripped) must be named in ``docs/benchmarks.md``;
* every fault kind in :data:`repro.faults.FAULT_KINDS` must be named in
  ``docs/architecture.md`` — adding a dynamics event without documenting
  its semantics fails CI exactly like an undocumented scenario;
* every execution backend in :data:`repro.sim.relaxed.BACKENDS` must be
  named in ``docs/architecture.md`` — a new window-execution backend ships
  with its transport/barrier/determinism story documented, or CI fails;
* every station role in :data:`repro.population.STATION_ROLES` and every
  traffic kind in :data:`repro.population.TRAFFIC_KINDS` must be named in
  ``docs/architecture.md`` — population roles and synthetic-traffic axes
  are part of the documented scenario surface;
* every topology generator in
  :data:`repro.scenario.generators.GENERATORS` must be named in
  ``docs/topology-interchange.md`` — a new generator ships with its shape,
  axes and tie story documented where the fuzzer's inputs are specified;
* every metric family in :data:`repro.telemetry.METRIC_FAMILIES` must be
  named in ``docs/telemetry.md`` — new instrumentation ships with its
  meaning and labels documented, or CI fails.

Run from the repository root::

    PYTHONPATH=src python tools/docs_check.py

Exits non-zero listing everything missing, so adding a scenario or a gated
metric without documenting it fails CI.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from perf_gate import collect_metrics  # noqa: E402

from repro.faults import FAULT_KINDS  # noqa: E402
from repro.population import STATION_ROLES, TRAFFIC_KINDS  # noqa: E402
from repro.scenario.generators import GENERATORS  # noqa: E402
from repro.scenario.registry import list_scenarios  # noqa: E402
from repro.sim.relaxed import BACKENDS  # noqa: E402
from repro.telemetry import METRIC_FAMILIES  # noqa: E402

CATALOG_PAGE = REPO_ROOT / "docs" / "scenario-catalog.md"
TELEMETRY_PAGE = REPO_ROOT / "docs" / "telemetry.md"
BENCHMARKS_PAGE = REPO_ROOT / "docs" / "benchmarks.md"
ARCHITECTURE_PAGE = REPO_ROOT / "docs" / "architecture.md"
INTERCHANGE_PAGE = REPO_ROOT / "docs" / "topology-interchange.md"
RESULTS_PATH = REPO_ROOT / "BENCH_trace.json"


def metric_families(history: list) -> set:
    """Every tracked metric name with its ``@size`` segment removed.

    ``fabric/shards=4/relaxed@256x600 records/s`` ->
    ``fabric/shards=4/relaxed records/s``; names without a size pass
    through unchanged.
    """
    families = set()
    for entry in history:
        for name in collect_metrics(entry):
            if "@" in name:
                head, _, tail = name.partition("@")
                suffix = tail.partition(" ")[2]
                families.add(f"{head} {suffix}".strip())
            else:
                families.add(name)
    return families


def main() -> int:
    failures = []

    catalog_text = CATALOG_PAGE.read_text() if CATALOG_PAGE.exists() else ""
    for entry in list_scenarios():
        if f"`{entry.name}`" not in catalog_text:
            failures.append(
                f"scenario {entry.name!r} is registered but missing from "
                f"{CATALOG_PAGE.relative_to(REPO_ROOT)}"
            )

    bench_text = BENCHMARKS_PAGE.read_text() if BENCHMARKS_PAGE.exists() else ""
    try:
        history = json.loads(RESULTS_PATH.read_text())
    except (OSError, ValueError) as exc:
        print(f"docs check: cannot read {RESULTS_PATH}: {exc}")
        return 1
    for family in sorted(metric_families(history)):
        if family not in bench_text:
            failures.append(
                f"metric family {family!r} is tracked in BENCH_trace.json but "
                f"missing from {BENCHMARKS_PAGE.relative_to(REPO_ROOT)}"
            )

    architecture_text = (
        ARCHITECTURE_PAGE.read_text() if ARCHITECTURE_PAGE.exists() else ""
    )
    for kind in FAULT_KINDS:
        if f"`{kind}`" not in architecture_text:
            failures.append(
                f"fault kind {kind!r} exists in repro.faults.FAULT_KINDS but "
                f"is missing from {ARCHITECTURE_PAGE.relative_to(REPO_ROOT)}"
            )

    for backend in BACKENDS:
        if f"`{backend}`" not in architecture_text:
            failures.append(
                f"execution backend {backend!r} exists in "
                f"repro.sim.relaxed.BACKENDS but is missing from "
                f"{ARCHITECTURE_PAGE.relative_to(REPO_ROOT)}"
            )

    for role in STATION_ROLES:
        if f"`{role}`" not in architecture_text:
            failures.append(
                f"station role {role!r} exists in "
                f"repro.population.STATION_ROLES but is missing from "
                f"{ARCHITECTURE_PAGE.relative_to(REPO_ROOT)}"
            )

    for kind in TRAFFIC_KINDS:
        if f"`{kind}`" not in architecture_text:
            failures.append(
                f"traffic kind {kind!r} exists in "
                f"repro.population.TRAFFIC_KINDS but is missing from "
                f"{ARCHITECTURE_PAGE.relative_to(REPO_ROOT)}"
            )

    interchange_text = (
        INTERCHANGE_PAGE.read_text() if INTERCHANGE_PAGE.exists() else ""
    )
    for generator in GENERATORS:
        if f"`{generator}`" not in interchange_text:
            failures.append(
                f"generator {generator!r} exists in "
                f"repro.scenario.generators.GENERATORS but is missing from "
                f"{INTERCHANGE_PAGE.relative_to(REPO_ROOT)}"
            )

    telemetry_text = TELEMETRY_PAGE.read_text() if TELEMETRY_PAGE.exists() else ""
    for family in METRIC_FAMILIES:
        if f"`{family}`" not in telemetry_text:
            failures.append(
                f"metric family {family!r} exists in "
                f"repro.telemetry.METRIC_FAMILIES but is missing from "
                f"{TELEMETRY_PAGE.relative_to(REPO_ROOT)}"
            )

    if failures:
        print(f"docs check: {len(failures)} problem(s):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    scenarios = len(list_scenarios())
    families = len(metric_families(history))
    print(
        f"docs check: OK — {scenarios} scenarios, {families} metric "
        f"families, {len(FAULT_KINDS)} fault kinds, {len(BACKENDS)} "
        f"execution backends, {len(STATION_ROLES)} station roles, "
        f"{len(TRAFFIC_KINDS)} traffic kinds, {len(GENERATORS)} "
        f"topology generators and {len(METRIC_FAMILIES)} telemetry "
        f"metric families all documented"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
