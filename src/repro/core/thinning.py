"""Module thinning.

Section 5.1 of the paper: "We have thinned the signature of the modules to be
accessed by switchlets to exclude those functions that might allow security
violations.  This leaves the switchlet with no way of naming the excluded
function and thus, no way of accessing it."

A :class:`ThinnedModule` is a facade over an implementation object that
exposes *only* an explicit allow-list of names.  Attribute access outside the
allow-list raises :class:`ThinningViolation` — the excluded members simply do
not exist from the switchlet's point of view.  The thinner also refuses to
expose dunder attributes, so a switchlet cannot crawl from a facade back to
the implementation object through ``__dict__``-style reflection.

The companion :data:`SAFE_BUILTINS` dictionary plays the role the *language*
plays in Caml: it is the restricted set of built-in operations a switchlet's
code executes with.  ``open``, ``__import__``, ``eval``, ``exec`` and other
escape hatches are absent, so a switchlet cannot reach the file system or the
Python module space at all — only what the environment names.
"""

from __future__ import annotations

import builtins
from typing import Dict, Iterable, Mapping

from repro.exceptions import ThinningViolation


class ThinnedModule:
    """A facade exposing only an allow-list of names from an implementation.

    Args:
        name: the module name a switchlet sees (e.g. ``"Safestd"``).
        exports: mapping of exported name to value.  The values themselves
            are typically bound methods of the implementation object, so the
            switchlet can call them but cannot reach the object they close
            over except through them.
    """

    def __init__(self, name: str, exports: Mapping[str, object]) -> None:
        object.__setattr__(self, "_name", str(name))
        object.__setattr__(self, "_exports", dict(exports))

    @property
    def __exports__(self) -> tuple:
        """The exported interface (sorted names); used for signature digests."""
        return tuple(sorted(object.__getattribute__(self, "_exports")))

    @property
    def __module_name__(self) -> str:
        """The module name as seen by switchlets."""
        return object.__getattribute__(self, "_name")

    def __getattr__(self, name: str):
        exports = object.__getattribute__(self, "_exports")
        if name in exports:
            return exports[name]
        module_name = object.__getattribute__(self, "_name")
        raise ThinningViolation(
            f"module {module_name!r} does not export {name!r} "
            "(excluded by module thinning)"
        )

    def __setattr__(self, name: str, value: object) -> None:
        module_name = object.__getattribute__(self, "_name")
        raise ThinningViolation(
            f"module {module_name!r} is immutable: cannot set {name!r}"
        )

    def __dir__(self) -> list:
        return list(object.__getattribute__(self, "_exports"))

    def __repr__(self) -> str:
        module_name = object.__getattribute__(self, "_name")
        count = len(object.__getattribute__(self, "_exports"))
        return f"<thinned module {module_name!r} ({count} exports)>"


def thin(name: str, implementation: object, allowed: Iterable[str]) -> ThinnedModule:
    """Build a :class:`ThinnedModule` exposing ``allowed`` names of ``implementation``.

    Raises:
        ThinningViolation: if an allowed name does not exist on the
            implementation (a thinning list referring to a non-existent
            member is almost certainly a bug in the environment).
    """
    exports: Dict[str, object] = {}
    for attr in allowed:
        if not hasattr(implementation, attr):
            raise ThinningViolation(
                f"cannot thin {name!r}: implementation has no member {attr!r}"
            )
        exports[attr] = getattr(implementation, attr)
    return ThinnedModule(name, exports)


#: Names of builtin functions and types a switchlet may use.  Everything not
#: listed here is unavailable inside switchlet code — notably ``open``,
#: ``__import__``, ``eval``, ``exec``, ``compile``, ``globals``, ``locals``,
#: ``vars``, ``input`` and ``breakpoint``.
_SAFE_BUILTIN_NAMES = (
    # Types and constructors
    "bool",
    "bytearray",
    "bytes",
    "dict",
    "float",
    "frozenset",
    "int",
    "list",
    "object",
    "set",
    "str",
    "tuple",
    "type",
    # Functions
    "abs",
    "all",
    "any",
    "callable",
    "chr",
    "divmod",
    "enumerate",
    "filter",
    "format",
    "getattr",
    "hasattr",
    "hash",
    "hex",
    "id",
    "isinstance",
    "issubclass",
    "iter",
    "len",
    "map",
    "max",
    "min",
    "next",
    "ord",
    "pow",
    "print",
    "range",
    "repr",
    "reversed",
    "round",
    "sorted",
    "sum",
    "zip",
    # Decorators / class machinery
    "classmethod",
    "property",
    "staticmethod",
    "super",
    # Exceptions a switchlet may reasonably raise or handle
    "ArithmeticError",
    "AssertionError",
    "AttributeError",
    "BaseException",
    "Exception",
    "ImportError",
    "IndexError",
    "KeyError",
    "LookupError",
    "NameError",
    "NotImplementedError",
    "OSError",
    "OverflowError",
    "RuntimeError",
    "StopIteration",
    "TypeError",
    "ValueError",
    "ZeroDivisionError",
)


def safe_builtins() -> Dict[str, object]:
    """Return a fresh restricted ``__builtins__`` dictionary for switchlet code.

    ``__build_class__`` is included because switchlet source may define
    classes; it does not grant any ambient authority.
    """
    table: Dict[str, object] = {}
    for name in _SAFE_BUILTIN_NAMES:
        table[name] = getattr(builtins, name)
    table["__build_class__"] = builtins.__build_class__
    table["__name__"] = "switchlet"
    return table


#: A ready-made safe builtins table (callers should copy it before mutating).
SAFE_BUILTINS: Dict[str, object] = safe_builtins()

#: Builtin names that must never appear in the safe table; the test suite
#: asserts this stays true as the allow-list evolves.
FORBIDDEN_BUILTIN_NAMES = (
    "open",
    "__import__",
    "eval",
    "exec",
    "compile",
    "globals",
    "locals",
    "vars",
    "input",
    "breakpoint",
    "exit",
    "quit",
    "memoryview",
)
