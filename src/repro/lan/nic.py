"""Network interface cards.

A :class:`NetworkInterface` is the attachment point between a station (host,
bridge, repeater) and a :class:`~repro.lan.segment.Segment`.  It mirrors the
behaviour the paper depends on:

* **promiscuous mode** — "whenever an input port is bound, it is put into
  promiscuous mode", because a transparent bridge must see every frame on the
  segment, not just frames addressed to it;
* per-interface transmit/receive counters used by the measurement tools;
* an owner-supplied receive handler, which for an active node is the node's
  demultiplexer and for a host is the host protocol stack.

Under the sharded fabric a NIC *resides* on the engine of the station that
owns it (:attr:`NetworkInterface.home_sim`): received frames are handled, and
follow-on work is scheduled, on that shard.  A segment homed on another shard
reads the residency to route the frame through the inter-shard delivery
channel (see :meth:`repro.lan.segment.Segment._refresh_delivery_runs`).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.ethernet.frame import EthernetFrame
from repro.ethernet.mac import MacAddress
from repro.exceptions import InterfaceError
from repro.lan.segment import Segment
from repro.sim.engine import Simulator

FrameHandler = Callable[["NetworkInterface", EthernetFrame], None]


class NetworkInterface:
    """A simulated Ethernet NIC.

    Args:
        sim: owning simulator.
        name: interface name used in traces (e.g. ``"bridge1.eth0"``).
        mac: the interface's unicast MAC address.
    """

    # One NIC per station at population scale: slots keep the per-frame
    # counter fields in a compact layout with no per-instance __dict__.
    __slots__ = (
        "sim",
        "name",
        "mac",
        "_trace",
        "segment",
        "promiscuous",
        "up",
        "_handler",
        "_inline_safe",
        "_segment_local",
        "frames_sent",
        "frames_received",
        "frames_dropped",
        "bytes_sent",
        "bytes_received",
        "link_transitions",
    )

    def __init__(self, sim: Simulator, name: str, mac: MacAddress) -> None:
        self.sim = sim
        self.name = name
        self.mac = mac
        # The trace hub never changes over a NIC's lifetime; caching it
        # saves an attribute hop on every frame sent or delivered.
        self._trace = sim.trace
        self.segment: Optional[Segment] = None
        self.promiscuous = False
        self.up = True
        self._handler: Optional[FrameHandler] = None
        self._inline_safe = False
        self._segment_local = False
        # Statistics
        self.frames_sent = 0
        self.frames_received = 0
        self.frames_dropped = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.link_transitions = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    @property
    def home_sim(self) -> Simulator:
        """The engine this NIC's owner schedules on (its shard residency).

        Segments group receivers by residency to decide which shard each
        delivery event runs on; for an unsharded run this is simply the one
        shared :class:`Simulator`.
        """
        return self.sim

    def attach(self, segment: Segment) -> None:
        """Attach this NIC to a segment (at most one segment per NIC)."""
        if self.segment is not None:
            raise InterfaceError(f"{self.name} is already attached to {self.segment.name}")
        segment.attach(self)
        self.segment = segment

    def detach(self) -> None:
        """Detach from the current segment."""
        if self.segment is None:
            raise InterfaceError(f"{self.name} is not attached to any segment")
        self.segment.detach(self)
        self.segment = None

    def set_handler(
        self,
        handler: Optional[FrameHandler],
        inline_safe: bool = False,
        segment_local: bool = False,
    ) -> None:
        """Install the owner's receive handler (called for every accepted frame).

        Two express-lane safety declarations qualify the handler under the
        fabric's relaxed sync mode (see :meth:`Segment._refresh_express`):

        ``inline_safe=True`` declares the handler *reactive-only*: it runs
        synchronously, touches only this NIC / its owner's local state, and
        any frames it sends go back onto the same segment.  A segment whose
        up receivers are all inline-safe (or handler-less) runs its whole
        causal chain on the inline express lane
        (:meth:`Segment._express_pump`) instead of the event ring.

        ``segment_local=True`` declares the handler *deferred*: from delivery
        context it only updates its owner's local state and schedules
        follow-on work through the owning engine (a CPU queue, a timer) —
        its reactions never escape the segment synchronously.  That is the
        natural shape of every station whose forwarding path rides a
        :class:`~repro.costs.cpu.CpuQueue` (hosts, active nodes, the baseline
        bridges and repeaters — the catalog protocols declare it
        automatically), and it admits the segment to the *deferred* express
        drain (:meth:`Segment._express_drain`): service bookkeeping runs
        batched at transmit time while deliveries stay on the event ring at
        their exact strict-engine timestamps.

        Handlers that synchronously drive *other* segments from delivery
        context, or that sample wire-side counters mid-flight, must keep
        both defaults.
        """
        self._handler = handler
        self._inline_safe = bool(inline_safe) and handler is not None
        self._segment_local = bool(segment_local) and handler is not None
        segment = self.segment
        if segment is not None:
            segment._refresh_express()

    def declare_segment_local(self, segment_local: bool) -> None:
        """Flip the ``segment_local`` declaration without touching the handler."""
        self._segment_local = bool(segment_local) and self._handler is not None
        segment = self.segment
        if segment is not None:
            segment._refresh_express()

    def set_promiscuous(self, enabled: bool) -> None:
        """Enable or disable promiscuous mode."""
        self.promiscuous = enabled

    def set_up(self, up: bool) -> None:
        """Administratively enable/disable the interface.

        A downed interface neither sends nor receives; the fault subsystem's
        ``port-down``/``port-up``/``node-crash`` events and the spanning-tree
        benchmarks drive link failures through here.  Each actual state
        change emits one ``nic.link`` record (the
        :class:`~repro.measurement.convergence.ConvergenceProbe` failure
        signal) and bumps :attr:`link_transitions`.  Toggling refreshes the
        segment's express-lane eligibility (a downed receiver never runs a
        handler, so it does not hold a segment off the express lane — and a
        remote port going down can *grant* a cut segment the lane).
        """
        up = bool(up)
        if up != self.up:
            self.link_transitions += 1
            trace = self._trace
            if trace.wants("nic.link"):
                trace.emit(self.name, "nic.link", {"up": up})
        self.up = up
        segment = self.segment
        if segment is not None:
            segment._refresh_express()

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def send(self, frame: EthernetFrame) -> None:
        """Transmit ``frame`` onto the attached segment."""
        if self.segment is None:
            raise InterfaceError(f"{self.name} cannot send: not attached to a segment")
        if not self.up:
            self.frames_dropped += 1
            return
        self.frames_sent += 1
        self.bytes_sent += frame.frame_length
        trace = self._trace
        if trace.wants("nic.tx"):
            trace.emit(self.name, "nic.tx", lambda: {"frame": frame.describe()})
        self.segment.transmit(self, frame)

    def deliver(self, frame: EthernetFrame) -> None:
        """Called by the segment when a frame arrives at this station.

        Applies the hardware address filter (unless promiscuous) and then
        hands the frame to the owner's handler.
        """
        if not self.up:
            self.frames_dropped += 1
            return
        # Inlined hardware filter (see accepts(), kept as the public form).
        if not self.promiscuous:
            if (
                frame.destination != self.mac
                and not frame.is_broadcast
                and not frame.is_multicast
            ):
                return
        self.frames_received += 1
        self.bytes_received += frame.frame_length
        trace = self._trace
        if trace.wants("nic.rx"):
            trace.emit(self.name, "nic.rx", lambda: {"frame": frame.describe()})
        if self._handler is not None:
            self._handler(self, frame)

    def accepts(self, frame: EthernetFrame) -> bool:
        """Whether the hardware filter passes this frame up.

        In promiscuous mode everything is accepted; otherwise only frames
        addressed to this NIC, to the broadcast address, or to a multicast
        group (hosts filter multicast in software, which is all our thin host
        stack needs).
        """
        if self.promiscuous:
            return True
        if frame.destination == self.mac:
            return True
        if frame.is_broadcast or frame.is_multicast:
            return True
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def statistics(self) -> dict:
        """A snapshot of the interface counters."""
        return {
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "frames_dropped": self.frames_dropped,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "link_transitions": self.link_transitions,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        attached = self.segment.name if self.segment else "detached"
        return f"NetworkInterface({self.name!r}, {self.mac}, {attached})"
