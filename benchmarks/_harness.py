"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
helpers here keep the individual benchmark modules small: they run a
measurement callable once inside ``pytest-benchmark`` (the interesting
"result" is the simulated measurement, not the wall-clock time of the
simulator, but the benchmark fixture gives a convenient, uniform harness and
records wall time too) and print the rendered table so that
``pytest benchmarks/ --benchmark-only -s`` reads like the paper's evaluation
section.
"""

from __future__ import annotations


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark fixture and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def emit(title: str, text: str) -> None:
    """Print a rendered table/figure with a banner (visible with ``-s``)."""
    banner = "=" * max(len(title), 20)
    print(f"\n{banner}\n{title}\n{banner}\n{text}\n")
