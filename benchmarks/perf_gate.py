"""CI performance gate over ``BENCH_trace.json``.

The benchmarks append one entry per run to ``BENCH_trace.json`` (the
repository commits a baseline history; CI appends fresh entries).  Entries
come from *different* workloads — the trace-overhead micro-benchmark and the
sharded-fabric ring sweeps — so the gate pairs each tracked metric with its
own history: for every metric name it takes the **newest** value and compares
it with that metric's **previous** occurrence, failing when any throughput —
emit records/second per sink, frame-blast frames/second per sink,
sharded-fabric frames/records per second per engine configuration (strict
and relaxed sync, 64- and 256-LAN rings), population-fleet frames/second per
engine configuration and station count, or the relaxed-over-strict speedup
ratio — regresses by more than the threshold (default 20 %).

On top of the regression pairing, the gate holds **absolute ratio floors**:
relaxed must deliver at least 1.0x the strict records/s at the same shard
count (the express/batched machinery must pay for its windows on every
committed workload, failover included) and at least 2.0x on the 256-LAN
wire-speed ring.  Floors compare two configurations *within one entry* —
same run, same machine — so they hold across hardware generations where
absolute rates cannot; each floor passes when the best of its two newest
occurrences meets it, so one noisy sample cannot fail a floor the committed
baseline demonstrably clears (see :func:`check_floors`).

**Wall-clock and CPU-time metrics are distinct families and are never paired
against each other.**  The CPU-time families above (``records/s`` rates from
``time.process_time``) measure engine mechanics independent of scheduling;
the wall-clock family (``fabric/wall-speedup/...``, from the fabric
benchmark's wall sweep) measures real elapsed-time parallelism of the
relaxed thread and process backends.  The separation is structural: wall
metrics live under disjoint names, so the newest-vs-previous pairing can
only ever compare wall against wall.  The wall family additionally holds an
absolute floor — the **process backend at shards=4 must reach at least 1.0x
the single engine's wall clock** (``WALL_FLOOR``).  Entries produced on
runners with fewer than four CPU cores record the sweep as skipped and emit
no wall metrics, so the floor and pairing simply do not engage there.

Run after the benchmarks::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py --frames 20000 --skip-bounded
    PYTHONPATH=src python benchmarks/bench_sharded_fabric.py --frames 200
    python benchmarks/perf_gate.py --threshold 0.20

The gate is pure stdlib (no simulator import): it only reads the JSON file.

Caveat: the committed baseline may come from different hardware than the CI
runner, so absolute throughput can shift for reasons unrelated to the code.
The 20 % default absorbs normal runner variance; if a slow runner class trips
the gate spuriously, refresh the committed baseline from CI's own artifact
(or raise ``--threshold``) rather than chasing phantom regressions.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_trace.json"

#: Relaxed-over-strict records/s floors per workload family (the entry key
#: the workload records under).  Ratios are taken within a single entry.
RATIO_FLOORS = {
    "sharded_fabric": 1.0,
    "sharded_fabric_256": 2.0,
    "failover": 1.0,
}

#: The wall-sweep configuration held to an absolute floor, and the floor:
#: relaxed-process at shards=4 must not be slower than the single engine in
#: wall-clock terms on any runner that can measure it (>= 4 CPU cores).
WALL_FLOOR_CONFIG = "shards=4/process"
WALL_FLOOR = 1.0


def _wall_block(workload: dict):
    """The workload's wall sweep, or None when absent or skipped (<4 cores)."""
    wall = workload.get("wall")
    if not isinstance(wall, dict) or wall.get("skipped"):
        return None
    return wall


def collect_floors(entry: dict) -> dict:
    """Floor-checked ratios in one entry: {name: (ratio, floor)}.

    Reads each workload's own ``relaxed_speedup`` field — the benchmark is
    responsible for sound pairing (bench_failover medians per-round ratios
    so both sides of every ratio share a CPU frequency window; the fabric
    sweeps ratio best-of-passes from isolated subprocesses) — and the gate
    holds the result at the family's floor.
    """
    floors = {}
    for family, floor in RATIO_FLOORS.items():
        workload = entry.get(family)
        if not isinstance(workload, dict):
            continue
        speedup = workload.get("relaxed_speedup")
        if speedup is not None:
            floors[f"floor/{family} relaxed-over-strict"] = (float(speedup), floor)
        wall = _wall_block(workload)
        if wall is not None:
            wall_speedup = (wall.get("speedups") or {}).get(WALL_FLOOR_CONFIG)
            if wall_speedup is not None:
                floors[f"floor/{family} wall {WALL_FLOOR_CONFIG}"] = (
                    float(wall_speedup),
                    WALL_FLOOR,
                )
    return floors


def check_floors(history: list) -> list:
    """Return [(name, ratio, floor, ok)] per floor family.

    A floor passes when the **best of the two newest occurrences** meets it.
    The ratio is a point estimate from a ~1-second paired sweep, so any
    single sample carries a few percent of scheduler/frequency noise; with
    the committed baseline entry and CI's fresh run both in the history, a
    genuine regression shows up in both while an unlucky sample does not.
    Sustained drift is additionally caught by the regression pairing, which
    tracks each workload's ``relaxed_speedup`` (and every records/s metric)
    against its previous occurrence at the default 20 % threshold.
    """
    occurrences: dict = {}
    for entry in history:
        for name, (ratio, floor) in collect_floors(entry).items():
            occurrences.setdefault(name, []).append((ratio, floor))
    rows = []
    for name in sorted(occurrences):
        newest_two = occurrences[name][-2:]
        floor = newest_two[-1][1]
        best = max(ratio for ratio, _ in newest_two)
        rows.append((name, best, floor, best >= floor))
    return rows


def collect_metrics(entry: dict) -> dict:
    """Flatten one benchmark entry into {metric name: value} for comparison.

    Workload-sized metrics carry their size in the key (``@frames``,
    ``@segments x frames``) so a run at a reduced size is never ratioed
    against a full-size baseline — comparisons stay like-for-like.  (The emit
    micro-benchmark always uses the same fixed record count, so its metrics
    carry no size key.)
    """
    metrics = {}
    for sink, rate in (entry.get("emit_records_per_second") or {}).items():
        metrics[f"emit/{sink} records/s"] = float(rate)
    for sink, blast in (entry.get("frame_blast") or {}).items():
        rate = blast.get("frames_per_second")
        if rate is not None:
            frames = blast.get("frames", "?")
            metrics[f"blast/{sink}@{frames} frames/s"] = float(rate)
    # Telemetry overhead (``bench_trace_overhead.py``): the frame blast
    # replayed with the metrics registry enabled.  Both absolute rates and
    # the within-entry on/off ratio are gated — the ratio catches a
    # regression in the instrumented path even on a noisy runner.
    telemetry = entry.get("telemetry_overhead")
    if isinstance(telemetry, dict):
        frames = telemetry.get("frames", "?")
        for mode in ("off", "on"):
            rate = telemetry.get(f"{mode}_frames_per_second")
            if rate is not None:
                metrics[f"telemetry/{mode}@{frames} frames/s"] = float(rate)
        ratio = telemetry.get("on_off_ratio")
        if ratio is not None:
            metrics[f"telemetry/on-off-ratio@{frames} x"] = float(ratio)
    # One block per ring size (``sharded_fabric`` = 64 LANs,
    # ``sharded_fabric_256`` = 256 LANs); the size lives in the metric name
    # so different sweeps never ratio against each other.  The ``threaded``
    # sub-result is deliberately not gated: thread scheduling is the one
    # knowingly non-deterministic configuration.
    for key, fabric in entry.items():
        if not key.startswith("sharded_fabric") or not isinstance(fabric, dict):
            continue
        size = f"{fabric.get('segments', '?')}x{fabric.get('frames_per_pair', '?')}"
        for config, result in (fabric.get("configs") or {}).items():
            blast = result.get("blast") or {}
            for unit in ("frames", "records"):
                rate = blast.get(f"{unit}_per_second")
                if rate is not None:
                    metrics[f"fabric/{config}@{size} {unit}/s"] = float(rate)
        speedup = fabric.get("relaxed_speedup")
        if speedup is not None:
            metrics[f"fabric/relaxed-speedup@{size} x"] = float(speedup)
        # The wall sweep is its own metric family (elapsed time, not CPU
        # time); only the within-entry speedup ratios are gated — absolute
        # wall seconds are runner-dependent noise.  A skipped sweep
        # (< 4 cores) emits nothing.
        wall = _wall_block(fabric)
        if wall is not None:
            wall_size = (
                f"{wall.get('segments', fabric.get('segments', '?'))}"
                f"x{wall.get('frames_per_pair', '?')}"
            )
            for config, value in (wall.get("speedups") or {}).items():
                metrics[f"fabric/wall-speedup/{config}@{wall_size} x"] = float(value)
    # Failover episodes (``bench_failover.py``): only the execution
    # throughput is gated — the simulated convergence figures recorded next
    # to it are *results*, pinned by the test suite, not performance.
    # The size key carries the offered load when present (``8b/2h`` = 8
    # bridges, 2 local hosts per segment) so a loaded episode never ratios
    # against an unloaded baseline.
    failover = entry.get("failover")
    if isinstance(failover, dict):
        size = f"{failover.get('bridges', '?')}b"
        local_hosts = failover.get("local_hosts")
        if local_hosts:
            size = f"{size}/{local_hosts}h"
        for config, result in (failover.get("configs") or {}).items():
            rate = result.get("records_per_second")
            if rate is not None:
                metrics[f"failover/{config}@{size} records/s"] = float(rate)
        speedup = failover.get("relaxed_speedup")
        if speedup is not None:
            metrics[f"failover/relaxed-speedup@{size} x"] = float(speedup)
    # Population fleets (``bench_population.py``): aggregate frames/s per
    # engine configuration, sized by station count so a reduced CI smoke
    # never ratios against a full-scale baseline.  The latency and RSS
    # figures recorded next to the rates are simulated results / capacity
    # numbers pinned by the seed, not performance, and are not gated.
    population = entry.get("population")
    if isinstance(population, dict):
        for scale, block in (population.get("scales") or {}).items():
            size = f"{block.get('stations', scale)}st"
            for config, result in (block.get("configs") or {}).items():
                rate = result.get("frames_per_second")
                if rate is not None:
                    metrics[f"population/{config}@{size} frames/s"] = float(rate)
            speedup = block.get("relaxed_speedup")
            if speedup is not None:
                metrics[f"population/relaxed-speedup@{size} x"] = float(speedup)
    return metrics


def pair_metrics(history: list) -> dict:
    """Pair every *fresh* metric's newest value with its previous occurrence.

    Walks the whole history so entries of different kinds interleave freely:
    each metric is compared against the last *earlier* entry that carried it.
    Only metrics produced by the freshest runs — the last two entries, which
    is what one CI run appends (trace-overhead + sharded-fabric) — are gated;
    a retired metric whose occurrences are all historical is skipped rather
    than compared against two frozen committed values forever.

    Returns:
        {metric name: (baseline value, fresh value)}; metrics seen only once
        or only in older entries are omitted.
    """
    newest: dict = {}
    previous: dict = {}
    for entry in history:
        for name, value in collect_metrics(entry).items():
            if name in newest:
                previous[name] = newest[name]
            newest[name] = value
    fresh_names = set()
    for entry in history[-2:]:
        fresh_names.update(collect_metrics(entry))
    return {
        name: (previous[name], newest[name])
        for name in newest
        if name in previous and name in fresh_names
    }


def compare(history: list, threshold: float) -> list:
    """Return [(metric, base, new, ratio, ok)] for every paired metric."""
    pairs = pair_metrics(history)
    single = sorted(
        {
            name
            for entry in history
            for name in collect_metrics(entry)
            if name not in pairs
        }
    )
    if single:
        print("perf gate: metrics without a fresh+baseline pair (not gated):")
        for name in single:
            print(f"  ?    {name}")
    rows = []
    for name in sorted(pairs):
        base, new = pairs[name]
        ratio = new / base if base > 0 else float("inf")
        rows.append((name, base, new, ratio, ratio >= 1.0 - threshold))
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="maximum tolerated fractional regression (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--results",
        type=Path,
        default=RESULTS_PATH,
        help="path to the benchmark history JSON",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.threshold < 1.0:
        parser.error("--threshold must be in (0, 1)")

    try:
        history = json.loads(args.results.read_text())
    except (OSError, ValueError) as exc:
        print(f"perf gate: cannot read {args.results}: {exc}")
        return 1
    if not isinstance(history, list) or not history:
        print(f"perf gate: {args.results} holds no benchmark entries")
        return 1
    if len(history) < 2:
        print("perf gate: no committed baseline to compare against; passing")
        return 0

    rows = compare(history, args.threshold)
    floor_rows = check_floors(history)
    if not rows and not floor_rows:
        print("perf gate: no metric has both a fresh and a baseline value; passing")
        return 0

    failed = []
    if rows:
        width = max(len(name) for name, *_ in rows)
        print(
            f"perf gate: newest value of each metric vs its previous occurrence "
            f"({len(history)} entries), threshold -{args.threshold:.0%}"
        )
        for name, base, new, ratio, ok in rows:
            marker = "ok  " if ok else "FAIL"
            print(f"  {marker} {name:<{width}}  {base:>12,.0f} -> {new:>12,.0f}  ({ratio:6.2%})")
            if not ok:
                failed.append(name)
    if floor_rows:
        width = max(len(name) for name, *_ in floor_rows)
        print(
            "perf gate: relaxed-over-strict ratio floors "
            "(best of the two newest occurrences per workload)"
        )
        for name, ratio, floor, ok in floor_rows:
            marker = "ok  " if ok else "FAIL"
            print(f"  {marker} {name:<{width}}  {ratio:5.2f}x (floor {floor:.1f}x)")
            if not ok:
                failed.append(name)
    if failed:
        print(f"perf gate: {len(failed)} metric(s) regressed or under floor:")
        for name in failed:
            print(f"  - {name}")
        return 1
    print(f"perf gate: all {len(rows) + len(floor_rows)} checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
