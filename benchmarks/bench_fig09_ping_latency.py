"""Figure 9 — ping latencies.

Reproduces the paper's latency figure: ICMP echo round-trip time versus
packet size for the three configurations of Figures 7/8 — direct connection,
C buffered repeater, and the active bridge — and checks the qualitative
shape: the active bridge is the slowest, the direct connection the fastest,
and latency grows with packet size.  The paper additionally attributes
~0.34 ms per frame to the Caml code; the cost model's interpreter component
is reported alongside for comparison.
"""

from __future__ import annotations

from _harness import emit, run_once

from repro.analysis.figures import render_series
from repro.costs.model import CostModel
from repro.measurement.ping import ping_sweep
from repro.scenario import run_scenario

#: The packet sizes on the paper's x-axis (Figure 9).
PACKET_SIZES = [32, 512, 1024, 2048, 4096]

#: Echoes per size (the paper uses ping's default of many; a handful is
#: enough for a deterministic simulator).
COUNT = 10


def _clamp(size: int) -> int:
    # ICMP payloads above the single-frame maximum cannot be carried by the
    # minimal (non-fragmenting) IP layer; the largest point of the paper's
    # sweep is represented by the largest single-frame echo instead.
    return min(size, 1400)


def measure_all():
    """Run the three-configuration ping sweep; returns {label: {size: mean ms}}."""
    results = {}
    for label, scenario in (
        ("direct connection", "pair/direct"),
        ("C buffered repeater", "pair/repeater"),
        ("active bridge", "pair/active-bridge"),
    ):
        setup = run_scenario(scenario, seed=1).as_pair()
        sweep = ping_sweep(
            setup.network.sim,
            setup.left,
            setup.right.ip,
            [_clamp(size) for size in PACKET_SIZES],
            start_time=setup.ready_time,
            count=COUNT,
            interval=0.05,
        )
        results[label] = {
            size: sweep[_clamp(size)].mean_rtt_ms() for size in PACKET_SIZES
        }
    return results


def test_fig09_ping_latency(benchmark):
    results = run_once(benchmark, measure_all)

    series = {label: [results[label][size] for size in PACKET_SIZES] for label in results}
    emit(
        "Figure 9 -- Ping latencies (mean RTT, milliseconds)",
        render_series("packet size (bytes)", PACKET_SIZES, series, y_format="{:.3f}"),
    )
    model = CostModel()
    emit(
        "Per-frame cost attribution",
        "interpreted switchlet cost at 1024 B: "
        f"{model.switchlet_frame_cost(1024) * 1000:.3f} ms per frame "
        "(paper: ~0.34 ms added per frame by the Caml code)",
    )

    # Shape checks (the paper's qualitative result).
    for size in PACKET_SIZES:
        assert (
            results["active bridge"][size]
            > results["C buffered repeater"][size]
            > results["direct connection"][size]
        )
    for label in results:
        assert results[label][PACKET_SIZES[-1]] > results[label][PACKET_SIZES[0]]
    # The bridge's added latency over the direct path is dominated by the
    # per-frame software cost (sub-millisecond per direction, not tens of ms).
    added = results["active bridge"][1024] - results["direct connection"][1024]
    assert 0.5 < added < 5.0
