"""Topology construction.

:class:`NetworkBuilder` allocates MAC and IP addresses, creates LAN segments
and hosts, attaches arbitrary stations (active bridges, baseline repeaters)
and produces a :class:`Network` handle that experiments drive.  The paper's
concrete configurations (Figures 7 and 8, and the Section 7.5 ring) are built
on top of this by :mod:`repro.measurement.setups`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.costs.model import CostModel
from repro.ethernet.mac import MacAddress
from repro.exceptions import TopologyError
from repro.lan.host import Host
from repro.lan.segment import (
    DEFAULT_BANDWIDTH_BPS,
    DEFAULT_PROPAGATION_DELAY,
    Segment,
)
from repro.netstack.ip import IPv4Address
from repro.sim.engine import Simulator


@dataclass
class Network:
    """The assembled network: simulator plus named components.

    Attributes:
        sim: the shared simulator.
        segments: LAN segments by name.
        hosts: end hosts by name.
        stations: every non-host station (active bridges, repeaters) by name.
        cost_model: the cost model shared by default across components.
    """

    sim: Simulator
    cost_model: CostModel
    segments: Dict[str, Segment] = field(default_factory=dict)
    hosts: Dict[str, Host] = field(default_factory=dict)
    stations: Dict[str, object] = field(default_factory=dict)

    def segment(self, name: str) -> Segment:
        """Look up a segment by name (raises :class:`TopologyError` if absent)."""
        try:
            return self.segments[name]
        except KeyError as exc:
            raise TopologyError(f"no segment named {name!r}") from exc

    def host(self, name: str) -> Host:
        """Look up a host by name."""
        try:
            return self.hosts[name]
        except KeyError as exc:
            raise TopologyError(f"no host named {name!r}") from exc

    def station(self, name: str) -> object:
        """Look up a non-host station (bridge, repeater) by name."""
        try:
            return self.stations[name]
        except KeyError as exc:
            raise TopologyError(f"no station named {name!r}") from exc

    def sim_for(self, name: str) -> Simulator:
        """The engine the named component is placed on.

        Under the sharded fabric this resolves the component's shard; with a
        plain :class:`Simulator` it is just the shared simulator.
        """
        resolver = getattr(self.sim, "sim_for", None)
        if resolver is None:
            return self.sim
        return resolver(name)

    def run_until(self, until_seconds: float) -> int:
        """Convenience passthrough to :meth:`Simulator.run_until`."""
        return self.sim.run_until(until_seconds)


class NetworkBuilder:
    """Incrementally build a :class:`Network`.

    Args:
        seed: simulator seed (deterministic experiments).
        cost_model: cost constants shared by hosts and stations created
            through this builder; ``None`` selects the calibrated defaults.
        subnet_prefix: first three octets of the IPv4 addresses handed to
            hosts.  The fourth octet is allocated sequentially from 1; when
            it exhausts (beyond 254) allocation rolls into the next /24 by
            incrementing the third octet, and into the next /16 by
            incrementing the second octet when the third exhausts, so
            multi-hundred-LAN topologies (the 256-LAN sharded-fabric
            sweeps) and 65k+-station populations get unique addresses
            without any configuration.
        trace_sinks: optional trace sinks for the simulator (e.g. a bounded
            :class:`~repro.sim.trace.RingBufferSink` for very long runs);
            ``None`` keeps the default :class:`~repro.sim.trace.ListSink`.
            Ignored when ``engine`` is given (the engine owns its sinks).
        engine: an already-constructed engine to build on instead of a fresh
            :class:`Simulator` — in particular a
            :class:`~repro.sim.fabric.ShardedSimulator`, whose ``sim_for``
            placement decides which shard each created component runs on.
    """

    def __init__(
        self,
        seed: int = 0,
        cost_model: Optional[CostModel] = None,
        subnet_prefix: str = "10.0.0",
        trace_sinks=None,
        engine=None,
    ) -> None:
        self.sim = engine if engine is not None else Simulator(
            seed=seed, trace_sinks=trace_sinks
        )
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.subnet_prefix = subnet_prefix
        self._network = Network(sim=self.sim, cost_model=self.cost_model)
        self._next_station_id = 1
        self._next_host_octet = 1

    # ------------------------------------------------------------------
    # Address allocation
    # ------------------------------------------------------------------

    def allocate_mac(self) -> MacAddress:
        """Allocate the next locally-administered MAC address."""
        mac = MacAddress.locally_administered(self._next_station_id)
        self._next_station_id += 1
        return mac

    def allocate_ip(self) -> IPv4Address:
        """Allocate the next host IPv4 address.

        Addresses fill the builder's subnet (``prefix.1`` .. ``prefix.254``)
        and then roll into successive /24s by incrementing the prefix's
        third octet — and into successive /16s by incrementing the second
        octet when the third exhausts — so the first 254 hosts keep their
        historical addresses, the 256-LAN sweeps keep their /24 roll, and
        population-scale fleets (65k+ stations) keep allocating without any
        configuration.  Exhausting the *second* octet is true exhaustion
        and still raises.
        """
        if self._next_host_octet > 254:
            first, _, rest = self.subnet_prefix.partition(".")
            second_text, _, third_text = rest.partition(".")
            second, third = int(second_text), int(third_text)
            third += 1
            if third > 254:
                second += 1
                third = 0
                if second > 254:
                    raise TopologyError(
                        f"address space exhausted rolling past subnet "
                        f"{self.subnet_prefix}"
                    )
            self.subnet_prefix = f"{first}.{second}.{third}"
            self._next_host_octet = 1
        address = IPv4Address.from_string(f"{self.subnet_prefix}.{self._next_host_octet}")
        self._next_host_octet += 1
        return address

    # ------------------------------------------------------------------
    # Components
    # ------------------------------------------------------------------

    def add_segment(
        self,
        name: str,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        propagation_delay: float = DEFAULT_PROPAGATION_DELAY,
    ) -> Segment:
        """Create a LAN segment."""
        if name in self._network.segments:
            raise TopologyError(f"segment {name!r} already exists")
        segment = Segment(
            self._network.sim_for(name),
            name,
            bandwidth_bps=bandwidth_bps,
            propagation_delay=propagation_delay,
        )
        self._network.segments[name] = segment
        return segment

    def add_host(
        self,
        name: str,
        segment: str,
        ip: Optional[str] = None,
        cost_model: Optional[CostModel] = None,
    ) -> Host:
        """Create a host and attach it to ``segment``."""
        if name in self._network.hosts:
            raise TopologyError(f"host {name!r} already exists")
        address = (
            IPv4Address.from_string(ip) if ip is not None else self.allocate_ip()
        )
        host = Host(
            self._network.sim_for(name),
            name,
            mac=self.allocate_mac(),
            ip=address,
            cost_model=cost_model if cost_model is not None else self.cost_model,
        )
        host.attach(self._network.segment(segment))
        self._network.hosts[name] = host
        return host

    def register_station(self, name: str, station: object) -> None:
        """Record a non-host station (active bridge, repeater) in the network.

        The station object is created by higher-level code (it needs classes
        from :mod:`repro.core` or :mod:`repro.baselines`, which sit above this
        package); the builder just tracks it and can hand out addresses for
        its NICs via :meth:`allocate_mac`.
        """
        if name in self._network.stations:
            raise TopologyError(f"station {name!r} already exists")
        self._network.stations[name] = station

    # ------------------------------------------------------------------
    # Finalization helpers
    # ------------------------------------------------------------------

    def populate_static_arp(self, host_names: Optional[Iterable[str]] = None) -> None:
        """Install static ARP entries between the named hosts (all hosts by default).

        Latency measurements want the first ping to be representative, so the
        benchmark setups pre-populate ARP exactly as a long-running testbed
        would have it warm.
        """
        names: List[str] = (
            list(host_names) if host_names is not None else list(self._network.hosts)
        )
        for name in names:
            host = self._network.host(name)
            for other_name in names:
                if other_name == name:
                    continue
                other = self._network.host(other_name)
                host.stack.add_static_arp(other.ip, other.mac)

    def build(self) -> Network:
        """Return the assembled :class:`Network`."""
        return self._network
