"""The paper's experimental configurations, as thin wrappers over the fabric.

Three two-host configurations (Figures 7 and 8):

* **direct** — two hosts on one 100 Mb/s LAN (the "best case" baseline),
* **repeater** — two LANs joined by the C buffered repeater,
* **bridged** — two LANs joined by the active bridge running the switchlet
  stack (dumb → learning → spanning tree),
* **static** — two LANs joined by a fixed-function learning bridge (the
  DEC-LANbridge-like device; used by the ablation benchmark),

plus the Section 7.5 **ring**: a chain of active bridges between the two
NICs of a measurement host, each bridge running the DEC protocol with the
IEEE protocol loaded-but-idle and the control switchlet armed.

Since the declarative scenario fabric landed (:mod:`repro.scenario`), every
configuration here is a registered :class:`~repro.scenario.spec.ScenarioSpec`
(``pair/direct``, ``pair/repeater``, ``pair/active-bridge``,
``pair/static-bridge``, ``ring``) compiled through
:func:`~repro.scenario.runner.run_scenario`; these functions remain as the
stable, ergonomic entry points the benchmarks and tests have always used.
"""

from __future__ import annotations

from typing import Optional

from repro.costs.model import CostModel
from repro.scenario import run_scenario
from repro.scenario.compile import PairSetup, RingSetup
from repro.scenario.spec import BASIC_WARMUP, SPANNING_TREE_WARMUP

__all__ = [
    "PairSetup",
    "RingSetup",
    "SPANNING_TREE_WARMUP",
    "BASIC_WARMUP",
    "build_direct_pair",
    "build_repeater_pair",
    "build_bridged_pair",
    "build_static_bridge_pair",
    "build_ring",
    "PAIR_BUILDERS",
]


# ---------------------------------------------------------------------------
# Two-host configurations
# ---------------------------------------------------------------------------


def build_direct_pair(
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    trace_sinks=None,
) -> PairSetup:
    """Two hosts on a single LAN (Figure 8's baseline setup)."""
    return run_scenario(
        "pair/direct", seed=seed, cost_model=cost_model, trace_sinks=trace_sinks
    ).as_pair()


def build_repeater_pair(
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    trace_sinks=None,
) -> PairSetup:
    """Two LANs joined by the C buffered repeater."""
    return run_scenario(
        "pair/repeater", seed=seed, cost_model=cost_model, trace_sinks=trace_sinks
    ).as_pair()


def build_bridged_pair(
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    include_spanning_tree: bool = True,
    include_learning: bool = True,
    trace_sinks=None,
) -> PairSetup:
    """Two LANs joined by the active bridge (Figure 7's bridging setup).

    The bridge is programmed exactly as in Section 5.3: the dumb bridge
    switchlet, then (optionally) the learning switchlet, then (optionally)
    the 802.1D spanning-tree switchlet.
    """
    params = {}
    if not include_spanning_tree:
        params["include_spanning_tree"] = False
    if not include_learning:
        params["include_learning"] = False
    return run_scenario(
        "pair/active-bridge",
        seed=seed,
        cost_model=cost_model,
        trace_sinks=trace_sinks,
        params=params,
    ).as_pair()


def build_static_bridge_pair(
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    trace_sinks=None,
) -> PairSetup:
    """Two LANs joined by a fixed-function learning bridge (ablation baseline)."""
    return run_scenario(
        "pair/static-bridge", seed=seed, cost_model=cost_model, trace_sinks=trace_sinks
    ).as_pair()


#: The three configurations of the paper's Figures 9 and 10, by label.
PAIR_BUILDERS = {
    "direct": build_direct_pair,
    "c-repeater": build_repeater_pair,
    "active-bridge": build_bridged_pair,
}


# ---------------------------------------------------------------------------
# The Section 7.5 ring
# ---------------------------------------------------------------------------


def build_ring(
    n_bridges: int = 3,
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    with_control: bool = True,
    suppression_period: float = 30.0,
    validation_delay: float = 60.0,
    buggy_new_protocol: bool = False,
    trace_sinks=None,
) -> RingSetup:
    """A chain of active bridges between two end segments.

    Each bridge runs: dumb bridge, learning bridge, the DEC spanning tree
    (started), the IEEE spanning tree (loaded, idle), and — when
    ``with_control`` is true — the transition control switchlet.  The
    measurement host of Section 7.5 closes the chain into a ring with its two
    NICs but does not forward, so the topology the bridges see is loop-free.

    Args:
        n_bridges: number of bridges in the chain (the paper uses three).
        buggy_new_protocol: ship the deliberately faulty 802.1D variant as
            the new protocol, to exercise the automatic fallback.
    """
    return run_scenario(
        "ring",
        seed=seed,
        cost_model=cost_model,
        trace_sinks=trace_sinks,
        params={
            "n_bridges": n_bridges,
            "with_control": with_control,
            "suppression_period": suppression_period,
            "validation_delay": validation_delay,
            "buggy_new_protocol": buggy_new_protocol,
        },
    ).as_ring()
