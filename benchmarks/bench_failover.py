"""Failover benchmark: spanning-tree reconvergence on the closed bridge ring.

Drives the ``ring/failover`` catalog scenario — a physical loop of active
bridges running the IEEE 802.1D spanning tree with the standard 2/20/15 s
timers — through a complete failure episode: warm-up to a converged tree, a
scripted ``link-down`` on a forwarding segment (the :mod:`repro.faults`
subsystem), a ping train crossing the outage, and the reconvergence measured
externally by the :class:`~repro.measurement.convergence.ConvergenceProbe`:

* **detection time** — max-age expiry on the bridges that lose the root's
  hellos (~``max_age`` after the failure);
* **reconvergence time** — the blocked port walking listening → learning →
  forwarding (two forward delays more), after which traffic reroutes the
  long way around the ring;
* **frames lost** — everything the dead segment swallowed meanwhile.

The episode runs *under offered load*: every ring segment carries a local
host pair exchanging pings throughout (see ``LOCAL_HOSTS``), because the
paper's failover story is about traffic that keeps flowing — and because a
control-plane-only episode measures nothing but the conservative
scheduler's worst case (one long cross-shard BPDU/echo chain with empty
windows).

Each engine configuration (single engine, strict shards, relaxed shards)
replays the *same* fault timeline; the benchmark asserts the live counters
and the convergence report are identical across configurations before
reporting — the fault subsystem's engine-mode-invariance contract, enforced
at benchmark time exactly as the sharded-fabric sweeps do.

The committed ``BENCH_trace.json`` entry records the simulated convergence
figures plus each configuration's trace-records-per-CPU-second execution
rate and the ``relaxed_speedup`` headline ratio (median of per-round
relaxed/strict pairings); ``perf_gate.py`` tracks the ``failover/*``
records/s metrics and the ratio against their previous occurrences, and
holds the ratio at the >= 1.0 floor (the convergence times are *results*,
pinned by tests, not throughput — they are recorded but not gated).

Run directly::

    PYTHONPATH=src python benchmarks/bench_failover.py [--bridges N]
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import time
from pathlib import Path

from repro.measurement.convergence import ConvergenceProbe
from repro.measurement.ping import PingRunner
from repro.scenario import run_scenario

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_trace.json"

#: Engine configurations measured: (sync, shards).
CONFIGS = (("strict", 1), ("strict", 4), ("relaxed", 4))

#: Standard 802.1D timers — the paper's timescales.
TIMERS = {"hello_time": 2.0, "max_age": 20.0, "forward_delay": 15.0}

#: When the scripted link failure fires — 5 s after the tree is ready
#: (ready_time is 35 s with the standard timers), so the ping train records
#: a healthy pre-fault baseline before the outage.
FAIL_AT = 40.0

#: Ping cadence across the outage (one echo per quarter second).
PING_INTERVAL = 0.25

#: Offered load riding the episode: every ring segment carries one local
#: host pair exchanging pings for the whole run.  The paper measures
#: failover on a *loaded* network — reconvergence matters because traffic
#: is flowing — and a control-plane-only episode (hellos plus one echo
#: train) degenerates into the conservative scheduler's worst case: long
#: cross-shard causal chains with nothing else in each window.  The local
#: pairs give every shard wire service to batch between BPDU hops, which
#: is the traffic mix the express/batched machinery exists for.
LOCAL_HOSTS = 2
LOCAL_INTERVAL = 0.5
LOCAL_PAYLOAD = 512


def config_key(sync: str, shards: int) -> str:
    return f"shards={shards}" if sync == "strict" else f"shards={shards}/{sync}"


#: Episode repetitions per configuration; the fastest CPU time is kept, the
#: same hygiene as ``bench_sharded_fabric.wire_blast`` — a single ~0.1 s
#: sample would hand the 20 % perf gate to scheduler noise.  Passes are
#: *interleaved* across configurations (round-robin, not per-config blocks)
#: so CPU frequency drift over the run hits every configuration equally —
#: the relaxed-over-strict ratio floor would otherwise be at the mercy of
#: which configuration happened to run during a fast window.
PASSES = 7


def run_episode(bridges: int, shards: int, sync: str) -> dict:
    """One full failure episode on one engine configuration."""
    run = run_scenario(
        "ring/failover",
        params={"n_bridges": bridges, "fail_at": FAIL_AT, "recover_at": 0.0,
                "hosts_per_segment": LOCAL_HOSTS, **TIMERS},
        shards=shards,
        sync=sync if shards > 1 else None,
    )
    # Ride through warm-up, outage, detection (max_age) and both forward
    # delays, plus settle margin.
    horizon = FAIL_AT + TIMERS["max_age"] + 2 * TIMERS["forward_delay"] + 5.0
    count = int((horizon - run.ready_time) / PING_INTERVAL) - 4
    local_count = int((horizon - 2.0) / LOCAL_INTERVAL)
    gc.collect()
    gc.disable()
    cpu_start = time.process_time()
    wall_start = time.perf_counter()
    # Background load from t=1s: pre-convergence the non-forwarding bridge
    # ports drop the local exchanges (listening/learning states), so the
    # pairs season the warm-up too without ever flooding the open loop.
    load = [
        PingRunner(
            run.sim, run.host(f"seg{index}h1"), run.host(f"seg{index}h2").ip,
            payload_size=LOCAL_PAYLOAD, count=local_count,
            interval=LOCAL_INTERVAL, identifier=0xB000 + index,
        )
        for index in range(bridges)
    ]
    for runner in load:
        runner.start(1.0)
    run.warm_up()
    probe = ConvergenceProbe(run.sim, network=run.network, fault_time=FAIL_AT)
    probe.start()
    ping = PingRunner(
        run.sim, run.host("left"), run.host("right").ip,
        payload_size=64, count=count, interval=PING_INTERVAL, identifier=0xFA11,
    )
    ping.start(run.sim.now + 0.01)
    run.sim.run_until(horizon)
    cpu_elapsed = time.process_time() - cpu_start
    wall_elapsed = time.perf_counter() - wall_start
    gc.enable()
    report = probe.report()
    records = len(run.sim.trace)
    return {
        "shards": shards,
        "sync": sync if shards > 1 else "single",
        "records": records,
        "seconds_cpu": round(cpu_elapsed, 3),
        "seconds_wall": round(wall_elapsed, 3),
        "records_per_second": round(records / cpu_elapsed) if cpu_elapsed else 0,
        "events_dispatched": run.sim.events_dispatched,
        "convergence": report.summary(),
        "ping": {"sent": ping.result.sent, "received": ping.result.received},
        "load": {
            "pairs": len(load),
            "sent": sum(runner.result.sent for runner in load),
            "received": sum(runner.result.received for runner in load),
        },
        "counters": dict(run.sim.trace.counters.by_category_source),
    }


def run_sweep(bridges: int) -> dict:
    # Round-robin the passes (see PASSES) and keep each configuration's
    # fastest sample; every pass of every configuration must reproduce the
    # same counters and convergence report — the episode is deterministic,
    # only the timing varies.
    results: dict = {}
    round_rates: dict = {}
    baseline_counters = None
    baseline_convergence = None
    for _ in range(PASSES):
        for sync, shards in CONFIGS:
            sample = run_episode(bridges, shards, sync)
            counters = sample.pop("counters")
            if baseline_counters is None:
                baseline_counters = counters
                baseline_convergence = sample["convergence"]
            else:
                # Same timeline, same episode, every engine mode: the fault
                # subsystem's invariance contract, asserted before reporting.
                assert counters == baseline_counters, (
                    f"{sync} shards={shards} diverged from the single engine"
                )
                assert sample["convergence"] == baseline_convergence, (
                    f"{sync} shards={shards} convergence report diverged"
                )
            key = config_key(sync, shards)
            round_rates.setdefault(key, []).append(sample["records_per_second"])
            best = results.get(key)
            if best is None or sample["records_per_second"] > best["records_per_second"]:
                results[key] = sample
    for sync, shards in CONFIGS:
        key = config_key(sync, shards)
        result = results[key]
        conv = result["convergence"]
        print(
            f"{bridges}-bridge ring {key}: detection {conv['detection_s']:.1f}s, "
            f"reconvergence {conv['reconvergence_s']:.1f}s, "
            f"{conv['frames_lost']} frames lost; "
            f"{result['records']} records in {result['seconds_cpu']:.2f} cpu-s "
            f"= {result['records_per_second']:,} records/s"
        )
    sweep = {
        "bridges": bridges,
        "fail_at": FAIL_AT,
        "timers": TIMERS,
        "local_hosts": LOCAL_HOSTS,
        "local_interval": LOCAL_INTERVAL,
        "detection_s": baseline_convergence["detection_s"],
        "reconvergence_s": baseline_convergence["reconvergence_s"],
        "frames_lost": baseline_convergence["frames_lost"],
        "configs": results,
    }
    # Headline ratio, mirroring bench_sharded_fabric: relaxed over strict
    # records/s at the same shard count.  perf_gate holds this at >= 1.0 —
    # the express/batched-service machinery must pay for its windows.
    # The ratio pairs samples *per round* (adjacent in time, so CPU
    # frequency drift hits both sides of each ratio equally) and takes the
    # median across rounds: the ratio of per-config bests would compare
    # samples from different frequency windows and swing wildly on
    # frequency-scaled machines.
    for sync, shards in CONFIGS:
        if sync != "relaxed":
            continue
        strict_rates = round_rates.get(config_key("strict", shards))
        relaxed_rates = round_rates[config_key(sync, shards)]
        if strict_rates:
            ratios = sorted(
                relaxed / strict
                for relaxed, strict in zip(relaxed_rates, strict_rates)
            )
            ratio = ratios[len(ratios) // 2]
            sweep["relaxed_speedup"] = round(ratio, 2)
            print(
                f"{bridges}-bridge ring: relaxed is {ratio:.2f}x strict "
                f"records/s at shards={shards} (median of per-round ratios)"
            )
    return sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bridges", type=int, default=8,
        help="ring size (bridges = LAN segments in the loop)",
    )
    parser.add_argument(
        "--no-append", action="store_true",
        help="print results without touching BENCH_trace.json",
    )
    args = parser.parse_args()
    if args.bridges < 3:
        parser.error("--bridges must be at least 3")

    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "failover": run_sweep(args.bridges),
    }
    if args.no_append:
        return
    history = []
    if RESULTS_PATH.exists():
        try:
            history = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            history = []
    history.append(entry)
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n")
    print(f"results appended to {RESULTS_PATH}")


if __name__ == "__main__":
    main()
