"""Tests for the switchlet-side frame helpers and the two BPDU wire formats."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.switchlets.bpdu import ConfigBpdu, DecBpdu
from repro.switchlets.framefmt import FrameFmt

MAC_A = bytes.fromhex("020000000001")
MAC_B = bytes.fromhex("020000000002")


class TestFrameFmt:
    def test_build_and_parse(self):
        pkt = FrameFmt.build(MAC_B, MAC_A, 0x0800, b"payload")
        assert FrameFmt.dst_bytes(pkt) == MAC_B
        assert FrameFmt.src_bytes(pkt) == MAC_A
        assert FrameFmt.ethertype(pkt) == 0x0800
        assert FrameFmt.payload(pkt) == b"payload"

    def test_mac_string_roundtrip(self):
        text = FrameFmt.mac_to_str(MAC_A)
        assert text == "02:00:00:00:00:01"
        assert FrameFmt.str_to_mac(text) == MAC_A

    def test_bad_mac_string(self):
        with pytest.raises(ValueError):
            FrameFmt.str_to_mac("02:00:00")

    def test_group_bit(self):
        assert FrameFmt.is_group(bytes.fromhex("0180c2000000"))
        assert FrameFmt.is_group(bytes.fromhex("ffffffffffff"))
        assert not FrameFmt.is_group(MAC_A)

    def test_dst_src_strings(self):
        pkt = FrameFmt.build(MAC_B, MAC_A, 0x0800, b"")
        assert FrameFmt.dst_str(pkt) == "02:00:00:00:00:02"
        assert FrameFmt.src_str(pkt) == "02:00:00:00:00:01"

    @given(st.binary(min_size=6, max_size=6))
    def test_mac_roundtrip_any(self, mac):
        assert FrameFmt.str_to_mac(FrameFmt.mac_to_str(mac)) == mac


def _config_bpdu(**overrides):
    fields = dict(
        root_priority=0x8000,
        root_mac=MAC_A,
        root_path_cost=19,
        bridge_priority=0x8000,
        bridge_mac=MAC_B,
        port_id=2,
        message_age=1.0,
        max_age=20.0,
        hello_time=2.0,
        forward_delay=15.0,
    )
    fields.update(overrides)
    return ConfigBpdu(**fields)


class TestConfigBpdu:
    def test_roundtrip(self):
        bpdu = _config_bpdu()
        decoded = ConfigBpdu.decode(bpdu.encode())
        assert decoded.root_id() == bpdu.root_id()
        assert decoded.bridge_id() == bpdu.bridge_id()
        assert decoded.root_path_cost == 19
        assert decoded.port_id == 2
        assert decoded.max_age == pytest.approx(20.0)
        assert decoded.forward_delay == pytest.approx(15.0)

    def test_encoded_length(self):
        assert len(_config_bpdu().encode()) == ConfigBpdu.ENCODED_LENGTH

    def test_topology_change_flag(self):
        decoded = ConfigBpdu.decode(_config_bpdu(topology_change=True).encode())
        assert decoded.topology_change

    def test_time_resolution(self):
        decoded = ConfigBpdu.decode(_config_bpdu(message_age=1.25).encode())
        assert decoded.message_age == pytest.approx(1.25)

    def test_short_input_rejected(self):
        with pytest.raises(ValueError):
            ConfigBpdu.decode(b"\x00" * 10)

    def test_wrong_protocol_rejected(self):
        data = bytearray(_config_bpdu().encode())
        data[0] = 0xEE
        with pytest.raises(ValueError):
            ConfigBpdu.decode(bytes(data))

    def test_dec_pdu_is_not_a_valid_config_bpdu(self):
        dec = DecBpdu(0x8000, MAC_A, 0, 0x8000, MAC_B, 1)
        with pytest.raises(ValueError):
            ConfigBpdu.decode(dec.encode())

    @given(
        st.integers(min_value=0, max_value=0xFFFF),
        st.binary(min_size=6, max_size=6),
        st.integers(min_value=0, max_value=0xFFFFFF),
        st.integers(min_value=0, max_value=0xFFFF),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_any(self, priority, mac, cost, port_id):
        bpdu = _config_bpdu(
            root_priority=priority, root_mac=mac, root_path_cost=cost, port_id=port_id
        )
        decoded = ConfigBpdu.decode(bpdu.encode())
        assert decoded.root_priority == priority
        assert decoded.root_mac == mac
        assert decoded.root_path_cost == cost
        assert decoded.port_id == port_id


class TestDecBpdu:
    def test_roundtrip(self):
        pdu = DecBpdu(0x8000, MAC_A, 38, 0x9000, MAC_B, 7, message_age=2.0)
        decoded = DecBpdu.decode(pdu.encode())
        assert decoded.root_id() == (0x8000, MAC_A)
        assert decoded.bridge_id() == (0x9000, MAC_B)
        assert decoded.root_path_cost == 38
        assert decoded.port_id == 7

    def test_encoded_length(self):
        pdu = DecBpdu(0x8000, MAC_A, 0, 0x8000, MAC_B, 1)
        assert len(pdu.encode()) == DecBpdu.ENCODED_LENGTH

    def test_formats_are_incompatible(self):
        config = ConfigBpdu(0x8000, MAC_A, 0, 0x8000, MAC_B, 1)
        with pytest.raises(ValueError):
            DecBpdu.decode(config.encode())

    def test_topology_change_flag(self):
        pdu = DecBpdu(0x8000, MAC_A, 0, 0x8000, MAC_B, 1, topology_change=True)
        assert DecBpdu.decode(pdu.encode()).topology_change

    def test_short_input_rejected(self):
        with pytest.raises(ValueError):
            DecBpdu.decode(b"\xe1\x01")

    @given(
        st.integers(min_value=0, max_value=0xFFFF),
        st.binary(min_size=6, max_size=6),
        st.integers(min_value=0, max_value=0xFFFF),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_any(self, priority, mac, cost):
        pdu = DecBpdu(priority, mac, cost, 0x8000, MAC_B, 1)
        decoded = DecBpdu.decode(pdu.encode())
        assert decoded.root_priority == priority
        assert decoded.root_mac == mac
        assert decoded.root_path_cost == cost

    def test_same_logical_content_different_bytes(self):
        config = ConfigBpdu(0x8000, MAC_A, 19, 0x8000, MAC_B, 1)
        dec = DecBpdu(0x8000, MAC_A, 19, 0x8000, MAC_B, 1)
        assert config.root_id() == dec.root_id()
        assert config.encode() != dec.encode()
