"""``Safeunix`` — the heavily thinned Unix module.

The paper (Section 5.2.1): "``Safeunix`` is a very heavily thinned version of
the Unix module from Caml.  Our version of Safeunix provides access to some
time related functions and to some types that are needed for networking.
Since we provide no functions for generating output as part of Safeunix, we
provide a module called Log ..."

Accordingly the reproduction's ``Safeunix`` exposes only:

* ``gettimeofday`` — simulated wall-clock time (the agility measurement in
  Section 7.5 is built from exactly this call);
* ``SockAddr`` — the address record attached to every received packet
  (Figure 4's ``Safeunix.sockaddr``).

There is no file, process, socket or environment access.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import Simulator


@dataclass(frozen=True)
class SockAddr:
    """The address record carried in :class:`repro.core.unixnet.Packet`.

    Attributes:
        interface: name of the interface the packet arrived on or is sent to
            (e.g. ``"eth0"``).
        mac: the peer MAC address rendered as a string (``"aa:bb:..."``);
            strings keep the type trivially safe to hand to switchlets.
    """

    interface: str
    mac: str

    def describe(self) -> str:
        """Human-readable rendering used in logs."""
        return f"{self.interface}/{self.mac}"


class SafeunixImplementation:
    """Implementation object behind the thinned ``Safeunix`` module."""

    #: Exported so switchlets can construct addresses for outbound packets.
    SockAddr = SockAddr

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim

    def gettimeofday(self) -> float:
        """Current simulated time in seconds (the only clock switchlets get)."""
        return self._sim.now

    #: Names exported when this implementation is thinned into ``Safeunix``.
    THINNED_EXPORTS = ("SockAddr", "gettimeofday")
