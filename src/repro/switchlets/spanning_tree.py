"""The third switchlet: the IEEE 802.1D spanning tree.

Section 5.3: "The third and final switchlet implements the spanning tree
functionality.  This switchlet adds a function that registers with the
demultiplexer requesting packets addressed to the All Bridges multicast
address.  All other packets continue to be sent to the learning function from
the second switchlet.  Based on the 802.1D protocol, this function takes part
in the calculation of the spanning tree for the network.  Then it uses access
points in the previous switchlets to suppress the traffic from certain input
and output ports.  With this switchlet, we have a fully functional bridge."

:class:`SpanningTreeApp` implements a faithful (if streamlined) 802.1D
configuration protocol: root election by lowest bridge identifier, root-port
and designated-port selection by priority vectors, BPDU origination by the
root every hello time, propagation on designated ports, message ageing, and
the listening → learning → forwarding transition governed by the forward
delay timer — which is exactly the 2 x 15 s the paper's agility experiment
measures (Section 7.5).

The DEC-style "old protocol" of the transition experiment is the subclass in
:mod:`repro.switchlets.dec_spanning_tree`; it differs only in wire format and
multicast address, as in the paper.
"""

from __future__ import annotations

from repro.switchlets.bpdu import ConfigBpdu
from repro.switchlets.framefmt import FrameFmt


class SpanningTreeApp:
    """The 802.1D spanning-tree switchlet application.

    Args:
        unixnet: the thinned ``Unixnet`` module.
        func: the thinned ``Func`` registry (for the bridge access points).
        log: the thinned ``Log`` module.
        safeunix: the thinned ``Safeunix`` module (time).
        safethread: the thinned ``Safethread`` module (timers).
        priority: the bridge priority half of the bridge identifier.
        hello_time / max_age / forward_delay: the standard 802.1D timers.
    """

    #: Express-lane safety declaration consumed by the scenario compiler
    #: (see repro.scenario.compile): the spanning-tree bridge reaches the wire only
    #: through unixnet writes, which ride the node's CPU queue — its
    #: reactions never escape a segment synchronously, so the node's ports
    #: keep their ``segment_local`` declaration with this switchlet loaded.
    SEGMENT_LOCAL_SAFE = True

    PROTOCOL_NAME = "ieee"
    REGISTRY_KEY = "stp.ieee"
    MULTICAST_ADDR = "01:80:c2:00:00:00"
    ETHERTYPE = 0x8181

    DEFAULT_PRIORITY = 0x8000
    PATH_COST = 19  # 802.1D recommended cost for a 100 Mb/s port.

    HELLO_TIME = 2.0
    MAX_AGE = 20.0
    FORWARD_DELAY = 15.0

    STATE_BLOCKING = "blocking"
    STATE_LISTENING = "listening"
    STATE_LEARNING = "learning"
    STATE_FORWARDING = "forwarding"

    ROLE_ROOT = "root"
    ROLE_DESIGNATED = "designated"
    ROLE_BLOCKED = "blocked"

    SEND_OUT_KEY = "bridge.send_out"
    PORTS_KEY = "bridge.ports"
    FILTER_KEY = "bridge.set_port_filter"

    def __init__(self, unixnet, func, log, safeunix, safethread,
                 priority=DEFAULT_PRIORITY,
                 hello_time=HELLO_TIME,
                 max_age=MAX_AGE,
                 forward_delay=FORWARD_DELAY):
        self.unixnet = unixnet
        self.func = func
        self.log = log
        self.safeunix = safeunix
        self.safethread = safethread
        self.priority = int(priority)
        self.hello_time = float(hello_time)
        self.max_age = float(max_age)
        self.forward_delay = float(forward_delay)
        self.running = False
        self.listening = False
        self.ports = {}
        self.bridge_mac = b"\x00" * 6
        self.root_priority = self.priority
        self.root_mac = self.bridge_mac
        self.root_path_cost = 0
        self.root_port = None
        self._addr_iport = None
        self._hello_handle = None
        self.bpdus_sent = 0
        self.bpdus_received = 0
        self.bpdus_ignored = 0
        self.recomputes = 0

    # ------------------------------------------------------------------
    # Identity helpers
    # ------------------------------------------------------------------

    def bridge_id(self):
        """This bridge's identifier: (priority, MAC bytes)."""
        return (self.priority, self.bridge_mac)

    def root_id(self):
        """The identifier of the bridge we currently believe is the root."""
        return (self.root_priority, self.root_mac)

    def is_root(self):
        """Whether this bridge believes it is the root of the spanning tree."""
        return self.root_id() == self.bridge_id()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, listen=True):
        """Start the protocol: claim the multicast address and begin hellos.

        Args:
            listen: bind the protocol's multicast address.  The control
                switchlet passes ``False`` when it wants to hold the binding
                itself and feed packets in through :meth:`deliver_packet`.
        """
        if self.running:
            return
        port_names = list(self.func.call(self.PORTS_KEY))
        macs = [bytes(self.unixnet.interface_mac(name).octets) for name in port_names]
        self.bridge_mac = min(macs) if macs else b"\x00" * 6
        self.root_priority = self.priority
        self.root_mac = self.bridge_mac
        self.root_path_cost = 0
        self.root_port = None
        next_port_id = 1
        for name in sorted(port_names):
            self.ports[name] = {
                "port_id": next_port_id,
                "state": self.STATE_BLOCKING,
                "role": self.ROLE_DESIGNATED,
                "info": None,
                "transition": None,
            }
            next_port_id += 1
        self.running = True
        if listen:
            self.listen()
        self.func.call(self.FILTER_KEY, self.forwarding_allowed)
        self._recompute()
        self._hello_handle = self.safethread.every(self.hello_time, self._hello_tick)
        self._originate_hellos()
        self.log.log("%s spanning tree started (bridge id %04x/%s)" % (
            self.PROTOCOL_NAME, self.priority, FrameFmt.mac_to_str(self.bridge_mac)))

    def listen(self):
        """Bind the protocol's multicast address and receive its PDUs."""
        if self._addr_iport is not None:
            return
        self._addr_iport = self.unixnet.bind_addr(self.MULTICAST_ADDR)
        self.unixnet.set_handler_in(self._addr_iport, self.deliver_packet)
        self.listening = True

    def stop_listening(self):
        """Release the multicast address binding."""
        if self._addr_iport is not None:
            self.unixnet.unbind_addr(self._addr_iport)
            self._addr_iport = None
        self.listening = False

    def suspend(self):
        """Halt the protocol (timers stopped, address released); state is retained.

        Used by the control switchlet when transitioning between protocols;
        :meth:`resume` restarts from the retained state.
        """
        if not self.running:
            return
        if self._hello_handle is not None:
            self._hello_handle.cancel()
            self._hello_handle = None
        for port in self.ports.values():
            if port["transition"] is not None:
                port["transition"].cancel()
                port["transition"] = None
        self.stop_listening()
        self.running = False
        self.log.log("%s spanning tree suspended" % self.PROTOCOL_NAME)

    def resume(self, listen=True):
        """Restart a suspended protocol, keeping its port roles and states."""
        if self.running:
            return
        self.running = True
        if listen:
            self.listen()
        self.func.call(self.FILTER_KEY, self.forwarding_allowed)
        self._hello_handle = self.safethread.every(self.hello_time, self._hello_tick)
        self._originate_hellos()
        self.log.log("%s spanning tree resumed" % self.PROTOCOL_NAME)

    # ------------------------------------------------------------------
    # Wire format hooks (overridden by the DEC subclass)
    # ------------------------------------------------------------------

    def _make_pdu(self, port_name):
        port = self.ports[port_name]
        return ConfigBpdu(
            root_priority=self.root_priority,
            root_mac=self.root_mac,
            root_path_cost=self.root_path_cost,
            bridge_priority=self.priority,
            bridge_mac=self.bridge_mac,
            port_id=port["port_id"],
            message_age=0.0 if self.is_root() else 1.0,
            max_age=self.max_age,
            hello_time=self.hello_time,
            forward_delay=self.forward_delay,
        )

    def _parse_pdu(self, payload):
        return ConfigBpdu.decode(payload)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------

    def deliver_packet(self, packet):
        """Handle one packet addressed to the protocol's multicast group."""
        if not self.running:
            return
        if FrameFmt.ethertype(packet.pkt) != self.ETHERTYPE:
            self.bpdus_ignored += 1
            return
        try:
            pdu = self._parse_pdu(FrameFmt.payload(packet.pkt))
        except ValueError:
            self.bpdus_ignored += 1
            return
        self._handle_pdu(packet.iport, pdu)

    def _handle_pdu(self, in_port, pdu):
        if in_port not in self.ports:
            self.bpdus_ignored += 1
            return
        self.bpdus_received += 1
        port = self.ports[in_port]
        received_vector = (pdu.root_id(), pdu.root_path_cost, pdu.bridge_id(), pdu.port_id)
        stored = port["info"]
        should_store = False
        if stored is None:
            should_store = self._vector_better(received_vector, self._designated_vector(in_port))
        else:
            stored_vector = (
                (stored["root_priority"], stored["root_mac"]),
                stored["cost"],
                (stored["bridge_priority"], stored["bridge_mac"]),
                stored["port_id"],
            )
            same_designated = stored_vector[2] == received_vector[2]
            should_store = same_designated or self._vector_better(received_vector, stored_vector)
        if should_store:
            port["info"] = {
                "root_priority": pdu.root_priority,
                "root_mac": bytes(pdu.root_mac),
                "cost": pdu.root_path_cost,
                "bridge_priority": pdu.bridge_priority,
                "bridge_mac": bytes(pdu.bridge_mac),
                "port_id": pdu.port_id,
                "received_at": self.safeunix.gettimeofday(),
                "max_age": pdu.max_age,
            }
            changed = self._recompute()
            if in_port == self.root_port or changed:
                self._transmit_on_designated_ports()
        else:
            # Inferior information: if we are designated on this port, answer
            # with our own (better) PDU so the sender corrects itself.
            if port["role"] == self.ROLE_DESIGNATED:
                self._send_pdu(in_port)

    # ------------------------------------------------------------------
    # Priority vectors and recomputation
    # ------------------------------------------------------------------

    @staticmethod
    def _vector_better(candidate, reference):
        """Whether priority vector ``candidate`` is strictly better (lower)."""
        return candidate < reference

    def _designated_vector(self, port_name):
        """The vector this bridge would advertise on ``port_name``."""
        port = self.ports[port_name]
        return (self.root_id(), self.root_path_cost, self.bridge_id(), port["port_id"])

    def _recompute(self):
        """Re-derive root, root port, and port roles; returns whether anything changed."""
        self.recomputes += 1
        previous = (self.root_id(), self.root_port,
                    tuple(sorted((n, p["role"]) for n, p in self.ports.items())))

        # Elect the root: our own identifier versus every stored root claim.
        best_root = self.bridge_id()
        for port in self.ports.values():
            info = port["info"]
            if info is None:
                continue
            claimed = (info["root_priority"], info["root_mac"])
            if claimed < best_root:
                best_root = claimed
        self.root_priority, self.root_mac = best_root

        # Select the root port and our path cost to the root.
        if self.is_root():
            self.root_port = None
            self.root_path_cost = 0
        else:
            best_port = None
            best_key = None
            for name in sorted(self.ports):
                info = self.ports[name]["info"]
                if info is None:
                    continue
                if (info["root_priority"], info["root_mac"]) != best_root:
                    continue
                key = (
                    info["cost"] + self.PATH_COST,
                    (info["bridge_priority"], info["bridge_mac"]),
                    info["port_id"],
                    self.ports[name]["port_id"],
                )
                if best_key is None or key < best_key:
                    best_key = key
                    best_port = name
            self.root_port = best_port
            self.root_path_cost = best_key[0] if best_key is not None else 0

        # Assign roles.
        for name in sorted(self.ports):
            port = self.ports[name]
            if name == self.root_port:
                port["role"] = self.ROLE_ROOT
                continue
            info = port["info"]
            if info is None:
                port["role"] = self.ROLE_DESIGNATED
                continue
            stored_vector = (
                (info["root_priority"], info["root_mac"]),
                info["cost"],
                (info["bridge_priority"], info["bridge_mac"]),
                info["port_id"],
            )
            if self._vector_better(self._designated_vector(name), stored_vector):
                port["role"] = self.ROLE_DESIGNATED
            else:
                port["role"] = self.ROLE_BLOCKED

        # Drive port states toward their roles.
        for name in sorted(self.ports):
            self._update_port_state(name)

        current = (self.root_id(), self.root_port,
                   tuple(sorted((n, p["role"]) for n, p in self.ports.items())))
        return current != previous

    def _update_port_state(self, port_name):
        port = self.ports[port_name]
        should_forward = port["role"] in (self.ROLE_ROOT, self.ROLE_DESIGNATED)
        if not should_forward:
            if port["transition"] is not None:
                port["transition"].cancel()
                port["transition"] = None
            if port["state"] != self.STATE_BLOCKING:
                port["state"] = self.STATE_BLOCKING
                self.log.log("%s port %s -> blocking" % (self.PROTOCOL_NAME, port_name))
            return
        if port["state"] in (self.STATE_LISTENING, self.STATE_LEARNING, self.STATE_FORWARDING):
            return  # already on its way to (or in) forwarding
        port["state"] = self.STATE_LISTENING
        self.log.log("%s port %s -> listening" % (self.PROTOCOL_NAME, port_name))
        port["transition"] = self.safethread.delay(
            self.forward_delay, self._make_transition(port_name, self.STATE_LEARNING)
        )

    def _make_transition(self, port_name, next_state):
        def advance():
            port = self.ports.get(port_name)
            if port is None or not self.running:
                return
            if port["role"] not in (self.ROLE_ROOT, self.ROLE_DESIGNATED):
                return
            port["state"] = next_state
            self.log.log("%s port %s -> %s" % (self.PROTOCOL_NAME, port_name, next_state))
            if next_state == self.STATE_LEARNING:
                port["transition"] = self.safethread.delay(
                    self.forward_delay,
                    self._make_transition(port_name, self.STATE_FORWARDING),
                )
            else:
                port["transition"] = None

        return advance

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------

    def _send_pdu(self, port_name):
        pdu = self._make_pdu(port_name)
        source_mac = bytes(self.unixnet.interface_mac(port_name).octets)
        pkt = FrameFmt.build(
            FrameFmt.str_to_mac(self.MULTICAST_ADDR),
            source_mac,
            self.ETHERTYPE,
            pdu.encode(),
        )
        self.func.call(self.SEND_OUT_KEY, port_name, pkt)
        self.bpdus_sent += 1

    def _originate_hellos(self):
        if self.is_root():
            for name in sorted(self.ports):
                self._send_pdu(name)

    def _transmit_on_designated_ports(self):
        for name in sorted(self.ports):
            if self.ports[name]["role"] == self.ROLE_DESIGNATED:
                self._send_pdu(name)

    def _hello_tick(self):
        if not self.running:
            return
        self._expire_stale_info()
        if self.is_root():
            self._originate_hellos()

    def _expire_stale_info(self):
        now = self.safeunix.gettimeofday()
        expired = False
        for port in self.ports.values():
            info = port["info"]
            if info is None:
                continue
            limit = info.get("max_age", self.max_age) or self.max_age
            if now - info["received_at"] > limit:
                port["info"] = None
                expired = True
        if expired:
            changed = self._recompute()
            if changed:
                self._transmit_on_designated_ports()

    # ------------------------------------------------------------------
    # Access points used by other switchlets
    # ------------------------------------------------------------------

    def forwarding_allowed(self, in_port, out_port):
        """The forwarding filter handed to the learning bridge.

        A frame is forwarded only if its input port and (when given) output
        port are both in the forwarding state.  Ports this protocol does not
        manage are left alone.
        """
        for name in (in_port, out_port):
            if name is None:
                continue
            port = self.ports.get(name)
            if port is None:
                continue
            if port["state"] != self.STATE_FORWARDING:
                return False
        return True

    def port_state(self, port_name):
        """The current state of one port (``"blocking"`` ... ``"forwarding"``)."""
        return self.ports[port_name]["state"]

    def snapshot(self):
        """A comparable summary of the computed tree (used for validation).

        The control switchlet captures this from the old protocol at
        suspension time and compares it against the new protocol's snapshot
        after the network has stabilized (Section 5.4).
        """
        return {
            "protocol": self.PROTOCOL_NAME,
            "bridge_mac": FrameFmt.mac_to_str(self.bridge_mac),
            "root_priority": self.root_priority,
            "root_mac": FrameFmt.mac_to_str(self.root_mac),
            "root_port": self.root_port,
            "root_path_cost": self.root_path_cost,
            "port_roles": dict((name, port["role"]) for name, port in self.ports.items()),
            "port_states": dict((name, port["state"]) for name, port in self.ports.items()),
        }

    def stats(self):
        """Protocol counters."""
        return {
            "bpdus_sent": self.bpdus_sent,
            "bpdus_received": self.bpdus_received,
            "bpdus_ignored": self.bpdus_ignored,
            "recomputes": self.recomputes,
            "is_root": self.is_root(),
        }


class BuggySpanningTreeApp(SpanningTreeApp):
    """A deliberately faulty 802.1D implementation.

    It inverts the root election (it prefers the *highest* bridge identifier)
    so the tree it computes disagrees with the one the old protocol computed.
    This is the "algorithmic failure in a loadable module" the paper's
    control switchlet detects and falls back from; the fallback benchmark
    loads this variant as the "new" protocol.
    """

    def _recompute(self):
        # Flip every stored root claim's priority ordering by electing the
        # maximum instead of the minimum, then fall through to the normal
        # role computation with that (wrong) root.
        self.recomputes += 1
        previous = (self.root_id(), self.root_port,
                    tuple(sorted((n, p["role"]) for n, p in self.ports.items())))
        best_root = self.bridge_id()
        for port in self.ports.values():
            info = port["info"]
            if info is None:
                continue
            claimed = (info["root_priority"], info["root_mac"])
            if claimed > best_root:  # BUG: should be '<'
                best_root = claimed
        self.root_priority, self.root_mac = best_root
        if self.is_root():
            self.root_port = None
            self.root_path_cost = 0
        else:
            best_port = None
            best_key = None
            for name in sorted(self.ports):
                info = self.ports[name]["info"]
                if info is None:
                    continue
                if (info["root_priority"], info["root_mac"]) != best_root:
                    continue
                key = (info["cost"] + self.PATH_COST,
                       (info["bridge_priority"], info["bridge_mac"]),
                       info["port_id"],
                       self.ports[name]["port_id"])
                if best_key is None or key < best_key:
                    best_key = key
                    best_port = name
            self.root_port = best_port
            self.root_path_cost = best_key[0] if best_key is not None else 0
        for name in sorted(self.ports):
            port = self.ports[name]
            if name == self.root_port:
                port["role"] = self.ROLE_ROOT
            elif port["info"] is None:
                port["role"] = self.ROLE_DESIGNATED
            else:
                port["role"] = self.ROLE_DESIGNATED
            self._update_port_state(name)
        current = (self.root_id(), self.root_port,
                   tuple(sorted((n, p["role"]) for n, p in self.ports.items())))
        return current != previous


#: Registration epilogue for a stand-alone, immediately started 802.1D switchlet.
REGISTRATION_SOURCE = """
_app = SpanningTreeApp(Unixnet, Func, Log, Safeunix, Safethread)
Func.register("stp.ieee", _app)
_app.start(listen=True)
"""

#: Registration epilogue used in the protocol-transition experiment: the new
#: protocol is loaded but left dormant until the control switchlet starts it
#: (Table 1's initial "loaded" state).
REGISTRATION_SOURCE_DORMANT = """
_app = SpanningTreeApp(Unixnet, Func, Log, Safeunix, Safethread)
Func.register("stp.ieee", _app)
"""

#: Dormant registration of the deliberately faulty implementation.
REGISTRATION_SOURCE_BUGGY_DORMANT = """
_app = BuggySpanningTreeApp(Unixnet, Func, Log, Safeunix, Safethread)
Func.register("stp.ieee", _app)
"""

#: The classes shipped inside the 802.1D switchlet.
PACKAGED_COMPONENTS = (FrameFmt, ConfigBpdu, SpanningTreeApp)

#: The classes shipped inside the faulty-802.1D switchlet.
PACKAGED_COMPONENTS_BUGGY = (FrameFmt, ConfigBpdu, SpanningTreeApp, BuggySpanningTreeApp)
