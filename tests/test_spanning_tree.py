"""Tests for the 802.1D and DEC spanning-tree switchlets."""

from __future__ import annotations

import pytest

from repro.core.node import ActiveNode
from repro.lan.topology import NetworkBuilder
from repro.switchlets.packaging import (
    dec_spanning_tree_package,
    dumb_bridge_package,
    learning_bridge_package,
    spanning_tree_package,
)


def _build_bridged_topology(n_bridges, loop=False, seed=5, protocol="ieee"):
    """A chain (or ring) of bridges, each running dumb+learning+spanning tree.

    Returns (network, bridges, hosts) where hosts sit on the two end segments.
    """
    builder = NetworkBuilder(seed=seed)
    n_segments = n_bridges if loop else n_bridges + 1
    for index in range(n_segments):
        builder.add_segment(f"seg{index}")
    host_a = builder.add_host("hostA", "seg0")
    host_b = builder.add_host("hostB", f"seg{n_segments - 1}" if not loop else "seg0")
    builder.populate_static_arp()
    network = builder.build()
    bridges = []
    for index in range(n_bridges):
        bridge = ActiveNode(network.sim, f"bridge{index + 1}")
        bridge.add_interface("eth0", network.segment(f"seg{index}"))
        bridge.add_interface("eth1", network.segment(f"seg{(index + 1) % n_segments}"))
        environment = bridge.environment.modules
        bridge.load_switchlet(dumb_bridge_package(environment))
        bridge.load_switchlet(learning_bridge_package(environment))
        if protocol == "ieee":
            bridge.load_switchlet(spanning_tree_package(environment, autostart=True))
        else:
            bridge.load_switchlet(dec_spanning_tree_package(environment))
        bridges.append(bridge)
    return network, bridges, (host_a, host_b)


def _stp(bridge, key="stp.ieee"):
    return bridge.func.lookup(key)


class TestSpanningTreeConvergence:
    def test_single_bridge_becomes_root_and_forwards(self):
        network, bridges, _ = _build_bridged_topology(1)
        network.sim.run_until(31.0)
        app = _stp(bridges[0])
        assert app.is_root()
        assert set(app.snapshot()["port_states"].values()) == {"forwarding"}

    def test_chain_elects_single_root(self):
        network, bridges, _ = _build_bridged_topology(3)
        network.sim.run_until(35.0)
        roots = {_stp(bridge).snapshot()["root_mac"] for bridge in bridges}
        assert len(roots) == 1
        expected_root = min(str(_stp(b).snapshot()["bridge_mac"]) for b in bridges)
        assert roots == {expected_root}
        # Exactly one bridge believes it is the root.
        assert sum(1 for bridge in bridges if _stp(bridge).is_root()) == 1

    def test_chain_has_no_blocked_ports(self):
        network, bridges, _ = _build_bridged_topology(3)
        network.sim.run_until(35.0)
        for bridge in bridges:
            roles = _stp(bridge).snapshot()["port_roles"].values()
            assert "blocked" not in roles

    def test_ring_blocks_exactly_one_port(self):
        network, bridges, _ = _build_bridged_topology(3, loop=True)
        network.sim.run_until(40.0)
        blocked = []
        for bridge in bridges:
            for port, role in _stp(bridge).snapshot()["port_roles"].items():
                if role == "blocked":
                    blocked.append((bridge.name, port))
        assert len(blocked) == 1

    def test_ring_broadcast_does_not_loop(self):
        network, bridges, (host_a, _) = _build_bridged_topology(3, loop=True)
        network.sim.run_until(40.0)
        from repro.ethernet.frame import EthernetFrame
        from repro.ethernet.mac import BROADCAST

        sent_before = sum(bridge.frames_transmitted for bridge in bridges)
        frame = EthernetFrame(
            destination=BROADCAST,
            source=host_a.mac,
            ethertype=0x88B6,
            payload=b"broadcast storm test",
        )
        host_a.send_raw_frame(frame)
        network.sim.run_until(network.sim.now + 5.0)
        forwarded = sum(bridge.frames_transmitted for bridge in bridges) - sent_before
        # The counter also includes the bridges' own periodic BPDUs, so allow
        # for those -- but a broadcast storm would generate thousands of
        # forwards in five seconds, which is what this guards against.
        assert forwarded < 60

    def test_forward_delay_gates_data_forwarding(self):
        network, bridges, (host_a, host_b) = _build_bridged_topology(1)
        replies = []
        host_a.stack.add_icmp_handler(lambda m, s: replies.append(network.sim.now))
        # Ping before the forward-delay window has elapsed: blocked.
        network.sim.run_until(5.0)
        host_a.ping(host_b.ip, 1, 1, b"early")
        network.sim.run_until(10.0)
        assert replies == []
        # After 2 x forward_delay the ports are forwarding.
        network.sim.run_until(31.0)
        host_a.ping(host_b.ip, 1, 2, b"late")
        network.sim.run_until(network.sim.now + 2.0)
        assert len(replies) == 1

    def test_bpdus_are_not_flooded_to_hosts(self):
        network, bridges, (host_a, _) = _build_bridged_topology(1)
        seen = []
        host_a.add_raw_listener(
            lambda frame: seen.append(int(frame.ethertype)) if int(frame.ethertype) == 0x8181 else None
        )
        network.sim.run_until(10.0)
        # The bridge's own hellos appear on the host's segment (that is how
        # 802.1D works), but BPDUs arriving on one bridge port must not be
        # *forwarded* out the other; with a single bridge and one neighbour
        # segment we simply check the bridge consumed everything it received.
        app = _stp(bridges[0])
        assert app.bpdus_received == 0  # nothing else is speaking 802.1D
        assert bridges[0].frames_unclaimed == 0

    def test_stats_and_port_state_accessors(self):
        network, bridges, _ = _build_bridged_topology(2)
        network.sim.run_until(35.0)
        app = _stp(bridges[0])
        stats = app.stats()
        assert stats["bpdus_sent"] > 0
        assert app.port_state("eth0") in ("forwarding", "blocking", "listening", "learning")


class TestDecSpanningTree:
    def test_dec_chain_converges_like_ieee(self):
        network, bridges, _ = _build_bridged_topology(3, protocol="dec")
        network.sim.run_until(35.0)
        roots = {bridge.func.lookup("stp.dec").snapshot()["root_mac"] for bridge in bridges}
        assert len(roots) == 1

    def test_dec_and_ieee_compute_identical_trees(self):
        ieee_net, ieee_bridges, _ = _build_bridged_topology(3, seed=5, protocol="ieee")
        dec_net, dec_bridges, _ = _build_bridged_topology(3, seed=5, protocol="dec")
        ieee_net.sim.run_until(35.0)
        dec_net.sim.run_until(35.0)
        for ieee_bridge, dec_bridge in zip(ieee_bridges, dec_bridges):
            ieee_snapshot = ieee_bridge.func.lookup("stp.ieee").snapshot()
            dec_snapshot = dec_bridge.func.lookup("stp.dec").snapshot()
            assert ieee_snapshot["root_port"] == dec_snapshot["root_port"]
            assert ieee_snapshot["port_roles"] == dec_snapshot["port_roles"]

    def test_protocols_ignore_each_others_pdus(self, two_lan_bridge):
        bridge = two_lan_bridge["bridge"]
        environment = bridge.environment.modules
        bridge.load_switchlet(dumb_bridge_package(environment))
        bridge.load_switchlet(learning_bridge_package(environment))
        bridge.load_switchlet(dec_spanning_tree_package(environment))
        dec_app = bridge.func.lookup("stp.dec")
        # Hand the DEC protocol an IEEE-format PDU: it must not parse.
        from repro.switchlets.bpdu import ConfigBpdu
        from repro.switchlets.framefmt import FrameFmt
        from repro.core.safeunix import SockAddr
        from repro.core.unixnet import Packet

        bogus = FrameFmt.build(
            FrameFmt.str_to_mac(dec_app.MULTICAST_ADDR),
            b"\x02\x00\x00\x00\x00\x63",
            dec_app.ETHERTYPE,
            ConfigBpdu(0, b"\x00" * 6, 0, 0, b"\x00" * 6, 1).encode(),
        )
        packet = Packet(len=len(bogus), addr=SockAddr("eth0", "02:00:00:00:00:63"),
                        pkt=bogus, iport="eth0")
        before = dec_app.bpdus_ignored
        dec_app.deliver_packet(packet)
        assert dec_app.bpdus_ignored == before + 1


class TestSuspendResume:
    def test_suspend_stops_hellos_resume_restarts(self, two_lan_bridge):
        bridge = two_lan_bridge["bridge"]
        environment = bridge.environment.modules
        bridge.load_switchlet(dumb_bridge_package(environment))
        bridge.load_switchlet(learning_bridge_package(environment))
        bridge.load_switchlet(spanning_tree_package(environment, autostart=True))
        sim = two_lan_bridge["sim"]
        app = bridge.func.lookup("stp.ieee")
        sim.run_until(10.0)
        sent_at_suspend = app.bpdus_sent
        app.suspend()
        sim.run_until(20.0)
        assert app.bpdus_sent == sent_at_suspend
        app.resume()
        sim.run_until(30.0)
        assert app.bpdus_sent > sent_at_suspend

    def test_suspended_protocol_frees_its_address(self, two_lan_bridge):
        bridge = two_lan_bridge["bridge"]
        environment = bridge.environment.modules
        bridge.load_switchlet(dumb_bridge_package(environment))
        bridge.load_switchlet(learning_bridge_package(environment))
        bridge.load_switchlet(spanning_tree_package(environment, autostart=True))
        app = bridge.func.lookup("stp.ieee")
        app.suspend()
        # After suspension the All-Bridges address can be claimed by another
        # party (the control switchlet does exactly this).
        iport = bridge.unixnet.bind_addr(app.MULTICAST_ADDR)
        assert iport is not None
