"""Simulated time.

Time is kept in integer **nanoseconds** internally so that event ordering is
exact and runs are bit-for-bit reproducible; the public API speaks float
seconds because that is what the rest of the library (and the paper's
numbers: "0.47 ms per frame", "30.1 seconds") naturally uses.
"""

from __future__ import annotations

NANOSECONDS_PER_SECOND = 1_000_000_000


def seconds_to_ns(seconds: float) -> int:
    """Convert a float second count to integer nanoseconds (round-to-nearest)."""
    # round() already returns an int for a single float argument.
    return round(seconds * NANOSECONDS_PER_SECOND)


def ns_to_seconds(nanoseconds: int) -> float:
    """Convert integer nanoseconds back to float seconds."""
    return nanoseconds / NANOSECONDS_PER_SECOND


class Clock:
    """A monotonically non-decreasing simulated clock.

    The clock is advanced only by the :class:`~repro.sim.engine.Simulator`
    as it dispatches events; user code reads it via :attr:`now` (seconds) or
    :attr:`now_ns` (nanoseconds).
    """

    def __init__(self) -> None:
        self._now_ns = 0
        # The float-second form is read several times per dispatched event
        # (traces, CPU queues, measurement); convert once per advance.
        self._now_s = 0.0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now_s

    @property
    def now_ns(self) -> int:
        """Current simulated time in integer nanoseconds."""
        return self._now_ns

    def advance_to_ns(self, when_ns: int) -> None:
        """Advance the clock to ``when_ns``.

        Raises:
            ValueError: if ``when_ns`` is earlier than the current time.
        """
        if when_ns < self._now_ns:
            raise ValueError(
                f"clock cannot run backwards: now={self._now_ns}ns, "
                f"requested={when_ns}ns"
            )
        self._now_ns = when_ns
        self._now_s = when_ns / NANOSECONDS_PER_SECOND

    def reset(self) -> None:
        """Reset the clock to time zero (used when a simulator is reset)."""
        self._now_ns = 0
        self._now_s = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self.now:.9f}s)"
