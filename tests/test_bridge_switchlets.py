"""Tests for the dumb-bridge and learning-bridge switchlets.

Two levels are covered: the application classes driven directly against a
real node's environment modules, and the packaged (shipped, dynamically
loaded) form exercised end to end through real hosts and LAN segments.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.safestd import SafestdImplementation
from repro.ethernet.frame import EthernetFrame
from repro.ethernet.mac import BROADCAST, MacAddress
from repro.switchlets.learning_bridge import LearningTable
from repro.switchlets.packaging import (
    dumb_bridge_package,
    learning_bridge_package,
    standard_bridge_packages,
)
from tests.conftest import load_standard_bridge


# ---------------------------------------------------------------------------
# LearningTable (pure unit tests)
# ---------------------------------------------------------------------------


class TestLearningTable:
    def _table(self, aging=300.0):
        return LearningTable(SafestdImplementation.Hashtbl, aging_time=aging)

    def test_learn_and_lookup(self):
        table = self._table()
        table.learn("aa", now=10.0, in_port="eth0")
        assert table.lookup("aa", now=11.0) == "eth0"

    def test_replacement_on_move(self):
        table = self._table()
        table.learn("aa", 10.0, "eth0")
        table.learn("aa", 20.0, "eth1")
        assert table.lookup("aa", 21.0) == "eth1"
        assert table.size() == 1
        assert table.refreshed == 1

    def test_aging(self):
        table = self._table(aging=100.0)
        table.learn("aa", 0.0, "eth0")
        assert table.lookup("aa", 99.0) == "eth0"
        assert table.lookup("aa", 101.0) is None

    def test_unknown_lookup(self):
        assert self._table().lookup("zz", 0.0) is None

    def test_forget(self):
        table = self._table()
        table.learn("aa", 0.0, "eth0")
        table.forget("aa")
        assert table.lookup("aa", 1.0) is None

    def test_snapshot_excludes_stale(self):
        table = self._table(aging=10.0)
        table.learn("fresh", 95.0, "eth0")
        table.learn("stale", 0.0, "eth1")
        snapshot = table.snapshot(now=100.0)
        assert "fresh" in snapshot
        assert "stale" not in snapshot

    @given(st.lists(st.tuples(st.sampled_from(["a", "b", "c", "d"]),
                              st.sampled_from(["eth0", "eth1", "eth2"])), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_lookup_always_reflects_latest_learn(self, events):
        table = self._table()
        latest = {}
        for index, (mac, port) in enumerate(events):
            table.learn(mac, float(index), port)
            latest[mac] = port
        for mac, port in latest.items():
            assert table.lookup(mac, float(len(events))) == port


# ---------------------------------------------------------------------------
# End-to-end behaviour of the loaded switchlets
# ---------------------------------------------------------------------------


def _ping_ok(env, timeout=2.0):
    """Send one ping from host1 to host2 and report whether a reply came back."""
    replies = []
    env["host1"].stack.add_icmp_handler(lambda m, s: replies.append(m.is_reply))
    env["host1"].ping(env["host2"].ip, 1, 1, b"x" * 64)
    env["sim"].run_until(env["sim"].now + timeout)
    return True in replies


class TestDumbBridgeSwitchlet:
    def test_load_registers_access_points(self, two_lan_bridge):
        bridge = two_lan_bridge["bridge"]
        bridge.load_switchlet(dumb_bridge_package(bridge.environment.modules))
        for key in ("bridge.switch", "bridge.send_out", "bridge.ports",
                    "bridge.set_port_filter", "bridge.stats", "switchlet.dumb-bridge"):
            assert bridge.func.registered(key)
        assert bridge.func.call("bridge.ports") == ["eth0", "eth1"]

    def test_forwards_between_lans(self, two_lan_bridge):
        bridge = two_lan_bridge["bridge"]
        bridge.load_switchlet(dumb_bridge_package(bridge.environment.modules))
        assert _ping_ok(two_lan_bridge)

    def test_floods_everything_back_out(self, two_lan_bridge):
        # A dumb bridge repeats even frames whose destination is local to the
        # originating LAN -- that is what the learning switchlet later fixes.
        bridge = two_lan_bridge["bridge"]
        bridge.load_switchlet(dumb_bridge_package(bridge.environment.modules))
        env = two_lan_bridge
        frame = EthernetFrame(
            destination=env["host1"].mac,  # destination on the SAME lan as the sender
            source=MacAddress.locally_administered(77),
            ethertype=0x88B6,
            payload=b"local traffic",
        )
        env["host1"].send_raw_frame(frame)
        env["sim"].run_until(1.0)
        assert bridge.frames_transmitted >= 1

    def test_port_filter_suppresses(self, two_lan_bridge):
        bridge = two_lan_bridge["bridge"]
        bridge.load_switchlet(dumb_bridge_package(bridge.environment.modules))
        bridge.func.call("bridge.set_port_filter", lambda in_port, out_port: False)
        assert not _ping_ok(two_lan_bridge)
        stats = bridge.func.call("bridge.stats")
        assert stats["frames_suppressed"] > 0


class TestLearningBridgeSwitchlet:
    def test_requires_dumb_bridge_first(self, two_lan_bridge):
        bridge = two_lan_bridge["bridge"]
        from repro.exceptions import LoadError

        with pytest.raises(LoadError):
            bridge.load_switchlet(learning_bridge_package(bridge.environment.modules))

    def test_replaces_switch_function(self, programmed_bridge):
        bridge = programmed_bridge["bridge"]
        dumb = bridge.func.lookup("switchlet.dumb-bridge")
        learning = bridge.func.lookup("switchlet.learning-bridge")
        assert bridge.func.lookup("bridge.switch") == learning.switch
        assert bridge.func.lookup("bridge.switch") != dumb.switch

    def test_forwards_and_learns(self, programmed_bridge):
        env = programmed_bridge
        assert _ping_ok(env)
        learning = env["bridge"].func.lookup("switchlet.learning-bridge")
        snapshot = learning.snapshot()
        assert str(env["host1"].mac) in snapshot
        assert str(env["host2"].mac) in snapshot
        assert snapshot[str(env["host1"].mac)][1] == "eth0"
        assert snapshot[str(env["host2"].mac)][1] == "eth1"

    def test_filters_local_traffic_after_learning(self, programmed_bridge):
        env = programmed_bridge
        bridge = env["bridge"]
        assert _ping_ok(env)  # lets the bridge learn both hosts
        learning = bridge.func.lookup("switchlet.learning-bridge")
        forwarded_before = bridge.frames_transmitted
        # host1 sends a frame to a destination the bridge has learned to be
        # on host1's own LAN: the bridge must filter it, not repeat it.
        frame = EthernetFrame(
            destination=env["host1"].mac,
            source=MacAddress.locally_administered(88),
            ethertype=0x88B6,
            payload=b"stays local",
        )
        env["host2"].send_raw_frame(frame)  # arrives on eth1, destination on eth1? no--
        env["sim"].run_until(env["sim"].now + 1.0)
        # The frame arrived on eth1 with a destination learned on eth0, so it
        # IS forwarded; now send one that truly stays local.
        local_frame = EthernetFrame(
            destination=env["host2"].mac,
            source=MacAddress.locally_administered(89),
            ethertype=0x88B6,
            payload=b"stays local",
        )
        env["host2"].send_raw_frame(local_frame)
        env["sim"].run_until(env["sim"].now + 1.0)
        assert learning.stats()["frames_filtered"] >= 1
        assert bridge.frames_transmitted >= forwarded_before

    def test_unknown_destination_is_flooded(self, programmed_bridge):
        env = programmed_bridge
        bridge = env["bridge"]
        learning = bridge.func.lookup("switchlet.learning-bridge")
        frame = EthernetFrame(
            destination=MacAddress.locally_administered(0xABCDE),
            source=env["host1"].mac,
            ethertype=0x88B6,
            payload=b"who dis",
        )
        env["host1"].send_raw_frame(frame)
        env["sim"].run_until(1.0)
        assert learning.stats()["frames_flooded"] >= 1

    def test_broadcast_never_learned_as_source(self, programmed_bridge):
        env = programmed_bridge
        bridge = env["bridge"]
        learning = bridge.func.lookup("switchlet.learning-bridge")
        frame = EthernetFrame(
            destination=env["host2"].mac,
            source=BROADCAST,
            ethertype=0x88B6,
            payload=b"bogus source",
        )
        env["host1"].send_raw_frame(frame)
        env["sim"].run_until(1.0)
        assert str(BROADCAST) not in learning.snapshot()

    def test_stats_shape(self, programmed_bridge):
        env = programmed_bridge
        _ping_ok(env)
        stats = env["bridge"].func.lookup("switchlet.learning-bridge").stats()
        for key in ("frames_handled", "frames_forwarded", "frames_flooded",
                    "frames_filtered", "addresses_learned", "table_size"):
            assert key in stats

    def test_standard_packages_order(self, two_lan_bridge):
        bridge = two_lan_bridge["bridge"]
        packages = standard_bridge_packages(bridge.environment.modules)
        assert [p.name for p in packages] == [
            "dumb-bridge", "learning-bridge", "spanning-tree-802.1d",
        ]
        for package in packages:
            bridge.load_switchlet(package)
        assert bridge.loader.loaded_names() == [p.name for p in packages]
