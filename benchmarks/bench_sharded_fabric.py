"""Sharded-fabric benchmark: the wire-speed multi-LAN ring sweep.

Measures the :class:`~repro.sim.fabric.ShardedSimulator` against the
single-engine path on the catalog ``ring`` scenario populated with end hosts
(64 segments by default, two hosts each, 63 active bridges running the DEC
spanning tree).  Two phases per engine configuration:

* **warm-up** — compile plus spanning-tree convergence to the scenario's
  ready time: the control plane crosses shard boundaries, exercising the
  inter-shard channel and the conservative synchronizer;
* **wire blast** — every segment's host pair exchanges raw frames
  back-to-back, all 64 LANs concurrently.  Bridge ports are administratively
  down for this phase so the sweep measures the event fabric at wire speed
  rather than the bridge CPU model (the paper's bridge tops out near 2100
  frames/second — three orders of magnitude below the wire).

The blast phase is the headline: frames/second and trace records/second,
single engine versus each shard count, plus the best speedup.  Every sharded
run must reproduce the single-engine run bit-for-bit — the benchmark asserts
the live trace counters are identical before reporting.

Measurement hygiene: every engine configuration is measured in its own fresh
interpreter (a subprocess), so one configuration's allocator/heap state never
contaminates another's numbers; rates are computed from process CPU time
(``time.process_time``) so noisy-neighbor stalls in CI containers do not
masquerade as regressions (wall seconds are recorded alongside); the blast
runs three passes per configuration and the fastest is reported; garbage
collection is disabled inside the measured windows (and re-enabled after) so
the comparison measures engine mechanics, not collector cadence against
retained-record volume.

Results are appended to ``BENCH_trace.json``; ``perf_gate.py`` tracks the
throughput metrics against the committed baseline.  Run directly::

    PYTHONPATH=src python benchmarks/bench_sharded_fabric.py [--frames N]
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

from repro.ethernet.frame import EthernetFrame
from repro.scenario import run_scenario

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_trace.json"

#: Experimental ethertype used by the blast frames (never parsed by a stack).
BLAST_ETHERTYPE = 0x88B5

#: Payload bytes per blast frame.
BLAST_PAYLOAD = 256

#: Upper bound on simulated seconds per exchanged frame (sizing the window).
BLAST_FRAME_BUDGET = 40e-6


def build(segments: int, shards: int):
    """Compile and warm up the host-populated ring on ``shards`` engines."""
    compile_start = time.perf_counter()
    run = run_scenario(
        "ring",
        params={"n_bridges": segments - 1, "hosts_per_segment": 2},
        shards=shards,
    )
    compiled = time.perf_counter()
    run.warm_up()
    warmed = time.perf_counter()
    return run, compiled - compile_start, warmed - compiled


def _blast_pass(run, frames_per_pair: int) -> dict:
    """One concurrent ping-pong exchange on every segment; return one sample."""
    sim = run.sim
    pairs = []
    states = []
    for segment_spec in run.spec.segments:
        left = run.host(f"{segment_spec.name}h1")
        right = run.host(f"{segment_spec.name}h2")
        forward = EthernetFrame(
            destination=right.mac,
            source=left.mac,
            ethertype=BLAST_ETHERTYPE,
            payload=b"\x00" * BLAST_PAYLOAD,
        )
        backward = EthernetFrame(
            destination=left.mac,
            source=right.mac,
            ethertype=BLAST_ETHERTYPE,
            payload=b"\x00" * BLAST_PAYLOAD,
        )
        state = [frames_per_pair]
        states.append(state)

        def bounce(nic, reply, state=state):
            def handler(_nic, _frame) -> None:
                state[0] -= 1
                if state[0] > 0:
                    nic.send(reply)

            return handler

        left.nic.set_handler(bounce(left.nic, forward))
        right.nic.set_handler(bounce(right.nic, backward))
        pairs.append((left, forward))

    frames_before = sum(s.frames_carried for s in run.network.segments.values())
    records_before = len(sim.trace)
    horizon = sim.now + frames_per_pair * BLAST_FRAME_BUDGET
    gc.collect()
    gc.disable()
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    for left, forward in pairs:
        left.nic.send(forward)
    sim.run_until(horizon)
    cpu_elapsed = time.process_time() - cpu_start
    wall_elapsed = time.perf_counter() - wall_start
    gc.enable()
    if not all(state[0] <= 0 for state in states):
        raise RuntimeError("wire blast did not complete inside its window")
    frames = (
        sum(s.frames_carried for s in run.network.segments.values()) - frames_before
    )
    records = len(sim.trace) - records_before
    return {
        "frames": frames,
        "records": records,
        "seconds_cpu": round(cpu_elapsed, 3),
        "seconds_wall": round(wall_elapsed, 3),
        "frames_per_second": round(frames / cpu_elapsed),
        "records_per_second": round(records / cpu_elapsed),
    }


def wire_blast(run, frames_per_pair: int, passes: int = 3) -> dict:
    """Run ``passes`` blast exchanges and keep the fastest sample.

    The retained trace is cleared between passes: a steadily growing
    record store slows *any* engine's allocation path over time, and the
    benchmark measures the engines, not the store's growth curve.
    """
    best = None
    for _ in range(passes):
        run.sim.trace.clear()
        sample = _blast_pass(run, frames_per_pair)
        if best is None or sample["records_per_second"] > best["records_per_second"]:
            best = sample
    return best


#: Frames per pair for the determinism-verification exchange.
VERIFY_FRAMES = 50


def bench_configuration(segments: int, shards: int, frames_per_pair: int) -> dict:
    run, compile_seconds, warm_seconds = build(segments, shards)
    for device in run.devices:
        for nic in device.interfaces.values():
            nic.set_up(False)
    # Verification exchange: runs before any trace clearing so the counters
    # snapshot covers compile, warm-up and a full blast round-trip.
    _blast_pass(run, VERIFY_FRAMES)
    counters = dict(run.sim.trace.counters.by_category_source)
    blast = wire_blast(run, frames_per_pair)
    result = {
        "shards": shards,
        "compile_seconds": round(compile_seconds, 3),
        "warmup_seconds": round(warm_seconds, 3),
        "blast": blast,
        "counters": counters,
        "events_dispatched": run.sim.events_dispatched,
    }
    if shards > 1:
        result["cut_segments"] = len(run.partition.cut_segments)
        result["lookahead_ns"] = run.partition.lookahead_ns
        result["shard_stats"] = [
            {k: v for k, v in stats.items() if k != "records"}
            for stats in run.network.sim.shard_stats()
        ]
    return result


def measure_in_subprocess(segments: int, shards: int, frames: int) -> dict:
    """Run one configuration in a fresh interpreter and return its JSON."""
    process = subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            "--measure-one",
            f"--segments={segments}",
            f"--frames={frames}",
            "--shards",
            str(shards),
        ],
        capture_output=True,
        text=True,
        check=False,
    )
    if process.returncode != 0:
        raise RuntimeError(
            f"measurement subprocess (shards={shards}) failed:\n{process.stderr}"
        )
    return json.loads(process.stdout)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--segments", type=int, default=64, help="ring LAN count")
    parser.add_argument(
        "--frames", type=int, default=600, help="blast frames per host pair"
    )
    parser.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=[1, 2, 4, 8],
        help="shard counts to measure (1 = the single-engine baseline)",
    )
    parser.add_argument(
        "--measure-one",
        action="store_true",
        help="internal: measure the single given configuration and print JSON",
    )
    args = parser.parse_args()
    if args.segments < 2 or args.frames <= 0:
        parser.error("--segments must be >= 2 and --frames positive")

    if args.measure_one:
        result = bench_configuration(args.segments, args.shards[0], args.frames)
        # Counter keys are (category, source) tuples; make them JSON-safe.
        result["counters"] = {
            f"{category}|{source}": count
            for (category, source), count in result["counters"].items()
        }
        json.dump(result, sys.stdout)
        return

    # The single-engine baseline always runs, and runs first.
    args.shards = sorted(set(args.shards) | {1})

    configs = {}
    baseline_counters = None
    for shards in args.shards:
        result = measure_in_subprocess(args.segments, shards, args.frames)
        counters = result.pop("counters")
        if shards == 1:
            baseline_counters = counters
        else:
            # The fabric's contract: sharded runs are bit-identical.  The live
            # counters cover every record of compile, warm-up and a blast
            # round-trip; any divergence in event order or content shows up
            # here.
            assert counters == baseline_counters, (
                f"sharded run (shards={shards}) diverged from the single engine"
            )
        configs[f"shards={shards}"] = result
        blast = result["blast"]
        print(
            f"shards={shards}: warm {result['warmup_seconds']:.2f}s, blast "
            f"{blast['frames']} frames in {blast['seconds_cpu']:.3f} cpu-s = "
            f"{blast['frames_per_second']:,} frames/s, "
            f"{blast['records_per_second']:,} records/s"
        )

    base_rate = configs["shards=1"]["blast"]["records_per_second"]
    best_shards, best_speedup = 1, 1.0
    for key, result in configs.items():
        speedup = result["blast"]["records_per_second"] / base_rate
        if speedup > best_speedup:
            best_shards = result["shards"]
            best_speedup = speedup
    print(
        f"\nbest: shards={best_shards} at {best_speedup:.2f}x records/s over "
        "the single engine (sharded runs verified bit-identical)"
    )

    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "sharded_fabric": {
            "segments": args.segments,
            "frames_per_pair": args.frames,
            "configs": configs,
            "best_shards": best_shards,
            "best_speedup": round(best_speedup, 2),
        },
    }
    history = []
    if RESULTS_PATH.exists():
        try:
            history = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            history = []
    history.append(entry)
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n")
    print(f"results appended to {RESULTS_PATH}")


if __name__ == "__main__":
    main()
