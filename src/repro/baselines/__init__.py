"""Baseline network elements the paper compares against.

* :class:`~repro.baselines.c_repeater.BufferedRepeater` — "a very simple
  buffered repeater in C" (Section 7.3): a user-space program that opens two
  Ethernet devices in promiscuous mode and copies every frame from one to the
  other.  It isolates the cost of getting frames through the kernel into user
  space from the cost of the interpreted bridge logic.
* the *direct connection* baseline is simply two hosts on one LAN segment
  (no class needed; :mod:`repro.measurement.setups` builds it).
* :class:`~repro.baselines.static_bridge.StaticLearningBridge` — a
  conventional, non-programmable learning bridge with hardware-like per-frame
  cost, standing in for the DEC LANbridge the active bridge replaced in the
  authors' laboratory; the ablation benchmark uses it to show what the active
  property costs relative to fixed-function hardware.
"""

from repro.baselines.c_repeater import BufferedRepeater
from repro.baselines.static_bridge import StaticLearningBridge

__all__ = ["BufferedRepeater", "StaticLearningBridge"]
