"""Process-backed relaxed execution: the wall-clock backend's contracts.

Identity under test: ``sync="relaxed", backend="process"`` produces canonical
merge records, live counters and a final clock identical to strict and to the
threaded relaxed backend — catalog-wide and across fault episodes — under the
backend's single-measured-dispatch model (warm-up runs in-process, then one
process dispatch; trace queries fetch worker results lazily).

Component statistics (host/segment attributes) are *not* compared for
process runs: workers advance copy-on-write replicas, so the parent's
component objects are intentionally stale — the trace streams and counters
shipped back are the backend's observables (see ``sim/procpool.py``).
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.exceptions import FabricBackendError, SimulationError
from repro.faults import FaultSpec
from repro.measurement.ping import PingRunner
from repro.scenario import run_scenario
from repro.scenario.spec import PartitionSpec
from repro.sim import procpool
from repro.sim.fabric import ShardedSimulator

#: Compressed 802.1D timers (mirrors test_faults): episodes in seconds.
FAST_TIMERS = {"hello_time": 0.5, "max_age": 2.5, "forward_delay": 1.0}
FAILOVER_PARAMS = {
    "n_bridges": 5, "fail_at": 5.0, "recover_at": 11.0, **FAST_TIMERS,
}

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="process backend requires fork()"
)


# ---------------------------------------------------------------------------
# Helpers: single-measured-dispatch driving
# ---------------------------------------------------------------------------


def _drive(name, shards, sync="strict", backend="thread"):
    """Compile, warm up and ping with exactly one post-warm-up dispatch.

    The process backend supports one measured dispatch per run, so the ping
    train is scheduled first (pre-dispatch) and a single ``run_until`` spans
    send + settle — the same horizon for every engine configuration.
    """
    params = {"n_bridges": 2} if name in ("ring", "chain") else None
    run = run_scenario(
        name, params=params, shards=shards, sync=sync, backend=backend
    )
    run.warm_up()
    hosts = run.hosts
    if len(hosts) >= 2:
        count, interval = 2, 0.05
        runner = PingRunner(
            run.sim, hosts[0], hosts[1].ip, payload_size=96,
            count=count, interval=interval,
        )
        start = run.sim.now
        runner.start(start)
        run.sim.run_until(start + count * interval + 2.0)
    return run


def _canonical(run):
    trace = run.sim.trace
    if hasattr(trace, "canonical_records"):
        return trace.canonical_records()
    return list(trace)


def _trace_observables(run):
    """The observables a process run ships back: counters, records, clock."""
    return (
        dict(run.sim.trace.counters.by_category_source),
        run.sim.now,
    )


def _assert_identical(reference, candidate, context=""):
    assert _canonical(candidate) == _canonical(reference), context
    assert _trace_observables(candidate) == _trace_observables(reference), context


def _fabric(shards=2, **kwargs):
    kwargs.setdefault("lookahead_ns", 1000)
    return ShardedSimulator(shards=shards, sync="relaxed", backend="process", **kwargs)


# ---------------------------------------------------------------------------
# The headline: catalog-wide canonical-merge identity
# ---------------------------------------------------------------------------


from repro.scenario.registry import list_scenarios  # noqa: E402


@pytest.mark.parametrize(
    "name",
    sorted(entry.name for entry in list_scenarios() if not entry.tie_prone),
)
@pytest.mark.parametrize("shards", [2, 4])
def test_catalog_process_backend_is_canonical_merge_identical(name, shards):
    reference = _drive(name, shards, sync="strict")
    candidate = _drive(name, shards, sync="relaxed", backend="process")
    if candidate.n_shards > 1:
        assert candidate.backend == "process"
    _assert_identical(reference, candidate, (name, shards))


@pytest.mark.parametrize("name", ["ring", "vlan/trunk"])
def test_process_equals_threaded_relaxed(name):
    threaded = _drive(name, 4, sync="relaxed")
    process = _drive(name, 4, sync="relaxed", backend="process")
    _assert_identical(threaded, process, name)


def test_process_repeated_runs_are_deterministic():
    first = _drive("ring", 4, sync="relaxed", backend="process")
    second = _drive("ring", 4, sync="relaxed", backend="process")
    _assert_identical(first, second)


def test_process_shard_stats_match_threaded():
    threaded = _drive("ring", 4, sync="relaxed")
    process = _drive("ring", 4, sync="relaxed", backend="process")
    assert process.sim.shard_stats() == threaded.sim.shard_stats()
    assert process.sim.events_dispatched == threaded.sim.events_dispatched


# ---------------------------------------------------------------------------
# Fault episodes under the process backend
# ---------------------------------------------------------------------------


def _drive_failover(shards, sync="strict", backend="thread"):
    run = run_scenario(
        "ring/failover", params=FAILOVER_PARAMS,
        shards=shards, sync=sync, backend=backend,
    )
    run.warm_up()
    runner = PingRunner(
        run.sim, run.host("left"), run.host("right").ip, payload_size=64,
        count=30, interval=0.25, identifier=7,
    )
    runner.start(run.sim.now + 0.01)
    run.sim.run_until(14.0)
    return run


def _drive_lossy(shards, sync="strict", backend="thread"):
    run = run_scenario(
        "pair/lossy", params={"loss_rate": 0.25, "corrupt_rate": 0.05},
        shards=shards, sync=sync, backend=backend,
    )
    run.warm_up()
    count, interval = 40, 0.05
    runner = PingRunner(
        run.sim, run.hosts[0], run.hosts[1].ip, payload_size=64,
        count=count, interval=interval,
    )
    start = run.sim.now
    runner.start(start)
    run.sim.run_until(start + count * interval + 2.0)
    return run


@pytest.mark.parametrize("shards", [2, 4])
def test_failover_episode_process_identical(shards):
    strict = _drive_failover(shards)
    process = _drive_failover(shards, sync="relaxed", backend="process")
    assert strict.partition.cut_segments
    # The outage really happened in the reference run.
    assert strict.segment("seg1").frames_lost > 0
    _assert_identical(strict, process, shards)


def test_lossy_pair_process_identical():
    strict = _drive_lossy(2)
    process = _drive_lossy(2, sync="relaxed", backend="process")
    assert strict.segment("lan1").frames_lost > 0
    assert strict.segment("lan1").frames_corrupted > 0
    _assert_identical(strict, process)


def test_extra_fault_timeline_process_identical():
    """Driver-supplied faults (link flaps mid-ping) survive the backend."""
    faults = [FaultSpec("link-down", 31.05, "seg1"), FaultSpec("link-up", 31.15, "seg1")]

    def drive(sync, backend="thread"):
        run = run_scenario(
            "ring", params={"n_bridges": 2, "hosts_per_segment": 1},
            shards=2, sync=sync, backend=backend, faults=faults,
        )
        run.warm_up()
        count, interval = 4, 0.05
        runner = PingRunner(
            run.sim, run.hosts[0], run.hosts[1].ip, payload_size=96,
            count=count, interval=interval,
        )
        start = run.sim.now
        runner.start(start)
        run.sim.run_until(start + count * interval + 2.0)
        return run

    strict = drive("strict")
    process = drive("relaxed", backend="process")
    _assert_identical(strict, process)


# ---------------------------------------------------------------------------
# Worker crash surfacing (the barrier must never hang)
# ---------------------------------------------------------------------------


class TestWorkerFailure:
    def test_worker_kill_mid_window_raises_typed_error(self):
        fabric = _fabric(shards=2)

        def boom():
            if procpool.worker_index() == 1:
                os.kill(os.getpid(), signal.SIGKILL)

        fabric.shards[0].schedule(0.001, lambda: None)
        fabric.shards[1].schedule(0.001, boom)
        with pytest.raises(FabricBackendError) as err:
            fabric.run_until(0.01)
        assert err.value.shard_index == 1
        assert err.value.window is not None
        start_ns, bound_ns = err.value.window
        assert start_ns <= bound_ns
        assert "shard 1" in str(err.value)
        # The failure latches the fabric; reset() unlatches it.
        with pytest.raises(FabricBackendError):
            fabric.run_until(0.02)
        fabric.reset()
        fabric.shards[0].schedule(0.001, lambda: None)
        assert fabric.run_until(0.01) == 1

    def test_worker_exception_carries_remote_traceback(self):
        fabric = _fabric(shards=2)

        def fail():
            raise RuntimeError("window went sideways")

        fabric.shards[1].schedule(0.001, fail)
        with pytest.raises(FabricBackendError) as err:
            fabric.run_until(0.01)
        assert err.value.shard_index == 1
        assert "window went sideways" in str(err.value)


# ---------------------------------------------------------------------------
# Single-measured-dispatch semantics
# ---------------------------------------------------------------------------


class TestDispatchLatch:
    def test_second_dispatch_raises_until_reset(self):
        fabric = _fabric()
        fabric.shards[0].schedule(0.001, lambda: None)
        assert fabric.run_until(0.01) == 1
        with pytest.raises(FabricBackendError):
            fabric.run_until(0.02)
        fabric.reset()
        fabric.shards[0].schedule(0.001, lambda: None)
        assert fabric.run_until(0.01) == 1

    def test_empty_dispatch_does_not_consume_the_measured_run(self):
        fabric = _fabric()
        assert fabric.run_until(0.01) == 0  # nothing due: no fork, no latch
        fabric.shards[0].schedule(0.02, lambda: None)
        assert fabric.run_until(0.05) == 1

    def test_budgeted_stepping_unsupported(self):
        fabric = _fabric()
        fabric.shards[0].schedule(0.001, lambda: None)
        with pytest.raises(FabricBackendError):
            fabric.run(max_events=1)
        with pytest.raises(FabricBackendError):
            fabric.step()

    def test_trace_clear_discards_pending_worker_results(self):
        fabric = _fabric()
        fabric.shards[0].schedule(0.001, lambda: fabric.shards[0].trace.emit("s", "x"))
        fabric.run_until(0.01)
        fabric.trace.clear()
        assert fabric.trace.canonical_records() == []
        assert len(fabric.trace) == 0

    def test_facade_now_correct_immediately_after_run(self):
        """The eager sync ships clocks before any trace query."""
        fabric = _fabric()
        fabric.shards[1].schedule(0.004, lambda: None)
        fabric.run_until(0.01)
        assert fabric.now == 0.01
        assert fabric.pending_events == 0


# ---------------------------------------------------------------------------
# Plumbing: spec / compile / facade validation
# ---------------------------------------------------------------------------


class TestBackendPlumbing:
    def test_partition_spec_validates_backend(self):
        assert PartitionSpec(shards=2, backend="process").backend == "process"
        with pytest.raises(ValueError):
            PartitionSpec(shards=2, backend="fibers")

    def test_fabric_rejects_unknown_backend(self):
        with pytest.raises(SimulationError):
            ShardedSimulator(shards=2, backend="fibers")
        fabric = ShardedSimulator(shards=2)
        with pytest.raises(SimulationError):
            fabric.set_backend("fibers")

    def test_compile_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            run_scenario(
                "chain", params={"n_bridges": 3}, shards=2, backend="fibers"
            )

    def test_run_scenario_backend_overrides_partition_spec(self):
        run = run_scenario(
            "chain",
            params={"n_bridges": 3},
            shards=PartitionSpec(shards=2, sync="relaxed", backend="process"),
            backend="thread",
        )
        assert run.backend == "thread"
        assert run.partition.backend == "thread"

    def test_partition_spec_backend_threads_through(self):
        run = run_scenario(
            "chain",
            params={"n_bridges": 3},
            shards=PartitionSpec(shards=2, sync="relaxed", backend="process"),
        )
        assert run.backend == "process"
        assert run.sim.relaxed_backend == "process"

    def test_strict_sync_ignores_process_backend(self):
        fabric = ShardedSimulator(shards=2, backend="process")
        fired = []
        fabric.shards[0].schedule(0.001, lambda: fired.append(1))
        assert fabric.run_until(0.01) == 1
        assert fired == [1]  # strict dispatch ran in-process

    def test_warm_up_preserves_the_measured_dispatch(self):
        run = run_scenario(
            "ring", params={"n_bridges": 2, "hosts_per_segment": 1},
            shards=2, sync="relaxed", backend="process",
        )
        run.warm_up()  # runs on the in-process backend
        assert run.backend == "process"  # restored
        # The measured dispatch is still available.
        sim = run.sim
        hosts = run.hosts
        runner = PingRunner(
            sim, hosts[0], hosts[1].ip, payload_size=96, count=1, interval=0.05
        )
        runner.start(sim.now)
        assert sim.run_until(sim.now + 1.0) > 0
