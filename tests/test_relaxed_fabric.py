"""Relaxed (canonical-merge) execution of the sharded fabric.

The correctness contract under test: a relaxed run's canonically merged
trace records — per-shard streams merged by ``(time, shard_id, source,
shard_seq)`` — plus every live counter and component statistic are identical
to the strict engine's, across the whole scenario catalog, with and without
worker threads, and reproducibly across repeated runs in one process.
"""

from __future__ import annotations

import pytest

from repro.ethernet.frame import EthernetFrame
from repro.exceptions import SimulationError, TopologyError
from repro.lan.topology import NetworkBuilder
from repro.measurement.ping import PingRunner
from repro.scenario import run_scenario
from repro.scenario.compile import plan_partition
from repro.scenario.registry import get_scenario, list_scenarios
from repro.scenario.spec import (
    DeviceSpec,
    HostSpec,
    PartitionSpec,
    PortSpec,
    ScenarioSpec,
    SegmentSpec,
    SwitchletSpec,
)
from repro.sim.fabric import ShardedSimulator
from repro.sim.trace import RingBufferSink


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _drive(name, shards, sync="strict", workers=0):
    """Compile, warm up and (when possible) ping across a catalog scenario."""
    params = {"n_bridges": 2} if name in ("ring", "chain") else None
    run = run_scenario(
        name, params=params, shards=shards, sync=sync, workers=workers
    )
    run.warm_up()
    hosts = run.hosts
    if len(hosts) >= 2:
        PingRunner(
            run.sim, hosts[0], hosts[1].ip, payload_size=96, count=2, interval=0.05
        ).run(start_time=run.sim.now)
    return run


def _canonical(run):
    trace = run.sim.trace
    if hasattr(trace, "canonical_records"):
        return trace.canonical_records()
    return list(trace)


def _observables(run):
    counters = dict(run.sim.trace.counters.by_category_source)
    host_stats = {host.name: host.statistics() for host in run.hosts}
    segment_stats = {
        name: (segment.frames_carried, segment.bytes_carried)
        for name, segment in run.network.segments.items()
    }
    return counters, host_stats, segment_stats, run.sim.now


def _assert_equivalent(reference, candidate, context=""):
    assert _canonical(candidate) == _canonical(reference), context
    assert _observables(candidate) == _observables(reference), context


# ---------------------------------------------------------------------------
# The headline: catalog-wide canonical-merge equivalence
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "name",
    sorted(entry.name for entry in list_scenarios() if not entry.tie_prone),
)
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_catalog_relaxed_is_canonical_merge_identical(name, shards):
    """Relaxed runs equal strict runs under the canonical merge, catalog-wide."""
    reference = _drive(name, shards, sync="strict")
    candidate = _drive(name, shards, sync="relaxed")
    assert candidate.sync == ("relaxed" if candidate.n_shards > 1 else "strict")
    _assert_equivalent(reference, candidate, (name, shards))


@pytest.mark.parametrize("name", ["ring", "vlan/trunk"])
def test_threaded_relaxed_equals_sequential(name):
    """Worker threads change nothing: the mailbox barrier is the only coupling."""
    sequential = _drive(name, 4, sync="relaxed")
    threaded = _drive(name, 4, sync="relaxed", workers=4)
    _assert_equivalent(sequential, threaded, name)


@pytest.mark.parametrize("name", sorted(entry.name for entry in list_scenarios()))
def test_catalog_express_report_is_stable(name):
    """Express-lane eligibility is declaration- and topology-driven.

    For a given scenario and shard count the per-segment report must be
    identical across independent compiles, identical between strict and
    relaxed fabrics (strict computes eligibility too — it just never engages
    a lane), and reproducible after warm-up (scheduled fault-model
    activations may legitimately move a segment off the lane, but two
    identical runs must agree on where it lands).
    """
    params = {"n_bridges": 2} if name in ("ring", "chain") else None

    def compiled(sync):
        return run_scenario(name, params=params, shards=4, sync=sync)

    first = compiled("relaxed")
    second = compiled("relaxed")
    report = first.express_report()
    assert report == second.express_report()
    assert set(report.values()) <= {"off", "inline", "deferred"}
    assert compiled("strict").express_report() == report
    first.warm_up()
    second.warm_up()
    assert first.express_report() == second.express_report()


@pytest.mark.parametrize("shards", [2, 4])
def test_relaxed_repeated_runs_are_deterministic(shards):
    """Two relaxed runs in one process produce identical canonical traces."""
    first = _drive("ring", shards, sync="relaxed")
    second = _drive("ring", shards, sync="relaxed")
    _assert_equivalent(first, second, shards)
    threaded_first = _drive("ring", shards, sync="relaxed", workers=shards)
    threaded_second = _drive("ring", shards, sync="relaxed", workers=shards)
    _assert_equivalent(threaded_first, threaded_second, shards)


# ---------------------------------------------------------------------------
# Cross-shard stress: chain with hosts on every segment
# ---------------------------------------------------------------------------


def _populated_chain_spec(n_bridges=5):
    """A learning-bridge chain with a host on *every* segment.

    Neighbouring hosts ping across every bridge, so frames cross every cut
    segment in both directions — cross-shard traffic dominates the run.
    """
    segments = tuple(SegmentSpec(f"seg{i}") for i in range(n_bridges + 1))
    hosts = tuple(HostSpec(f"h{i}", f"seg{i}") for i in range(n_bridges + 1))
    devices = tuple(
        DeviceSpec(
            f"bridge{i + 1}",
            kind="active-node",
            ports=(PortSpec("eth0", f"seg{i}"), PortSpec("eth1", f"seg{i + 1}")),
            switchlets=(
                SwitchletSpec("dumb-bridge"),
                SwitchletSpec("learning-bridge"),
            ),
        )
        for i in range(n_bridges)
    )
    return ScenarioSpec(
        name="chain/populated",
        description="bridge chain with per-segment hosts (cross-shard stress)",
        segments=segments,
        hosts=hosts,
        devices=devices,
    )


def _drive_populated_chain(shards, sync, workers=0):
    run = run_scenario(
        _populated_chain_spec(), shards=shards, sync=sync, workers=workers
    )
    run.warm_up()
    hosts = run.hosts
    # Every neighbouring pair pings across its bridge; staggered starts keep
    # several flights crossing different cuts at once.
    for index in range(len(hosts) - 1):
        PingRunner(
            run.sim,
            hosts[index],
            hosts[index + 1].ip,
            payload_size=64,
            count=2,
            interval=0.02,
        ).run(start_time=run.sim.now + 0.001 * index)
    return run


@pytest.mark.parametrize("shards", [2, 4])
def test_cross_shard_dominated_chain_is_equivalent(shards):
    reference = _drive_populated_chain(shards, "strict")
    candidate = _drive_populated_chain(shards, "relaxed")
    assert reference.partition.cut_segments  # the stress premise holds
    assert any(
        segment.cross_shard_frames
        for segment in reference.network.segments.values()
    )
    _assert_equivalent(reference, candidate, shards)


def test_cross_shard_dominated_chain_threaded():
    sequential = _drive_populated_chain(4, "relaxed")
    threaded = _drive_populated_chain(4, "relaxed", workers=4)
    _assert_equivalent(sequential, threaded)


# ---------------------------------------------------------------------------
# The express lane (inline-safe handlers)
# ---------------------------------------------------------------------------


def _build_blast(segments, shards, sync, frames):
    """The wire-speed workload: raw ping-pong pairs, bridge ports down."""
    run = run_scenario(
        "ring",
        params={"n_bridges": segments - 1, "hosts_per_segment": 2},
        shards=shards,
        sync=sync,
    )
    run.warm_up()
    for device in run.devices:
        for nic in device.interfaces.values():
            nic.set_up(False)
    states = []
    for segment_spec in run.spec.segments:
        left = run.host(f"{segment_spec.name}h1")
        right = run.host(f"{segment_spec.name}h2")
        forward = EthernetFrame(
            destination=right.mac, source=left.mac, ethertype=0x88B5,
            payload=b"\x00" * 64,
        )
        backward = EthernetFrame(
            destination=left.mac, source=right.mac, ethertype=0x88B5,
            payload=b"\x00" * 64,
        )
        state = [frames]
        states.append(state)

        def bounce(nic, reply, state=state):
            def handler(_nic, _frame):
                state[0] -= 1
                if state[0] > 0:
                    nic.send(reply)

            return handler

        # inline_safe only on the relaxed side: the strict engine ignores it,
        # which is exactly what makes the comparison meaningful.
        inline = sync == "relaxed"
        left.nic.set_handler(bounce(left.nic, forward), inline_safe=inline)
        right.nic.set_handler(bounce(right.nic, backward), inline_safe=inline)
    seeds = [
        run.host(f"{segment_spec.name}h1") for segment_spec in run.spec.segments
    ]
    forwards = [
        EthernetFrame(
            destination=run.host(f"{s.name}h2").mac,
            source=run.host(f"{s.name}h1").mac,
            ethertype=0x88B5,
            payload=b"\x00" * 64,
        )
        for s in run.spec.segments
    ]
    return run, states, seeds, forwards


def _blast(run, states, seeds, forwards, frames, horizon=None):
    for state in states:
        state[0] = frames
    sim = run.sim
    for host, frame in zip(seeds, forwards):
        host.nic.send(frame)
    sim.run_until(horizon if horizon is not None else sim.now + frames * 40e-6)


def test_express_lane_blast_is_equivalent():
    frames = 30
    strict_run, s_states, s_seeds, s_fwd = _build_blast(8, 4, "strict", frames)
    relaxed_run, r_states, r_seeds, r_fwd = _build_blast(8, 4, "relaxed", frames)
    # The express precondition: shard-local segments with only inline-safe /
    # downed receivers.
    assert any(
        segment._express for segment in relaxed_run.network.segments.values()
    )
    _blast(strict_run, s_states, s_seeds, s_fwd, frames)
    _blast(relaxed_run, r_states, r_seeds, r_fwd, frames)
    assert all(state[0] <= 0 for state in r_states)
    _assert_equivalent(strict_run, relaxed_run)


def test_express_lane_horizon_straddling_resumes_exactly():
    """Cutting a run mid-cascade and resuming matches strict at every stop."""
    frames = 20
    strict_run, s_states, s_seeds, s_fwd = _build_blast(6, 3, "strict", frames)
    relaxed_run, r_states, r_seeds, r_fwd = _build_blast(6, 3, "relaxed", frames)
    # Stop mid-exchange: the horizon lands inside every pair's ping-pong.
    mid = strict_run.sim.now + frames * 40e-6 / 3
    end = strict_run.sim.now + frames * 40e-6
    _blast(strict_run, s_states, s_seeds, s_fwd, frames, horizon=mid)
    _blast(relaxed_run, r_states, r_seeds, r_fwd, frames, horizon=mid)
    assert dict(strict_run.sim.trace.counters.by_category_source) == dict(
        relaxed_run.sim.trace.counters.by_category_source
    )
    strict_run.sim.run_until(end)
    relaxed_run.sim.run_until(end)
    assert all(state[0] <= 0 for state in r_states)
    _assert_equivalent(strict_run, relaxed_run)


def test_express_pump_stops_at_control_barriers():
    """A driver callback mid-blast observes exactly the strict engine's state.

    Regression: the pump used to run whole cascades to the dispatch horizon,
    past pending control-ring events, so a facade-scheduled observer saw
    future traffic.
    """
    frames = 30
    observations = {}

    def drive(sync):
        run, states, seeds, forwards = _build_blast(6, 3, sync, frames)
        seg = run.segment("seg0")
        sim = run.sim
        at = sim.now + 0.0001  # mid-blast (the exchange takes ~0.3 ms)
        sim.schedule_at(
            at, lambda: observations.setdefault(sync, seg.frames_carried)
        )
        _blast(run, states, seeds, forwards, frames)
        return run

    strict_run = drive("strict")
    relaxed_run = drive("relaxed")
    assert observations["relaxed"] == observations["strict"]
    assert 0 < observations["strict"] < strict_run.segment("seg0").frames_carried
    _assert_equivalent(strict_run, relaxed_run)


def test_express_pump_respects_horizon_with_future_control_event():
    """A control event beyond the horizon must not extend express cascades.

    Regression: the pump bound was control_t - 1 unclamped, so a pending
    driver timeout far in the future let cascades overrun run_until().
    """
    frames = 30

    def drive(sync):
        run, states, seeds, forwards = _build_blast(6, 3, sync, frames)
        run.sim.schedule(5.0, lambda: None)  # a far-future driver timeout
        # The 64-byte exchange cycles every ~10.6 us; land inside it.
        mid = run.sim.now + frames * 40e-6 / 8
        _blast(run, states, seeds, forwards, frames, horizon=mid)
        return run, states

    strict_run, strict_states = drive("strict")
    relaxed_run, relaxed_states = drive("relaxed")
    assert [s[0] for s in relaxed_states] == [s[0] for s in strict_states]
    assert any(s[0] > 0 for s in relaxed_states)  # genuinely cut mid-exchange
    assert relaxed_run.sim.now == strict_run.sim.now
    assert dict(relaxed_run.sim.trace.counters.by_category_source) == dict(
        strict_run.sim.trace.counters.by_category_source
    )


def test_cut_segment_stats_survive_horizon_cut():
    """cross_shard_frames on express cut segments match strict mid-run."""
    frames = 20
    strict_run, s_states, s_seeds, s_fwd = _build_blast(6, 3, "strict", frames)
    relaxed_run, r_states, r_seeds, r_fwd = _build_blast(6, 3, "relaxed", frames)
    mid = strict_run.sim.now + frames * 40e-6 / 3
    _blast(strict_run, s_states, s_seeds, s_fwd, frames, horizon=mid)
    _blast(relaxed_run, r_states, r_seeds, r_fwd, frames, horizon=mid)
    strict_stats = {
        name: (seg.frames_carried, seg.cross_shard_frames)
        for name, seg in strict_run.network.segments.items()
    }
    relaxed_stats = {
        name: (seg.frames_carried, seg.cross_shard_frames)
        for name, seg in relaxed_run.network.segments.items()
    }
    assert relaxed_stats == strict_stats
    assert any(cross for _, cross in strict_stats.values())


def test_facade_homed_segment_works_in_both_modes():
    """A segment built directly against the fabric facade still transmits."""
    from repro.ethernet.mac import MacAddress
    from repro.lan.nic import NetworkInterface
    from repro.lan.segment import Segment

    for sync in ("strict", "relaxed"):
        fabric = ShardedSimulator(shards=2, sync=sync)
        segment = Segment(fabric, "facade-lan")
        a = NetworkInterface(fabric, "a", MacAddress.from_string("02:00:00:aa:00:01"))
        b = NetworkInterface(fabric, "b", MacAddress.from_string("02:00:00:aa:00:02"))
        a.attach(segment)
        b.attach(segment)
        got = []
        b.set_handler(lambda nic, frame: got.append(frame))
        a.send(
            EthernetFrame(
                destination=b.mac, source=a.mac, ethertype=0x88B5, payload=b"hi"
            )
        )
        fabric.run_until(0.01)
        assert len(got) == 1, sync


def test_facade_homed_nic_on_cut_segment_relaxed():
    """A monitoring NIC built against ``run.sim`` works on a relaxed cut segment."""
    from repro.ethernet.mac import MacAddress
    from repro.lan.nic import NetworkInterface

    def drive(sync):
        run = run_scenario(
            "ring", params={"n_bridges": 3, "hosts_per_segment": 1},
            shards=2, sync=sync,
        )
        cut_name = (run.partition.cut_segments or ("seg1",))[0]
        monitor = NetworkInterface(
            run.sim, "monitor.eth0", MacAddress.from_string("02:00:00:ff:00:01")
        )
        monitor.set_promiscuous(True)
        monitor.attach(run.segment(cut_name))
        run.warm_up()
        return run, monitor

    strict_run, strict_monitor = drive("strict")
    relaxed_run, relaxed_monitor = drive("relaxed")
    assert strict_monitor.frames_received > 0
    assert relaxed_monitor.statistics() == strict_monitor.statistics()
    assert dict(relaxed_run.sim.trace.counters.by_category_source) == dict(
        strict_run.sim.trace.counters.by_category_source
    )


def test_express_refresh_follows_handler_and_link_state():
    run = run_scenario(
        "ring",
        params={"n_bridges": 3, "hosts_per_segment": 2},
        shards=2,
        sync="relaxed",
    )
    run.warm_up()
    segment = run.segment("seg0")
    # Bridge demux handlers are not inline-safe, but every station on the
    # segment is segment-local, so a shard-local segment earns the deferred
    # lane (batched wire service; deliveries stay on the ring).
    assert segment.express_mode == "deferred"
    for device in run.devices:
        for nic in device.interfaces.values():
            nic.set_up(False)
    host = run.host("seg0h1")
    other = run.host("seg0h2")
    host.nic.set_handler(lambda n, f: None, inline_safe=True)
    other.nic.set_handler(lambda n, f: None, inline_safe=True)
    assert segment.express_mode == "inline"
    # Bringing a bridge port back up demotes the lane: its demux handler is
    # segment-local (deferred stays legal) but not inline-safe.
    bridge_nic = next(iter(run.device("bridge1").interfaces.values()))
    if bridge_nic.segment is segment:
        bridge_nic.set_up(True)
        assert segment.express_mode == "deferred"
    # A handler declaring neither contract kills the lane outright.
    host.nic.set_handler(lambda n, f: None)
    assert segment.express_mode == "off"
    # And revoking the segment-local declaration alone does the same for the
    # remaining stations.
    other.nic.set_handler(lambda n, f: None, segment_local=True)
    assert segment.express_mode == "off"


# ---------------------------------------------------------------------------
# Facade semantics under relaxed sync
# ---------------------------------------------------------------------------


class TestRelaxedFacade:
    def _fabric(self, shards=3, **kwargs):
        return ShardedSimulator(shards=shards, sync="relaxed", **kwargs)

    def test_run_until_advances_clock_and_drains(self):
        fabric = self._fabric()
        fired = []
        for index, shard in enumerate(fabric.shards):
            shard.schedule(0.001 * (index + 1), lambda i=index: fired.append(i))
        dispatched = fabric.run_until(0.01)
        assert dispatched == 3
        assert sorted(fired) == [0, 1, 2]
        assert fabric.now == 0.01
        assert fabric.pending_events == 0

    def test_run_drains_and_clock_reaches_last_event(self):
        fabric = self._fabric()
        fabric.shards[2].schedule(0.5, lambda: None)
        fabric.shards[0].schedule(0.25, lambda: None)
        assert fabric.run() == 2
        assert fabric.now == 0.5

    def test_max_events_budget_and_step(self):
        fabric = self._fabric()
        for shard in fabric.shards:
            shard.schedule(0.001, lambda: None)
            shard.schedule(0.002, lambda: None)
        assert fabric.run(max_events=4) == 4
        assert fabric.pending_events == 2
        assert fabric.step() is True
        assert fabric.run() == 1
        assert fabric.step() is False

    def test_relaxed_stats_and_mode_report(self):
        fabric = self._fabric()
        fabric.shards[0].schedule(0.001, lambda: None)
        fabric.run_until(0.01)
        assert fabric.sync == "relaxed"
        assert fabric.relaxed_stats["windows"] >= 1
        assert all(not shard.outbox for shard in fabric.shards)
        assert all(not shard.relaxed for shard in fabric.shards)

    def test_reset_clears_relaxed_state(self):
        fabric = self._fabric()
        fabric.shards[1].schedule(0.75, lambda: None)
        fabric.run()
        fabric.reset()
        assert fabric.now == 0.0
        assert fabric.pending_events == 0
        assert len(fabric.trace) == 0

    def test_facade_now_is_context_local_during_windows(self):
        """Measurement callbacks fired mid-window read their shard's present.

        Regression: ping RTTs are computed from ``facade.now`` inside a
        reply handler running in component context; a stale shared clock
        made every relaxed RTT zero.
        """
        run = run_scenario("pair/active-bridge", shards=2, sync="relaxed")
        run.warm_up()
        relaxed = PingRunner(
            run.sim, run.hosts[0], run.hosts[1].ip, payload_size=512, count=3,
            interval=0.1,
        ).run(start_time=run.sim.now)
        twin = run_scenario("pair/active-bridge", shards=2)
        twin.warm_up()
        strict = PingRunner(
            twin.sim, twin.hosts[0], twin.hosts[1].ip, payload_size=512,
            count=3, interval=0.1,
        ).run(start_time=twin.sim.now)
        assert relaxed.received == 3
        assert min(relaxed.rtts) > 0
        assert relaxed.rtts == strict.rtts
        assert relaxed.bridge_forwards == strict.bridge_forwards

    def test_canonical_records_available_in_strict_mode_too(self):
        fabric = ShardedSimulator(shards=2)
        fabric.shards[0].schedule(0.001, lambda: fabric.shards[0].trace.emit("a", "x"))
        fabric.shards[1].schedule(0.001, lambda: fabric.shards[1].trace.emit("b", "x"))
        fabric.run()
        canonical = fabric.trace.canonical_records()
        assert [record.source for record in canonical] == ["a", "b"]


# ---------------------------------------------------------------------------
# Mode validation and plumbing
# ---------------------------------------------------------------------------


class TestSyncPlumbing:
    def test_partition_spec_rejects_unknown_sync(self):
        with pytest.raises(ValueError):
            PartitionSpec(shards=2, sync="optimistic")
        with pytest.raises(ValueError):
            PartitionSpec(shards=2, workers=-1)

    def test_fabric_rejects_unknown_sync(self):
        with pytest.raises(SimulationError):
            ShardedSimulator(shards=2, sync="bogus")

    def test_relaxed_refuses_shared_sinks(self):
        fabric = ShardedSimulator(shards=2, trace_sinks=[RingBufferSink(16)])
        with pytest.raises(SimulationError):
            fabric.set_sync("relaxed")

    def test_run_scenario_sync_overrides_partition_spec(self):
        run = run_scenario(
            "chain",
            params={"n_bridges": 3},
            shards=PartitionSpec(shards=2, sync="relaxed"),
            sync="strict",
        )
        assert run.sync == "strict"
        assert run.partition.sync == "strict"

    def test_compile_rejects_unknown_sync(self):
        with pytest.raises(ValueError):
            run_scenario("chain", params={"n_bridges": 3}, shards=2, sync="nope")

    def test_mode_switch_mid_experiment(self):
        """Strict warm-up then relaxed measurement — the headline pattern."""
        run = run_scenario(
            "ring", params={"n_bridges": 3, "hosts_per_segment": 1}, shards=2
        )
        run.warm_up()
        assert run.sync == "strict"
        run.sim.set_sync("relaxed")
        run.sim.run_for(2.0)
        run.sim.set_sync("strict")
        run.sim.run_for(2.0)
        # Compare against an all-strict twin.
        twin = run_scenario(
            "ring", params={"n_bridges": 3, "hosts_per_segment": 1}, shards=2
        )
        twin.warm_up()
        twin.sim.run_for(4.0)
        assert run.sim.trace.canonical_records() == twin.sim.trace.canonical_records()


# ---------------------------------------------------------------------------
# Partitioner force-advance and the widened IP allocator
# ---------------------------------------------------------------------------


class TestPartitionerAndAddressing:
    def test_every_shard_gets_a_segment(self):
        spec = get_scenario("ring")  # 3 bridges -> 4 segments
        plan = plan_partition(spec, 4)
        segment_shards = [
            plan.assignments[segment.name] for segment in spec.segments
        ]
        assert segment_shards == [0, 1, 2, 3]
        assert plan.lookahead_ns is not None

    def test_large_ring_balances_across_shards(self):
        spec = get_scenario("ring", n_bridges=255, hosts_per_segment=2)
        plan = plan_partition(spec, 4)
        from collections import Counter

        sizes = Counter(
            plan.assignments[segment.name] for segment in spec.segments
        )
        assert set(sizes) == {0, 1, 2, 3}
        assert max(sizes.values()) - min(sizes.values()) <= 2

    def test_ip_allocation_rolls_into_next_subnet(self):
        builder = NetworkBuilder()
        addresses = [str(builder.allocate_ip()) for _ in range(300)]
        assert addresses[0] == "10.0.0.1"
        assert addresses[253] == "10.0.0.254"
        assert addresses[254] == "10.0.1.1"
        assert addresses[299] == "10.0.1.46"
        assert len(set(addresses)) == 300

    def test_ip_allocation_rolls_into_next_slash16(self):
        # Exhausting the third octet no longer fails: allocation rolls into
        # the next /16 so 65k+-station populations keep allocating.
        builder = NetworkBuilder(subnet_prefix="10.0.254")
        for _ in range(254):
            builder.allocate_ip()
        rolled = builder.allocate_ip()
        assert str(rolled) == "10.1.0.1"

    def test_ip_allocation_exhaustion_still_raises(self):
        # True exhaustion — nowhere left to roll past the second octet.
        builder = NetworkBuilder(subnet_prefix="10.254.254")
        for _ in range(254):
            builder.allocate_ip()
        with pytest.raises(TopologyError):
            builder.allocate_ip()

    def test_256_lan_ring_compiles_with_hosts(self):
        run = run_scenario(
            "ring",
            params={"n_bridges": 255, "hosts_per_segment": 2},
            shards=4,
            sync="relaxed",
        )
        assert run.n_shards == 4
        assert len(run.spec.hosts) == 512
        ips = {str(host.ip) for host in run.hosts}
        assert len(ips) == 512
