"""Small statistics helpers shared by the measurement tools and benchmarks."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence).

    Uses a compensated sum and clamps into ``[min, max]`` so the mean of a
    constant sample is that constant even when division rounds by one ulp —
    the summary invariant ``min <= mean <= max`` must hold exactly.
    """
    data = list(values)
    if not data:
        return 0.0
    result = math.fsum(data) / len(data)
    return min(max(result, min(data)), max(data))


def median(values: Sequence[float]) -> float:
    """Median (0.0 for an empty sequence)."""
    data = sorted(values)
    if not data:
        return 0.0
    middle = len(data) // 2
    if len(data) % 2:
        return data[middle]
    return (data[middle - 1] + data[middle]) / 2.0


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation (0.0 for fewer than two samples)."""
    data = list(values)
    if len(data) < 2:
        return 0.0
    center = mean(data)
    return math.sqrt(sum((value - center) ** 2 for value in data) / len(data))


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile; ``fraction`` in [0, 1]."""
    data = sorted(values)
    if not data:
        return 0.0
    if fraction <= 0:
        return data[0]
    if fraction >= 1:
        return data[-1]
    position = fraction * (len(data) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return data[lower]
    weight = position - lower
    return data[lower] * (1 - weight) + data[upper] * weight


def summarize(values: Iterable[float]) -> Dict[str, float]:
    """A dict of the usual summary statistics for a sample."""
    data: List[float] = list(values)
    return {
        "count": float(len(data)),
        "mean": mean(data),
        "median": median(data),
        "stdev": stdev(data),
        "min": min(data) if data else 0.0,
        "max": max(data) if data else 0.0,
        "p95": percentile(data, 0.95),
    }


def megabits_per_second(byte_count: int, elapsed_seconds: float) -> float:
    """Convert a byte count over an interval to Mb/s (0.0 if the interval is empty)."""
    if elapsed_seconds <= 0:
        return 0.0
    return byte_count * 8.0 / elapsed_seconds / 1e6
