"""A shared broadcast LAN segment.

The segment models classic shared Ethernet: one transmission at a time, every
attached station sees every frame, and a frame occupies the wire for
``wire_length * 8 / bandwidth`` seconds plus a small propagation delay.
Stations that want to transmit while the medium is busy are queued in FIFO
order (an idealized, collision-free CSMA — adequate because the paper's
experiments are not collision-bound, they are bridge-CPU-bound).

**Inter-shard channel.**  Under the sharded fabric
(:mod:`repro.sim.fabric`) a segment may have stations placed on other shard
engines than its own; such a segment is a *cut segment* and cross-shard frame
handoff is the fabric's only coupling point.  The segment detects this
automatically from its interfaces' home engines (:meth:`attach` /
:meth:`detach` refresh the plan) and routes delivery through per-shard
delivery runs: one delivery event per contiguous run of same-shard receivers,
scheduled on the receiving shard at the same ``deliver_at`` the single engine
would use.  The handoff latency is bounded below by
:attr:`propagation_delay` — the fabric's conservative-synchronization
lookahead.  On a homogeneous segment (every station on the segment's own
engine — in particular, any unsharded run) the classic single-event delivery
path is taken unchanged.

**Relaxed mode.**  Under the fabric's relaxed sync (:mod:`repro.sim.relaxed`)
a cut segment becomes a *mailbox channel*: transmits are deferred to the
window barrier and replayed in canonical ``(time, shard, position)`` order
(:meth:`Segment._apply_relaxed_transmit`), and delivery runs are staged in
the sending shard's outbox instead of being pushed into other shards' rings
mid-window — that is what makes cross-shard handoff thread-safe without a
single lock on the frame path.  Shard-local segments additionally get an
*express lane* with two strengths (see :meth:`Segment._refresh_express` for
the eligibility rules):

* **inline** (:meth:`Segment._express_pump`) — every up receiver is inert or
  declared ``inline_safe``: the whole service → delivery → reply chain runs
  inline at exact strict-engine timestamps, skipping the event ring
  entirely;
* **deferred** (:meth:`Segment._express_drain`) — every up receiver is inert
  or declared ``segment_local`` (its reactions ride a CPU queue or timer,
  never the wire synchronously): wire *service* is batched at transmit time
  — one clock fetch and one arithmetic chain per backlog instead of one
  service event per frame — while deliveries stay on the event ring at their
  exact strict-engine timestamps, so handlers still execute in global shard
  time order.

**Fault hooks.**  The fault subsystem (:mod:`repro.faults`) drives three
dynamic knobs, all mutated only from driver/control context — the single
engine's queue, strict shard 0, or relaxed control barriers — so mid-window
shard threads only ever *read* them:

* :meth:`set_link` — whole-segment failure (cable cut): a downed segment
  drops at the sender (no carrier), drains its transmit queue, and vetoes
  the express lane; frames whose delivery event was already on the wire at
  the instant of failure still arrive (the failure happens "behind" them).
* :meth:`set_fault_model` — a seeded loss/corruption model consulted once
  per serviced frame; judged frames occupy the wire exactly as delivered
  ones (``_busy_until`` chains are unchanged) but are counted in
  :attr:`frames_lost` / :attr:`frames_corrupted` instead of delivered.
  An active model vetoes the express lane — eligibility is re-evaluated on
  every model change, exactly as on every port up/down.
* :meth:`set_degrade` — scales bandwidth down and/or adds propagation delay
  (never below the compiled values, so the fabric's cut-segment lookahead
  stays conservative).
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import TYPE_CHECKING, Deque, List, Optional, Tuple

from repro.ethernet.frame import EthernetFrame
from repro.exceptions import TopologyError
from repro.sim.clock import NANOSECONDS_PER_SECOND
from repro.sim.engine import Simulator
from repro.sim.relaxed import active_shard

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking only
    from repro.lan.nic import NetworkInterface

#: 100 Mb/s, the LAN speed used throughout the paper's evaluation.
DEFAULT_BANDWIDTH_BPS = 100_000_000

#: A few microseconds of propagation/repeater latency per segment.
DEFAULT_PROPAGATION_DELAY = 2e-6

#: Express-lane modes (``Segment._express``).  Kept as ints so the hot-path
#: gate stays one truthiness check.
EXPRESS_OFF = 0
EXPRESS_INLINE = 1
EXPRESS_DEFERRED = 2

_EXPRESS_MODE_NAMES = ("off", "inline", "deferred")


class Segment:
    """A shared, half-duplex broadcast Ethernet segment.

    Args:
        sim: the owning simulator.
        name: segment name used in traces (e.g. ``"lan1"``).
        bandwidth_bps: wire speed in bits per second.
        propagation_delay: one-way propagation delay in seconds.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        propagation_delay: float = DEFAULT_PROPAGATION_DELAY,
    ) -> None:
        if bandwidth_bps <= 0:
            raise TopologyError("segment bandwidth must be positive")
        if propagation_delay < 0:
            raise TopologyError("propagation delay cannot be negative")
        self.sim = sim
        self.name = name
        self.bandwidth_bps = float(bandwidth_bps)
        self.propagation_delay = float(propagation_delay)
        # Register with the owning fabric (when sharded) so the process
        # backend can rebind serialized cross-shard mail by segment name.
        registry = getattr(sim, "_segments", None)
        if registry is None:
            registry = getattr(getattr(sim, "fabric", None), "_segments", None)
        if registry is not None:
            registry[name] = self
        # The trace hub never changes over the segment's lifetime.
        self._trace = sim.trace
        # Delivery/service events are never cancelled: use the engine's
        # fire-and-forget scheduler when it offers one (the sharded fabric's
        # cores do); otherwise a cached bound schedule_at.
        fire = getattr(sim, "schedule_fire", None)
        self._schedule = fire if fire is not None else sim.schedule_at
        self._interfaces: list["NetworkInterface"] = []
        # Attach-order snapshot iterated on delivery; rebuilding it on
        # attach/detach (rare) keeps the per-frame path copy-free.
        self._receivers: Tuple["NetworkInterface", ...] = ()
        self._busy_until = 0.0
        self._pending: Deque[Tuple["NetworkInterface", EthernetFrame]] = deque()
        self._in_service = False
        # Event labels are fixed per segment; building them per frame shows
        # up on the hot path.
        self._deliver_label = f"{name}:deliver"
        self._next_label = f"{name}:next"
        # Inter-shard delivery plan: None while every attached station lives
        # on this segment's own engine (the common, unsharded case); else a
        # list of (engine, [interfaces]) runs in attach order.
        self._delivery_runs: Optional[List[tuple]] = None
        # Express-lane eligibility (relaxed mode only): EXPRESS_INLINE runs
        # the whole causal service -> delivery -> reply chain inline when the
        # segment is shard-local and every up receiver is inert or declared
        # inline-safe; EXPRESS_DEFERRED batches wire service at transmit time
        # (deliveries stay on the ring) when every up receiver is inert or
        # declared segment-local.  Refreshed on attach/detach/set_up/
        # set_handler and every fault hook; see _express_pump and
        # _express_drain for the contracts.
        self._express = EXPRESS_OFF
        # Deferred-express bookkeeping: frames whose service was batched but
        # whose delivery has not fired yet.  Entries are
        # [pop_ns, prior_busy, sender, frame, live] lists shared with the
        # scheduled delivery callback; set_link(False) kills the not-yet-
        # on-the-wire suffix and rolls the busy chain back (classic drop
        # semantics without per-frame service events).
        self._express_inflight: Deque[list] = deque()
        # Multi-source drain coalescing (population-scale hot path): the
        # first transmit of an instant drains directly (zero overhead for
        # the single-source workloads), and any further same-instant
        # transmits arm ONE batched drain event that collects the whole
        # backlog after every same-instant sender has enqueued.
        self._last_drain_ns = -1
        self._drain_armed = False
        # Fault state (repro.faults): link status, the loss/corruption model
        # consulted per serviced frame, and the nominal wire characteristics
        # set_degrade() scales from.  Only mutated from driver/control
        # context; see the module docstring's fault-hooks contract.
        self._link_up = True
        self._fault_model = None
        self._nominal_bandwidth_bps = self.bandwidth_bps
        self._nominal_propagation_delay = self.propagation_delay
        # Statistics
        self.frames_carried = 0
        self.bytes_carried = 0
        self.cross_shard_frames = 0
        self.frames_lost = 0
        self.frames_corrupted = 0
        #: Frames serviced through a coalesced multi-source batch drain.
        self.frames_coalesced = 0
        # Precompiled per-frame service pipeline (see _refresh_pipeline):
        # _service_next dispatches through this cached bound method so the
        # per-frame loop pays zero topology/fault conditionals on plain
        # segments.
        self._serve_frame = self._serve_frame_plain

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------

    @property
    def interfaces(self) -> tuple:
        """The NICs currently attached to this segment."""
        return tuple(self._interfaces)

    def attach(self, interface: "NetworkInterface") -> None:
        """Attach a NIC.  A NIC may be attached to at most one segment."""
        if interface in self._interfaces:
            raise TopologyError(
                f"interface {interface.name} is already attached to {self.name}"
            )
        self._interfaces.append(interface)
        self._receivers = tuple(self._interfaces)
        self._refresh_delivery_runs()

    def detach(self, interface: "NetworkInterface") -> None:
        """Detach a NIC (frames already queued from it still complete)."""
        if interface not in self._interfaces:
            raise TopologyError(
                f"interface {interface.name} is not attached to {self.name}"
            )
        self._interfaces.remove(interface)
        self._receivers = tuple(self._interfaces)
        self._refresh_delivery_runs()

    def _refresh_delivery_runs(self) -> None:
        """Recompute the inter-shard delivery plan from interface residency.

        Attach order is preserved: contiguous same-engine receivers share one
        delivery event, and run order equals attach order, so the sharded
        receive order (and every trace record it produces) is exactly the
        single engine's.
        """
        home = self.sim
        if all(interface.home_sim is home for interface in self._interfaces):
            self._delivery_runs = None
            self._refresh_express()
            return
        runs: List[tuple] = []
        current_sim = None
        current_run: Optional[list] = None
        for interface in self._interfaces:
            engine = interface.home_sim
            if engine is not current_sim:
                current_run = []
                runs.append((engine, current_run))
                current_sim = engine
            current_run.append(interface)
        self._delivery_runs = runs
        self._refresh_express()

    def _refresh_express(self) -> None:
        """Recompute express-lane eligibility (the relaxed-mode fast path).

        Two lane strengths, decided per refresh (strongest first):

        * **inline** (:data:`EXPRESS_INLINE`): the whole causal chain is
          provably home-driven — every administratively-up interface either
          has no handler (a pure counter/trace endpoint) or carries one its
          owner declared ``inline_safe`` via
          :meth:`NetworkInterface.set_handler`, and every interface homed on
          another shard is down.  Down interfaces never run handlers or
          send, so they do not veto — a downed remote bridge port cannot
          inject cross-shard traffic, and its drop counting is routed
          through the outbox (thread-safely, on its own shard).  This is
          exactly what lets the wire-speed sweeps express-run every segment
          of the ring once the bridge ports are down, cut segments included.

        * **deferred** (:data:`EXPRESS_DEFERRED`): the segment is strictly
          shard-local (no delivery runs at all) and every up interface is
          inert, ``inline_safe`` or ``segment_local`` — its handlers never
          transmit onto *other* segments synchronously from delivery
          context; reactions ride CPU queues or timers.  The drain never
          executes handlers inline (deliveries stay on the ring at exact
          strict timestamps), so this covers every catalog protocol whose
          forwarding path rides a :class:`~repro.costs.cpu.CpuQueue`:
          learning/static/VLAN bridges, repeaters, hosts and their ping
          responders — the control-heavy topologies (``ring/failover``) the
          inline rule used to veto.

        Fault state vetoes both lanes: a downed link never delivers and an
        active loss model draws from a stochastic stream at service order
        and service *time*, which the batched drain would stamp differently.
        Every fault mutation (:meth:`set_link`, :meth:`set_fault_model`) and
        every port up/down re-runs this refresh — and re-selects the
        precompiled service pipeline — which is what makes mid-run fall-back
        and re-expression deterministic.
        """
        self._refresh_pipeline()
        model = self._fault_model
        if not self._link_up or (model is not None and model.active):
            self._express = EXPRESS_OFF
            return
        home = self.sim
        inline_ok = True
        defer_ok = self._delivery_runs is None
        for interface in self._interfaces:
            up = interface.up
            if interface.home_sim is not home:
                if up:
                    inline_ok = False
                    defer_ok = False
                    break
                continue
            if not up or interface._handler is None:
                continue
            if not interface._inline_safe:
                inline_ok = False
                if not interface._segment_local:
                    defer_ok = False
                    break
        if inline_ok:
            self._express = EXPRESS_INLINE
        elif defer_ok:
            self._express = EXPRESS_DEFERRED
        else:
            self._express = EXPRESS_OFF

    @property
    def express_mode(self) -> str:
        """Current express-lane eligibility: ``off``, ``inline`` or ``deferred``."""
        return _EXPRESS_MODE_NAMES[self._express]

    def _refresh_pipeline(self) -> None:
        """Re-select the precompiled per-frame service pipeline.

        ``_service_next`` dispatches each frame through one cached bound
        method, chosen here from the segment's topology/fault shape, so the
        common no-runs/no-model segment serves frames with zero per-frame
        conditionals.  Invalidated by exactly the hooks that refresh express
        eligibility (attach/detach, port up/down, handler changes, every
        fault mutation) plus :meth:`set_degrade`.  The arithmetic in every
        variant is kept textually identical to preserve bit-identical floats
        across engine modes.
        """
        if self._delivery_runs is not None:
            self._serve_frame = self._serve_frame_cut
        elif self._fault_model is not None:
            self._serve_frame = self._serve_frame_model
        else:
            self._serve_frame = self._serve_frame_plain

    # ------------------------------------------------------------------
    # Fault hooks (repro.faults) — driver/control context only
    # ------------------------------------------------------------------

    @property
    def link_up(self) -> bool:
        """Whether the segment's medium is currently operational."""
        return self._link_up

    def set_link(self, up: bool) -> None:
        """Fail or restore the whole segment (cable cut / splice).

        Failing the link drops everything still queued for the medium at the
        instant of failure (counted in :attr:`frames_lost`, one
        ``segment.drop`` record each) and makes every later transmit drop at
        the sender until the link is restored.  Frames whose delivery event
        already left the wire keep arriving — the in-flight window is
        sub-propagation-delay and the cut happens behind them.

        Must run in driver/control context (fault timelines schedule through
        the simulator facade, which guarantees it); mid-window shard code
        only reads the flag.
        """
        up = bool(up)
        if up == self._link_up:
            return
        self._link_up = up
        trace = self._trace
        if trace.wants("segment.link"):
            trace.emit(self.name, "segment.link", {"up": up})
        if not up:
            pending = self._pending
            while pending:
                sender, frame = pending.popleft()
                self._count_drop(sender, frame, "link-down")
            inflight = self._express_inflight
            if inflight:
                # Deferred-express frames were serviced (batched) ahead of
                # time; the ones whose classic service *pop* would not have
                # happened yet (pop_ns >= now: faults precede same-instant
                # traffic in every mode) are exactly the frames the classic
                # path would still hold queued — kill their parked
                # deliveries, roll the busy chain back to the first killed
                # frame and count the drops in FIFO order.
                now_ns = self.sim.clock._now_ns
                killed: List[list] = []
                while inflight and inflight[-1][0] >= now_ns:
                    killed.append(inflight.pop())
                if killed:
                    killed.reverse()
                    self._busy_until = killed[0][1]
                    for entry in killed:
                        entry[4] = 0
                        self.frames_carried -= 1
                        self.bytes_carried -= entry[3].wire_length
                        if len(entry) == 6:
                            # Cut-drain entry: its serve also counted a
                            # cross-shard frame that now never crosses.
                            self.cross_shard_frames -= 1
                        self._count_drop(entry[2], entry[3], "link-down")
        self._refresh_express()

    def set_fault_model(self, model) -> None:
        """Attach (or with ``None`` detach) a per-frame loss/corruption model.

        The model is duck-typed — ``active`` plus ``judge(frame)`` returning
        ``None``/``"loss"``/``"corrupt"`` — and is consulted exactly once per
        serviced frame, in segment service order (see
        :class:`repro.faults.models.FrameLossModel` for the determinism
        argument).  Attaching an active model revokes the express lane;
        detaching re-evaluates eligibility.
        """
        self._fault_model = model
        trace = self._trace
        if trace.wants("segment.fault_model"):
            trace.emit(
                self.name,
                "segment.fault_model",
                {"model": repr(model) if model is not None else "none"},
            )
        self._refresh_express()

    def set_degrade(
        self, bandwidth_scale: float = 1.0, extra_delay: float = 0.0
    ) -> None:
        """Degrade the wire: scale bandwidth down, add propagation delay.

        Both knobs move relative to the segment's *nominal* (construction
        time) characteristics, so repeated calls do not compound and the
        neutral arguments restore the segment exactly.  Bandwidth can only
        shrink and delay only grow: the partitioner derived the fabric's
        conservative lookahead from the nominal propagation delays, and a
        shorter delay on a cut segment would break that bound.
        """
        if not 0.0 < bandwidth_scale <= 1.0:
            raise TopologyError(
                f"degrade bandwidth_scale {bandwidth_scale} outside (0, 1]"
            )
        if extra_delay < 0:
            raise TopologyError(f"degrade extra_delay {extra_delay} is negative")
        self.bandwidth_bps = self._nominal_bandwidth_bps * bandwidth_scale
        self.propagation_delay = self._nominal_propagation_delay + extra_delay
        self._refresh_pipeline()
        trace = self._trace
        if trace.wants("segment.degrade"):
            trace.emit(
                self.name,
                "segment.degrade",
                {"bandwidth_scale": bandwidth_scale, "extra_delay": extra_delay},
            )

    def _emit_drop(self, trace, sender: "NetworkInterface",
                   frame: EthernetFrame, reason: str) -> None:
        """Emit one ``segment.drop`` record onto ``trace`` (no counting)."""
        if trace.wants("segment.drop"):
            trace.emit(
                self.name,
                "segment.drop",
                lambda: {
                    "sender": sender.name,
                    "reason": reason,
                    "frame": frame.describe(),
                },
            )

    def _count_drop(self, sender: "NetworkInterface", frame: EthernetFrame,
                    reason: str) -> None:
        """Count one lost frame and emit its ``segment.drop`` record (home stream)."""
        self.frames_lost += 1
        self._emit_drop(self._trace, sender, frame, reason)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------

    def serialization_delay(self, frame: EthernetFrame) -> float:
        """Time the frame occupies the wire, in seconds."""
        return frame.wire_length * 8.0 / self.bandwidth_bps

    def transmit(self, sender: "NetworkInterface", frame: EthernetFrame) -> None:
        """Queue ``frame`` from ``sender`` for transmission on this segment.

        Delivery to every other attached NIC happens after the medium becomes
        free, the frame serializes, and the propagation delay elapses.
        """
        if sender.segment is not self:
            raise TopologyError(
                f"interface {sender.name} transmitted on {self.name} "
                "without being attached"
            )
        if not self._link_up:
            # No carrier: the frame is lost at the sender.  The drop record
            # belongs to the sending context's stream (mirroring the enqueue
            # record below); on a cut segment under relaxed sync the counter
            # increment is routed through the outbox — another shard's thread
            # must not mutate this segment mid-window.
            trace = self._trace
            if self._delivery_runs is not None:
                sim = self.sim
                if sim.relaxed:
                    caller = active_shard()
                    if caller is not None:
                        self._emit_drop(caller.trace, sender, frame, "link-down")
                        caller.outbox.append(
                            ("drop", caller.clock._now_ns, self)
                        )
                        return
                else:
                    active = sim.fabric._active
                    if active is not None:
                        trace = active.trace
            self.frames_lost += 1
            self._emit_drop(trace, sender, frame, "link-down")
            return
        trace = self._trace
        if self._delivery_runs is not None:
            # Cut segment: the enqueue record belongs to the *sending*
            # shard's stream — the transmit is the sender's action at the
            # sender's time.  (The emission moment is unchanged, so strict
            # runs stay bit-identical; under relaxed sync it is what lets
            # the record carry the exact send-time stamp even though the
            # segment state update is deferred to the window barrier.)
            sim = self.sim
            if sim.relaxed and not self._express:
                caller = active_shard()
                if caller is not None:
                    # Inside a relaxed window this segment's state must not
                    # be touched (another shard's thread may own it, and
                    # strict FIFO order across shards is only defined at the
                    # barrier).  Defer the transmit — home-shard senders
                    # included, so same-nanosecond transmits from different
                    # shards are FIFO'd by the one canonical mailbox merge.
                    # (Express-eligible cut segments are exempt: their only
                    # live senders are home-shard stations, so the home
                    # thread owns the state outright.)
                    trace = caller.trace
                    if trace.wants("segment.enqueue"):
                        trace.emit(
                            self.name,
                            "segment.enqueue",
                            lambda: {
                                "sender": sender.name,
                                "frame": frame.describe(),
                            },
                        )
                    caller.outbox.append(
                        ("tx", caller.clock._now_ns, self, sender, frame)
                    )
                    return
            else:
                active = sim.fabric._active
                if active is not None:
                    trace = active.trace
        self._pending.append((sender, frame))
        if trace.wants("segment.enqueue"):
            trace.emit(
                self.name,
                "segment.enqueue",
                lambda: {"sender": sender.name, "frame": frame.describe()},
            )
        if not self._in_service:
            self._service_next()

    def _apply_relaxed_transmit(
        self, when_ns: int, sender: "NetworkInterface", frame: EthernetFrame
    ) -> None:
        """Replay a mailboxed transmit at its recorded time (window barrier).

        Runs on the coordinator thread between windows: the home shard's
        clock is set to the transmit time so the service arithmetic and
        everything scheduled downstream carry exactly the timestamps the
        strict engine produces.  (The enqueue record was already emitted at
        send time, on the sending shard's stream.)
        """
        clock = self.sim.clock
        clock._now_ns = when_ns
        clock._now_s = when_ns / NANOSECONDS_PER_SECOND
        self._pending.append((sender, frame))
        if not self._in_service:
            self._service_next()

    def _service_next(self) -> None:
        if not self._pending:
            self._in_service = False
            return
        if not self._link_up:
            # The medium died while frames were queued: everything still
            # waiting is lost.  (set_link drains the queue at the instant of
            # failure; this path catches frames replayed into a dead segment
            # by a pre-failure service event.)
            pending = self._pending
            while pending:
                sender, frame = pending.popleft()
                self._count_drop(sender, frame, "link-down")
            self._in_service = False
            return
        sim = self.sim
        express = self._express
        if express and sim.relaxed and active_shard() is not None:
            if express == EXPRESS_INLINE:
                # Relaxed inline express lane: run the segment's whole causal
                # chain inline instead of round-tripping every step through
                # the ring.
                self._express_pump(sim.clock._now_ns)
            else:
                # Deferred express lane: batch the wire service now, leave
                # deliveries on the ring at their exact strict timestamps.
                # The first transmit of an instant drains directly; further
                # same-instant transmits (multi-source backlogs: request
                # fan-in, burst collisions at population scale) arm one
                # batched drain that runs after every same-instant sender
                # has enqueued, so N sources cost one drain pass, not N.
                now_ns = sim.clock._now_ns
                if now_ns != self._last_drain_ns:
                    self._last_drain_ns = now_ns
                    self._express_drain()
                elif not self._drain_armed:
                    self._drain_armed = True
                    sim._queue.push_fire(now_ns, self._drain_coalesced)
            return
        self._in_service = True
        self._serve_frame()

    def _serve_frame_plain(self) -> None:
        """Serve one frame on a shard-local, fault-free segment.

        The precompiled common case: no delivery runs, no fault model — all
        per-frame conditionals were hoisted into :meth:`_refresh_pipeline`.
        Arithmetic and scheduling order are textually identical to the other
        variants (bit-identical floats, identical event sequence numbers).
        """
        sender, frame = self._pending.popleft()
        now = self.sim.clock._now_s
        busy = self._busy_until
        start = now if now >= busy else busy
        finish = start + frame.wire_length * 8.0 / self.bandwidth_bps
        self._busy_until = finish
        self.frames_carried += 1
        self.bytes_carried += frame.wire_length
        self._schedule(
            finish + self.propagation_delay,
            partial(self._deliver, sender, frame),
            label=self._deliver_label,
        )
        self._schedule(finish, self._service_next, label=self._next_label)

    def _serve_frame_model(self) -> None:
        """Serve one frame on a shard-local segment with a fault model attached.

        Shares the plain variant's tail (one deliver + one next-service
        schedule) instead of duplicating the scheduling calls per branch, so
        the judged path allocates nothing beyond the verdict's drop record.
        """
        sender, frame = self._pending.popleft()
        now = self.sim.clock._now_s
        busy = self._busy_until
        start = now if now >= busy else busy
        finish = start + frame.wire_length * 8.0 / self.bandwidth_bps
        self._busy_until = finish
        self.frames_carried += 1
        self.bytes_carried += frame.wire_length
        model = self._fault_model
        if model is not None and model.active:
            verdict = model.judge(frame)
            if verdict is not None:
                # The frame occupies the wire exactly as a delivered one
                # (the _busy_until chain above already advanced) but never
                # reaches a receiver: lost outright, or corrupted and
                # discarded by every NIC's FCS check.
                if verdict == "corrupt":
                    self.frames_corrupted += 1
                    self._emit_drop(self._trace, sender, frame, "corrupt")
                else:
                    self._count_drop(sender, frame, "loss")
                self._schedule(finish, self._service_next, label=self._next_label)
                return
        self._schedule(
            finish + self.propagation_delay,
            partial(self._deliver, sender, frame),
            label=self._deliver_label,
        )
        self._schedule(finish, self._service_next, label=self._next_label)

    def _serve_frame_cut(self) -> None:
        """Serve one frame on a cut segment (inter-shard delivery runs)."""
        sim = self.sim
        if sim.relaxed and self._delivery_runs is not None:
            model = self._fault_model
            if (model is None or not model.active) and active_shard() is None:
                # Barrier context (mailed transmit replay) on a fault-free
                # cut segment: batch the wire service right now, exactly as
                # the deferred express lane does, instead of round-tripping
                # a service event per frame through the home ring.
                self._drain_cut()
                return
        sender, frame = self._pending.popleft()
        now = sim.clock._now_s
        busy = self._busy_until
        start = now if now >= busy else busy
        finish = start + frame.wire_length * 8.0 / self.bandwidth_bps
        self._busy_until = finish
        deliver_at = finish + self.propagation_delay
        self.frames_carried += 1
        # Wire occupancy, consistent with serialization_delay(): the frame
        # plus preamble/SFD/inter-frame gap, not just header+payload+FCS.
        self.bytes_carried += frame.wire_length

        model = self._fault_model
        if model is not None and model.active:
            verdict = model.judge(frame)
            if verdict is not None:
                if verdict == "corrupt":
                    self.frames_corrupted += 1
                    self._emit_drop(self._trace, sender, frame, "corrupt")
                else:
                    self._count_drop(sender, frame, "loss")
                self._schedule_cut_completion(sim, finish)
                return

        runs = self._delivery_runs
        if runs is None:
            # Retopologized to all-home since the pipeline was selected
            # (refresh happens before the in-flight service event fires).
            self._schedule(
                deliver_at,
                partial(self._deliver, sender, frame),
                label=self._deliver_label,
            )
        else:
            # Cut segment: one delivery event per contiguous same-shard run of
            # receivers, scheduled consecutively (so their shared-counter
            # sequence numbers preserve attach order) on each receiving shard.
            self.cross_shard_frames += 1
            if sim.relaxed:
                # Relaxed: the segment.deliver record must be stamped by this
                # segment's *home* clock at the delivery time, so it becomes
                # its own home-shard event instead of piggybacking on the
                # first run (whose shard sits at a different private time).
                # Inside a window everything is staged in the caller's
                # outbox; at a barrier (transmit replay) the rings are safe
                # to push directly.
                deliver_ns = round(deliver_at * NANOSECONDS_PER_SECOND)
                caller = active_shard()
                if caller is not None:
                    # A cut segment's service always runs on its home shard,
                    # so home-bound work (the deliver record and home runs)
                    # can push straight onto the caller's own ring — keeping
                    # its bucket position identical to the strict engine's —
                    # while runs for other shards stage in the outbox.
                    home_push = sim._queue.push_fire
                    outbox = caller.outbox
                    home_push(
                        deliver_ns, partial(self._emit_deliver, sender, frame)
                    )
                    for engine, run in runs:
                        deliver_run = partial(
                            self._deliver_run, sender, frame, run, False
                        )
                        if engine is sim:
                            home_push(deliver_ns, deliver_run)
                        else:
                            outbox.append(("push", deliver_ns, engine, deliver_run))
                else:
                    sim._relaxed_push_fire(
                        deliver_ns, partial(self._emit_deliver, sender, frame)
                    )
                    for engine, run in runs:
                        engine._relaxed_push_fire(
                            deliver_ns,
                            partial(self._deliver_run, sender, frame, run, False),
                        )
            else:
                first = True
                for engine, run in runs:
                    engine.schedule_fire(
                        deliver_at,
                        partial(self._deliver_run, sender, frame, run, first),
                        label=self._deliver_label,
                    )
                    first = False
        self._schedule_cut_completion(sim, finish)

    def _schedule_cut_completion(self, sim, finish: float) -> None:
        """Schedule the service-completion event for a cut-segment serve.

        An in-window serve keeps the completion on the home ring, exactly as
        before.  A barrier-context serve under relaxed sync — a mailed
        transmit replay, or a prior barrier completion firing — must put it
        on the *control ring* instead: barrier work is replicated in every
        engine replica (the process backend runs one per worker plus the
        parent), so cut-segment service state only stays in lockstep if the
        continuation also fires at a replicated barrier.  A home-ring
        completion fires in the owner's window alone; every other replica
        then keeps ``_in_service`` latched and its fault-model RNG cursor
        stale, and the next mailed frame it replays is misserved — appended
        instead of served, or judged with the wrong draw — which corrupts
        the delivery-run events it pushes onto its own live rings.
        """
        if sim.relaxed and active_shard() is None:
            sim.fabric._control.push_fire(
                round(finish * NANOSECONDS_PER_SECOND), self._service_next
            )
            return
        self._schedule(finish, self._service_next, label=self._next_label)

    def _deliver_cut(self, sender: "NetworkInterface", frame: EthernetFrame) -> None:
        """Deliver on an express-eligible cut segment at the current time.

        Every remote interface is down (the express precondition), so home
        receivers are delivered inline while the remote runs — pure drop
        counting — execute on their own shards: staged via the outbox inside
        a window, or scheduled directly from barrier/strict contexts (a
        parked delivery can fire after a mode switch).
        """
        runs = self._delivery_runs
        if runs is None:
            # Retopologized since the frame was scheduled: all-home now.
            self._deliver(sender, frame)
            return
        shard = self.sim
        caller = active_shard() if shard.relaxed else None
        when_ns = shard.clock._now_ns
        self._emit_deliver(sender, frame)
        for engine, run in runs:
            if engine is shard:
                for interface in run:
                    if interface is sender or interface.segment is not self:
                        continue
                    interface.deliver(frame)
            else:
                deliver_run = partial(self._deliver_run, sender, frame, run, False)
                if caller is not None:
                    caller.outbox.append(("push", when_ns, engine, deliver_run))
                else:
                    engine.schedule_fire(
                        shard.clock._now_s, deliver_run, label=self._deliver_label
                    )

    def _emit_deliver(self, sender: "NetworkInterface", frame: EthernetFrame) -> None:
        """Emit the segment.deliver record (relaxed cut-segment delivery)."""
        trace = self._trace
        if trace.wants("segment.deliver"):
            trace.emit(
                self.name,
                "segment.deliver",
                lambda: {"sender": sender.name, "frame": frame.describe()},
            )

    def _express_drain(self) -> None:
        """Batch-service the transmit backlog (relaxed deferred express lane).

        The insight behind the deferred lane: wire *service* is pure
        arithmetic — pop, advance the ``_busy_until`` chain, schedule the
        delivery — so nothing forces it to wait for its own service event.
        This drain services every queued frame at transmit time in one run
        (one clock fetch, one busy-chain walk per batch) and schedules each
        delivery as a fire-and-forget ring event at the exact nanosecond the
        classic path would, eliding the per-frame service event entirely.
        Handlers therefore still run in shard time order with every other
        event (CPU completions, timers) — unlike the inline pump, no handler
        ever executes early — which is why the eligibility bar is only
        "reactions never escape the segment synchronously".

        Service-start times replicate the classic chain bit-for-bit: a frame
        that would have waited for a service event at ``round(busy * ns)``
        gets exactly that quantized start (see the ``pop_ns`` branch), so
        ``_busy_until`` chains, delivery timestamps and every record match
        the strict engine.

        Each batched frame leaves an in-flight entry
        ``[pop_threshold_ns, prior_busy, sender, frame, live]`` shared with
        its delivery callback: :meth:`set_link` uses the threshold to kill
        exactly the frames the classic path would still hold queued at the
        instant of failure (their service pop would fire at or after the
        fault, which precedes same-instant traffic), rolling the busy chain
        and the carried counters back.  A frame popped directly at transmit
        time stores ``now - 1`` so a same-instant failure — which by the
        fault-precedence contract ran *before* the transmit — never kills
        it.  Batch boundaries fall on every fault/port/model transition
        because each of those re-runs :meth:`_refresh_express` and drops the
        segment off the lane before the next transmit.
        """
        self._in_service = False
        sim = self.sim
        clock = sim.clock
        push = sim._queue.push_fire
        pending = self._pending
        inflight = self._express_inflight
        bandwidth = self.bandwidth_bps
        prop = self.propagation_delay
        busy = self._busy_until
        now = clock._now_s
        now_ns = clock._now_ns
        carried = 0
        carried_bytes = 0
        while pending:
            sender, frame = pending.popleft()
            if now >= busy:
                start = now
                pop_ns = now_ns - 1
            else:
                pop_ns = round(busy * NANOSECONDS_PER_SECOND)
                quantized = pop_ns / NANOSECONDS_PER_SECOND
                start = quantized if quantized >= busy else busy
            finish = start + frame.wire_length * 8.0 / bandwidth
            entry = [pop_ns, busy, sender, frame, 1]
            busy = finish
            carried += 1
            carried_bytes += frame.wire_length
            inflight.append(entry)
            push(
                round((finish + prop) * NANOSECONDS_PER_SECOND),
                partial(self._deliver_express, entry),
            )
        self._busy_until = busy
        self.frames_carried += carried
        self.bytes_carried += carried_bytes

    def _drain_coalesced(self) -> None:
        """Run the armed multi-source batch drain (same-instant ring event).

        Fires on the home ring at the arming instant, *after* every
        same-instant transmit already in the bucket has enqueued its frame
        — ShardQueue buckets are FIFO in push order — so the whole
        multi-source backlog is serviced in one :meth:`_express_drain`
        pass.  Conditions are re-checked from scratch: if the segment fell
        off the express lane (fault hook, port flip) or the link died
        between arming and firing, the backlog is routed back through the
        classic :meth:`_service_next` arm, which handles every fallback.
        """
        self._drain_armed = False
        if not self._pending or self._in_service:
            return
        sim = self.sim
        if (
            self._express == EXPRESS_DEFERRED
            and self._link_up
            and sim.relaxed
            and active_shard() is not None
        ):
            self.frames_coalesced += len(self._pending)
            self._express_drain()
        else:
            self._service_next()

    def _deliver_express(self, entry: list) -> None:
        """Deliver one deferred-express frame (ring event at its exact time)."""
        if not entry[4]:
            return
        entry[4] = 0
        self._prune_inflight()
        self._deliver(entry[2], entry[3])

    def _prune_inflight(self) -> None:
        """Drop retired head entries from the in-flight window.

        An express entry retires when its single delivery consumes it
        (``live`` cleared); a cut-drain entry retires when its home leg runs
        (``consumed`` set) because the remote run legs only ever read the
        ``live`` flag.  Killed entries never reach here — :meth:`set_link`
        pops them directly.  Always called on the home shard's event loop
        (express deliveries and cut home legs both ride the home ring), so
        there is no race with threaded remote windows.
        """
        inflight = self._express_inflight
        while inflight:
            head = inflight[0]
            if head[4] and (len(head) == 5 or not head[5]):
                break
            inflight.popleft()

    def _drain_cut(self) -> None:
        """Batch-service mailed transmits on a cut segment (barrier context).

        The deferred express-lane insight (see :meth:`_express_drain`)
        applies to cut segments too, with one extra ace: in relaxed mode a
        cut segment's transmits arrive *only* through the mail barrier
        (windows are pumped strictly below the next control time), so every
        serve already happens in barrier context and the per-frame
        ``_service_next`` completion event buys nothing but ring traffic.
        This drain replicates :meth:`_serve_frame_cut`'s barrier arm —
        quantized service starts, one home ``segment.deliver`` record plus
        one parked delivery per receiver run, all at the exact strict-engine
        nanosecond — without scheduling a single service event.

        Eligibility is checked by the caller per serve (relaxed, runs
        attached, no active fault model, no active shard), so fault-model
        transitions fall back to the classic arm and keep the per-frame
        ``judge()`` draw order identical to strict.  In-flight entries are
        ``[pop_threshold_ns, prior_busy, sender, frame, live, consumed]`` —
        the express entry plus a consumed flag, because a cut frame has
        several parked callbacks and only the home leg may retire it.
        :meth:`set_link` kills and refunds them exactly like express
        entries (plus the cross-shard counter).
        """
        self._in_service = False
        sim = self.sim
        clock = sim.clock
        push = sim._relaxed_push_fire
        pending = self._pending
        inflight = self._express_inflight
        runs = self._delivery_runs
        bandwidth = self.bandwidth_bps
        prop = self.propagation_delay
        busy = self._busy_until
        now = clock._now_s
        now_ns = clock._now_ns
        carried = 0
        carried_bytes = 0
        while pending:
            sender, frame = pending.popleft()
            if now >= busy:
                start = now
                pop_ns = now_ns - 1
            else:
                pop_ns = round(busy * NANOSECONDS_PER_SECOND)
                quantized = pop_ns / NANOSECONDS_PER_SECOND
                start = quantized if quantized >= busy else busy
            finish = start + frame.wire_length * 8.0 / bandwidth
            entry = [pop_ns, busy, sender, frame, 1, 0]
            busy = finish
            carried += 1
            carried_bytes += frame.wire_length
            inflight.append(entry)
            deliver_ns = round((finish + prop) * NANOSECONDS_PER_SECOND)
            push(deliver_ns, partial(self._deliver_cut_parked, entry, None))
            for engine, run in runs:
                engine._relaxed_push_fire(
                    deliver_ns, partial(self._deliver_cut_parked, entry, run)
                )
        self._busy_until = busy
        self.frames_carried += carried
        self.bytes_carried += carried_bytes
        self.cross_shard_frames += carried

    def _deliver_cut_parked(self, entry: list, run) -> None:
        """Fire one parked cut-drain delivery leg at its exact ring time.

        ``run is None`` is the home leg: it emits the ``segment.deliver``
        record, retires the entry and prunes the in-flight window (home
        ring, so serialized against :meth:`set_link` barriers).  Run legs
        execute on their receiving shards and only read the ``live`` flag,
        which is written exclusively at barriers — no cross-thread race.
        """
        if run is not None:
            if entry[4]:
                self._deliver_run(entry[2], entry[3], run, False)
            return
        if entry[4]:
            self._emit_deliver(entry[2], entry[3])
        entry[5] = 1
        self._prune_inflight()

    def _express_pump(self, s_ns: int) -> None:
        """Drain this segment's service loop inline (relaxed express lane).

        Fuses every service -> delivery -> (inline-safe handler reply) step
        of the causal chain into one loop, advancing the shard's private
        clock to each step's exact strict-engine timestamp instead of paying
        a queue round-trip per event.  This is only sound under the relaxed
        canonical-merge contract: the emitted records interleave with other
        segments' streams out of execution order, and the canonical
        ``(time, shard, shard_seq)`` merge re-sorts them.

        Arithmetic mirrors :meth:`_service_next` bit-for-bit: service times
        are the quantized event times the strict engine would fire at, so
        ``_busy_until`` chains, delivery timestamps and every record are
        identical.  On leaving (queue drained or run horizon crossed) a real
        service event is left behind at the next service time — exactly the
        event the strict engine would have pending — so mid-run cutoffs,
        later transmits and mode switches resume seamlessly.
        """
        self._in_service = True
        shard = self.sim
        clock = shard.clock
        entry_ns = clock._now_ns
        entry_s = clock._now_s
        until_ns = shard._until_ns
        queue = shard._queue
        pending = self._pending
        bandwidth = self.bandwidth_bps
        prop = self.propagation_delay
        runs = self._delivery_runs
        deliver = self._deliver
        # Batch-hoisted trace gate: one wants() check per pump run instead of
        # one per frame (the gate is run configuration, immutable mid-run).
        trace = self._trace
        deliver_wanted = trace.wants("segment.deliver")
        name = self.name
        # Frames already queued at pump entry were transmitted at or before
        # s_ns; frames appended by the inline deliveries below arrive at
        # their delivery instant, and — exactly as under the strict engine,
        # where an idle medium starts serving at the transmit call — must
        # not be served before they exist.
        backlog = len(pending)
        arrivals: Deque[int] = deque()
        while pending and s_ns <= until_ns:
            if backlog:
                backlog -= 1
            else:
                arrival_ns = arrivals.popleft()
                if arrival_ns > s_ns:
                    s_ns = arrival_ns
            sender, frame = pending.popleft()
            now = s_ns / NANOSECONDS_PER_SECOND
            busy = self._busy_until
            start = now if now >= busy else busy
            finish = start + frame.wire_length * 8.0 / bandwidth
            self._busy_until = finish
            deliver_at = finish + prop
            self.frames_carried += 1
            self.bytes_carried += frame.wire_length
            if runs is not None:
                self.cross_shard_frames += 1
            deliver_ns = round(deliver_at * NANOSECONDS_PER_SECOND)
            if deliver_ns > until_ns:
                # Past the run horizon: park the delivery as a real event,
                # as the strict engine would.  A cut segment's parked
                # delivery keeps the per-shard run split (the plain path
                # would touch remote NICs from this shard).
                parked = deliver if runs is None else self._deliver_cut
                queue.push_fire(deliver_ns, partial(parked, sender, frame))
            else:
                clock._now_ns = deliver_ns
                clock._now_s = deliver_ns / NANOSECONDS_PER_SECOND
                if deliver_ns > shard.cursor_ns:
                    shard.cursor_ns = deliver_ns
                before = len(pending)
                if runs is None:
                    # Inlined _deliver with the batch-hoisted gate: the
                    # record and receiver walk are identical, minus one
                    # wants() and one call frame per frame.
                    if deliver_wanted:
                        trace.emit(
                            name,
                            "segment.deliver",
                            lambda s=sender, f=frame: {
                                "sender": s.name,
                                "frame": f.describe(),
                            },
                        )
                    for interface in self._receivers:
                        if interface is sender:
                            continue
                        interface.deliver(frame)
                else:
                    self._deliver_cut(sender, frame)
                for _ in range(len(pending) - before):
                    arrivals.append(deliver_ns)
            s_ns = round(finish * NANOSECONDS_PER_SECOND)
        queue.push_fire(s_ns, self._service_next)
        clock._now_ns = entry_ns
        clock._now_s = entry_s

    def _deliver(self, sender: "NetworkInterface", frame: EthernetFrame) -> None:
        trace = self._trace
        if trace.wants("segment.deliver"):
            trace.emit(
                self.name,
                "segment.deliver",
                lambda: {"sender": sender.name, "frame": frame.describe()},
            )
        # The receiver tuple is a stable snapshot: attach/detach during the
        # loop rebuild it without disturbing this delivery.
        for interface in self._receivers:
            if interface is sender:
                continue
            interface.deliver(frame)

    def _deliver_run(
        self,
        sender: "NetworkInterface",
        frame: EthernetFrame,
        run: List["NetworkInterface"],
        first: bool,
    ) -> None:
        """Deliver ``frame`` to one same-shard run of receivers.

        Runs are snapshotted when the frame is scheduled (an interface that
        detaches mid-flight is skipped below; one that attaches mid-flight
        joins from the next frame on — the classic path snapshots at delivery
        instead, a difference only visible to mid-flight retopology).
        """
        if first:
            trace = self._trace
            if trace.wants("segment.deliver"):
                trace.emit(
                    self.name,
                    "segment.deliver",
                    lambda: {"sender": sender.name, "frame": frame.describe()},
                )
        for interface in run:
            if interface is sender or interface.segment is not self:
                continue
            interface.deliver(frame)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def utilization(self, elapsed_seconds: Optional[float] = None) -> float:
        """Fraction of wire capacity used since time zero (or over ``elapsed_seconds``)."""
        elapsed = self.sim.now if elapsed_seconds is None else elapsed_seconds
        if elapsed <= 0:
            return 0.0
        bits = self.bytes_carried * 8.0
        return min(1.0, bits / (self.bandwidth_bps * elapsed))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Segment({self.name!r}, {self.bandwidth_bps/1e6:.0f} Mb/s, "
            f"{len(self._interfaces)} stations)"
        )
