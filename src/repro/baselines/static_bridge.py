"""A conventional, non-programmable learning bridge.

The active bridge in the paper replaced a DEC LANbridge in the authors'
laboratory.  :class:`StaticLearningBridge` models that class of device: the
same learning/forwarding behaviour as the learning switchlet, but implemented
as fixed function with a hardware-like per-frame cost, and with no way to
change its behaviour at run time.  The ablation benchmark uses it to separate
"cost of bridging" from "cost of *active* bridging".
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.costs.cpu import CpuQueue
from repro.costs.model import CostModel
from repro.ethernet.frame import EthernetFrame
from repro.ethernet.mac import MacAddress
from repro.exceptions import TopologyError
from repro.lan.nic import NetworkInterface
from repro.lan.segment import Segment
from repro.sim.engine import Simulator

#: Namespace base for static-bridge interface MACs (allocated per engine, so
#: runs in one process stay bit-identical).
_AUTO_MAC_BASE = 0xD0_0000

#: Per-frame forwarding cost of the fixed-function bridge (5 microseconds;
#: effectively wire-speed at the paper's frame rates).
HARDWARE_FRAME_COST = 5e-6

#: Learned entries older than this are ignored (802.1D default ageing time).
DEFAULT_AGING_TIME = 300.0


class StaticLearningBridge:
    """A fixed-function transparent learning bridge.

    Args:
        sim: owning simulator.
        name: station name used in traces.
        cost_model: unused except for documentation symmetry; the hardware
            cost is a constant.
        frame_cost: per-frame forwarding cost in seconds.
        aging_time: learned-entry lifetime in seconds.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cost_model: Optional[CostModel] = None,
        frame_cost: float = HARDWARE_FRAME_COST,
        aging_time: float = DEFAULT_AGING_TIME,
    ) -> None:
        self.sim = sim
        self.name = name
        self.costs = cost_model if cost_model is not None else CostModel()
        self.frame_cost = frame_cost
        self.aging_time = aging_time
        self.cpu = CpuQueue(sim, f"{name}.cpu")
        self.interfaces: Dict[str, NetworkInterface] = {}
        self._table: Dict[MacAddress, Tuple[float, str]] = {}
        self.frames_received = 0
        self.frames_forwarded = 0
        self.frames_flooded = 0
        self.frames_filtered = 0

    def add_interface(
        self, name: str, segment: Segment, mac: Optional[MacAddress] = None
    ) -> NetworkInterface:
        """Attach a promiscuous interface to a segment."""
        if name in self.interfaces:
            raise TopologyError(f"bridge {self.name!r} already has interface {name!r}")
        if mac is None:
            mac = MacAddress.locally_administered(self.sim.auto_station_id(_AUTO_MAC_BASE))
        nic = NetworkInterface(self.sim, f"{self.name}.{name}", mac)
        nic.attach(segment)
        nic.set_promiscuous(True)
        # segment_local: forwarding rides the CPU queue (see _receive).
        nic.set_handler(
            lambda _nic, frame, port=name: self._receive(port, frame),
            segment_local=True,
        )
        self.interfaces[name] = nic
        return nic

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------

    def _receive(self, in_port: str, frame: EthernetFrame) -> None:
        self.frames_received += 1
        self.cpu.submit(self.frame_cost, lambda: self._forward(in_port, frame))

    def _forward(self, in_port: str, frame: EthernetFrame) -> None:
        now = self.sim.now
        if frame.source.is_unicast:
            self._table[frame.source] = (now, in_port)
        if frame.destination.is_multicast:
            self._flood(in_port, frame)
            return
        entry = self._table.get(frame.destination)
        if entry is not None and now - entry[0] <= self.aging_time:
            out_port = entry[1]
            if out_port == in_port:
                self.frames_filtered += 1
                return
            self.frames_forwarded += 1
            self.interfaces[out_port].send(frame)
            return
        self._flood(in_port, frame)

    def _flood(self, in_port: str, frame: EthernetFrame) -> None:
        sent = False
        for name, nic in self.interfaces.items():
            if name == in_port:
                continue
            nic.send(frame)
            sent = True
        if sent:
            self.frames_flooded += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def learned_ports(self) -> Dict[str, str]:
        """Mapping of learned MAC string to port name (current entries only)."""
        now = self.sim.now
        return {
            str(mac): port
            for mac, (when, port) in self._table.items()
            if now - when <= self.aging_time
        }

    def statistics(self) -> dict:
        """Forwarding counters."""
        return {
            "frames_received": self.frames_received,
            "frames_forwarded": self.frames_forwarded,
            "frames_flooded": self.frames_flooded,
            "frames_filtered": self.frames_filtered,
            "table_size": len(self._table),
        }
